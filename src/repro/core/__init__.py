"""The paper's primary contributions: GEE, AE, HYBGEE, and Theorem 1.

* :class:`~repro.core.GEE` — the Guaranteed-Error Estimator (§4), with
  its ``[LOWER, UPPER]`` confidence interval.
* :class:`~repro.core.AE` — the Adaptive Estimator (§5.2–5.3).
* :class:`~repro.core.HybridGEE` — HYBSKEW with GEE on the high-skew
  branch (§5.1).
* :mod:`~repro.core.theory` — the Theorem 1 lower bound and its
  adversarial scenario generators (§3).
"""

from repro.core.ae import AE, ae_estimate, solve_low_frequency_count
from repro.core.base import (
    ConfidenceInterval,
    DistinctValueEstimator,
    Estimate,
    clamp_estimate,
    ratio_error,
    relative_error,
)
from repro.core.bounds import gee_interval, gee_lower_bound, gee_upper_bound
from repro.core.gee import GEE, gee_coefficient, gee_estimate
from repro.core.hybgee import HybridGEE
from repro.core.registry import (
    ESTIMATOR_FACTORIES,
    PAPER_ESTIMATORS,
    available_estimators,
    make_estimator,
    make_estimators,
)
from repro.core.expectations import (
    expected_distinct,
    expected_frequency_count,
    expected_gee,
    expected_profile,
    unbiased_singleton_coefficient,
)
from repro.core.planner import (
    SamplingPlan,
    gee_sufficient_sample_size,
    plan_sample_size,
)
from repro.core.theorem2 import (
    contribution_lower_bound,
    contribution_upper_bound,
    per_class_contribution,
    worst_case_ratio,
)
from repro.core.theory import (
    AdversarialPair,
    adversarial_k,
    adversarial_pair,
    lower_bound_error,
    minimum_sample_size_for_error,
)
from repro.core.uncertainty import (
    BootstrapSummary,
    bootstrap_estimate,
    bootstrap_profile,
    coefficient_of_variation,
)

__all__ = [
    "AE",
    "GEE",
    "HybridGEE",
    "ConfidenceInterval",
    "DistinctValueEstimator",
    "Estimate",
    "clamp_estimate",
    "ratio_error",
    "relative_error",
    "gee_interval",
    "gee_lower_bound",
    "gee_upper_bound",
    "gee_coefficient",
    "gee_estimate",
    "ae_estimate",
    "solve_low_frequency_count",
    "ESTIMATOR_FACTORIES",
    "PAPER_ESTIMATORS",
    "available_estimators",
    "make_estimator",
    "make_estimators",
    "AdversarialPair",
    "adversarial_k",
    "adversarial_pair",
    "lower_bound_error",
    "minimum_sample_size_for_error",
    "SamplingPlan",
    "gee_sufficient_sample_size",
    "plan_sample_size",
    "expected_distinct",
    "expected_frequency_count",
    "expected_gee",
    "expected_profile",
    "unbiased_singleton_coefficient",
    "contribution_lower_bound",
    "contribution_upper_bound",
    "per_class_contribution",
    "worst_case_ratio",
    "BootstrapSummary",
    "bootstrap_estimate",
    "bootstrap_profile",
    "coefficient_of_variation",
]
