"""Theorem 2's proof, executable (paper §4).

The proof that GEE's expected ratio error is ``O(sqrt(n/r))`` works
class by class: a value with occurrence probability ``p`` contributes

    ``c(p) = x + (sqrt(n/r) - 1) * y``

to ``E[GEE]``, where ``x = 1 - (1-p)^r`` is its probability of being
sampled and ``y = r p (1-p)^{r-1}`` its probability of being a
singleton, while it contributes exactly 1 to ``D``.  The case analysis
(``p >= 1/r`` vs ``1/n <= p < 1/r``) shows

    ``(1/e) sqrt(r/n) (1 - o(1))  <=  c(p)  <=  sqrt(n/r)``

for every feasible ``p``, hence ``E[GEE]`` is within a factor
``e sqrt(n/r) (1 + o(1))`` of ``D`` on any input.  This module exposes
``c(p)`` and the two envelope bounds so the inequality can be *swept*
rather than trusted; the tests grid over ``p`` and random ``(n, r)``
and verify the envelope numerically, and :func:`worst_case_ratio`
reports the exact worst multiplicative gap for given ``(n, r)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "per_class_contribution",
    "contribution_upper_bound",
    "contribution_lower_bound",
    "worst_case_ratio",
]


def _validate(population_size: int, sample_size: int) -> None:
    if population_size < 1:
        raise InvalidParameterError(
            f"population size must be >= 1, got {population_size}"
        )
    if not 1 <= sample_size <= population_size:
        raise InvalidParameterError(
            f"sample size must be in [1, n], got {sample_size}"
        )


def per_class_contribution(
    p: float, population_size: int, sample_size: int
) -> float:
    """``c(p) = x + (sqrt(n/r) - 1) y`` — one class's share of ``E[GEE]``.

    ``p`` must be a feasible class probability, i.e. in ``[1/n, 1]``.
    Computed with ``log1p`` so tiny ``p`` at huge ``r`` stays exact.
    """
    _validate(population_size, sample_size)
    n, r = population_size, sample_size
    if not (1.0 / n) - 1e-15 <= p <= 1.0:
        raise InvalidParameterError(
            f"class probability must be in [1/n, 1], got {p}"
        )
    # log_q <= 0 and r >= 1, so both min-clamps are exact no-ops that
    # bound the exp arguments away from overflow (R1303).
    log_q = math.log1p(-p) if p < 1.0 else -math.inf
    x = -math.expm1(min(0.0, r * log_q))  # 1 - (1-p)^r
    y = (
        r * p * math.exp(min(0.0, (r - 1) * log_q))
        if p < 1.0
        else (1.0 if r == 1 else 0.0)
    )
    return x + (math.sqrt(n / r) - 1.0) * y


def contribution_upper_bound(population_size: int, sample_size: int) -> float:
    """The envelope's ceiling, ``sqrt(n/r)``."""
    _validate(population_size, sample_size)
    return math.sqrt(population_size / sample_size)


def contribution_lower_bound(population_size: int, sample_size: int) -> float:
    """The envelope's floor, ``(1/e) sqrt(r/n) (1 - sqrt(r/n))``.

    The ``(1 - sqrt(r/n))`` factor is the proof's ``1 - o(1)`` made
    explicit: the floor is attained near ``p = 1/n``, where
    ``c(p) ~ (sqrt(n/r) - 1) * (r/n) * e^{-r/n}``.
    """
    _validate(population_size, sample_size)
    n, r = population_size, sample_size
    ratio = math.sqrt(r / n)
    return max(0.0, (1.0 / math.e) * ratio * (1.0 - ratio))


def worst_case_ratio(
    population_size: int, sample_size: int, grid_points: int = 2000
) -> float:
    """Exact worst multiplicative gap of ``c(p)`` from 1 over a ``p`` grid.

    Sweeps ``p`` log-uniformly over ``[1/n, 1]`` and returns
    ``max(max c, 1 / min c)`` — the factor by which a single class's
    contribution can distort ``E[GEE]``.  Theorem 2 promises this never
    exceeds ``e * sqrt(n/r) * (1 + o(1))``.
    """
    _validate(population_size, sample_size)
    if grid_points < 2:
        raise InvalidParameterError(f"grid_points must be >= 2, got {grid_points}")
    n, r = population_size, sample_size
    probabilities = np.logspace(math.log10(1.0 / n), 0.0, grid_points)
    worst = 1.0
    for p in probabilities:
        c = per_class_contribution(min(float(p), 1.0), n, r)
        if c <= 0.0:
            return math.inf
        worst = max(worst, c, 1.0 / c)
    return worst
