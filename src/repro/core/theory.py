"""Theorem 1 machinery: the lower bound on distinct-values estimation.

Theorem 1 (paper §3): any estimator — adaptive and randomized included —
that examines at most ``r`` of ``n`` rows must, for every
``gamma > e^{-r}``, incur on some input a ratio error of at least

    ``sqrt((n - r) / (2 r) * ln(1 / gamma))``

with probability at least ``gamma``.  The proof constructs two
indistinguishable scenarios over a column ``C``:

* **Scenario A** — a single value ``x`` fills all ``n`` rows (``D = 1``);
* **Scenario B** — ``x`` fills ``n - k`` rows and ``k`` fresh singleton
  values sit in ``k`` uniformly random rows (``D = k + 1``), with
  ``k = (n - r) / (2 r) * ln(1 / gamma)``.

With probability ``>= gamma`` an estimator sees ``r`` copies of ``x`` in
either scenario and must answer identically; whatever it answers, it is
off by ``>= sqrt(k + 1)`` on one of the two.

This module provides the bound itself, the largest adversarial ``k``,
generators for both scenarios (so the negative result can be *run*, not
just stated), and the paper's §3 numeric comparison against the observed
errors of real estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidParameterError

__all__ = [
    "lower_bound_error",
    "adversarial_k",
    "minimum_sample_size_for_error",
    "AdversarialPair",
    "adversarial_pair",
]


def _validate_n_r(population_size: int, sample_size: int) -> None:
    if population_size <= 0:
        raise InvalidParameterError(
            f"population size must be positive, got {population_size}"
        )
    if not 0 < sample_size < population_size:
        raise InvalidParameterError(
            f"sample size must be in (0, n), got r={sample_size}, n={population_size}"
        )


def lower_bound_error(
    population_size: int, sample_size: int, gamma: float = 0.5
) -> float:
    """The Theorem 1 error floor ``sqrt((n - r)/(2 r) * ln(1/gamma))``.

    Parameters
    ----------
    population_size, sample_size:
        ``n`` and ``r``.
    gamma:
        Probability with which the error must be incurred; must satisfy
        ``e^{-r} < gamma < 1``.

    Returns
    -------
    float
        A ratio-error value; note Theorem 1 only yields a nontrivial
        bound (``> 1``) once ``k >= 1``.
    """
    _validate_n_r(population_size, sample_size)
    if not 0.0 < gamma < 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1), got {gamma}")
    if gamma <= math.exp(min(0.0, -float(sample_size))):
        raise InvalidParameterError(
            f"gamma must exceed e^-r = e^-{sample_size} for the bound to apply"
        )
    k = adversarial_k(population_size, sample_size, gamma)
    return math.sqrt(max(k, 0.0))


def adversarial_k(population_size: int, sample_size: int, gamma: float = 0.5) -> float:
    """The Scenario-B singleton count ``k = (n - r)/(2 r) * ln(1/gamma)``."""
    _validate_n_r(population_size, sample_size)
    if not 0.0 < gamma < 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1), got {gamma}")
    return (population_size - sample_size) / (2.0 * sample_size) * math.log(1.0 / gamma)


def minimum_sample_size_for_error(
    population_size: int, target_error: float, gamma: float = 0.5
) -> int:
    """Smallest ``r`` for which Theorem 1 *permits* ratio error <= ``target_error``.

    Inverting the bound: ``error^2 = (n - r) ln(1/gamma) / (2 r)`` gives
    ``r = n L / (2 error^2 + L)`` with ``L = ln(1/gamma)``.  Any
    estimator sampling fewer rows provably cannot guarantee the target
    error with confidence ``1 - gamma``.  This is the "how much must I
    scan" planning primitive for a statistics collector.
    """
    if target_error < 1.0:
        raise InvalidParameterError(
            f"ratio errors are >= 1 by definition, got {target_error}"
        )
    if population_size <= 0:
        raise InvalidParameterError(
            f"population size must be positive, got {population_size}"
        )
    if not 0.0 < gamma < 1.0:
        raise InvalidParameterError(f"gamma must be in (0, 1), got {gamma}")
    load = math.log(1.0 / gamma)
    r = population_size * load / (2.0 * target_error**2 + load)
    return min(population_size, max(1, math.ceil(r)))


@dataclass(frozen=True)
class AdversarialPair:
    """The two Theorem-1 scenarios, materialized as concrete columns."""

    scenario_a: npt.NDArray[np.int64]
    scenario_b: npt.NDArray[np.int64]
    k: int

    @property
    def distinct_a(self) -> int:
        """True distinct count of Scenario A (always 1)."""
        return 1

    @property
    def distinct_b(self) -> int:
        """True distinct count of Scenario B (``k + 1``)."""
        return self.k + 1

    @property
    def indistinguishability_floor(self) -> float:
        """``sqrt(k + 1)``: the error some answer must incur on A or B."""
        # k >= 0 (adversarial_k is nonnegative for r <= n), so the
        # max-clamp is an exact no-op that lets the interval prover
        # discharge the sqrt domain instead of a pragma.
        return math.sqrt(max(self.k, 0) + 1)


def adversarial_pair(
    population_size: int,
    sample_size: int,
    gamma: float = 0.5,
    rng: np.random.Generator | None = None,
) -> AdversarialPair:
    """Materialize the Theorem 1 scenario pair for given ``(n, r, gamma)``.

    Scenario A is ``n`` copies of the value 0.  Scenario B places
    ``k = floor((n-r)/(2r) ln(1/gamma))`` distinct singleton values
    ``1..k`` at uniformly random row positions of an otherwise constant
    column, exactly as the proof prescribes.
    """
    _validate_n_r(population_size, sample_size)
    rng = rng if rng is not None else np.random.default_rng()
    k = int(adversarial_k(population_size, sample_size, gamma))
    k = min(k, population_size - 1)
    scenario_a = np.zeros(population_size, dtype=np.int64)
    scenario_b = np.zeros(population_size, dtype=np.int64)
    positions = rng.choice(population_size, size=k, replace=False)
    scenario_b[positions] = np.arange(1, k + 1, dtype=np.int64)
    return AdversarialPair(scenario_a=scenario_a, scenario_b=scenario_b, k=k)
