"""Exact sampling expectations for distinct-value statistics.

The paper's analyses revolve around two moments of the sample:

* ``E[d]   = Σ_j (1 - P[class j unseen])``
* ``E[f_i] = Σ_j P[class j seen exactly i times]``

computed under either sampling model of §2.  For *with replacement*
(the model Theorem 2 is proved in) the per-class law is binomial:

    ``P[count_j = i] = C(r, i) p_j^i (1 - p_j)^{r-i}``,  ``p_j = n_j / n``;

for *without replacement* it is hypergeometric:

    ``P[count_j = i] = C(n_j, i) C(n - n_j, r - i) / C(n, r)``.

This module evaluates both exactly (in log space, vectorized over
classes), which lets the test-suite verify the paper's analytical
statements against ground truth rather than Monte Carlo alone:

* the derivation of AE's unbiased coefficient ``K = (D - E[d]) / E[f1]``
  (§5.2-5.3);
* Theorem 2's claim that ``E[GEE]`` is within ``~e * sqrt(n/r)`` of D on
  *any* class-size vector;
* the (near-)unbiasedness of the smoothed jackknife under equal class
  sizes.
"""

from __future__ import annotations

import math

import numpy as np
import numpy.typing as npt

from repro.contracts import ensures, requires
from repro.errors import InvalidParameterError

__all__ = [
    "expected_distinct",
    "expected_frequency_count",
    "expected_profile",
    "expected_gee",
    "unbiased_singleton_coefficient",
    "variance_distinct",
]

_SCHEMES = ("without", "with")


# n = sum of >= 1 class sizes over a non-empty array, r is validated;
# callers unpack ``sizes, n, r`` and the prover carries these facts to
# every ``/ n`` and ``sqrt(n / r)`` downstream.
@ensures("result[1] >= 1.0", "result[2] >= 1")
def _validated(
    class_sizes: npt.ArrayLike, sample_size: int, scheme: str
) -> tuple[npt.NDArray[np.float64], float, int]:
    sizes = np.asarray(class_sizes, dtype=np.float64)
    if sizes.ndim != 1 or sizes.size == 0:
        raise InvalidParameterError("class_sizes must be a non-empty 1-D array")
    if (sizes < 1).any():
        raise InvalidParameterError("class sizes must be >= 1")
    n = float(sizes.sum())
    r = int(sample_size)
    if r < 1:
        raise InvalidParameterError(f"sample size must be >= 1, got {sample_size}")
    if scheme not in _SCHEMES:
        raise InvalidParameterError(
            f"scheme must be one of {_SCHEMES}, got {scheme!r}"
        )
    if scheme == "without" and r > n:
        raise InvalidParameterError(
            f"cannot sample {r} rows without replacement from {n:.0f}"
        )
    return sizes, n, r


def _log_binomial(a: npt.NDArray[np.float64], b: float) -> npt.NDArray[np.float64]:
    """``log C(a, b)`` elementwise, with ``-inf`` where ``b > a``."""
    a = np.asarray(a, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        result = (
            np.vectorize(math.lgamma)(a + 1.0)
            - math.lgamma(b + 1.0)
            - np.vectorize(math.lgamma)(np.maximum(a - b, 0.0) + 1.0)
        )
    return np.where(a >= b, result, -np.inf)


@requires("n >= 1", "r >= 1")
def _log_prob_count(
    sizes: npt.NDArray[np.float64], n: float, r: int, i: int, scheme: str
) -> npt.NDArray[np.float64]:
    """``log P[count_j = i]`` for every class ``j``."""
    if scheme == "with":
        p = sizes / n
        # sizes >= 1 and n >= 1, so p >= 1/n > 0; the clamp is an exact
        # no-op that makes the log domain machine-checkable (R1302).
        log_p = np.log(np.maximum(p, 1e-300))
        with np.errstate(divide="ignore"):  # p = 1 -> log(0) = -inf, handled below
            log_q = np.log1p(-p)
        log_choose = (
            math.lgamma(r + 1) - math.lgamma(i + 1) - math.lgamma(r - i + 1)
        )
        # r and i are scalars; guard the tail so (r-i)=0 never multiplies
        # a -inf from p = 1 classes.
        tail = (r - i) * log_q if r - i > 0 else np.zeros_like(log_q)
        return log_choose + i * log_p + tail
    # Hypergeometric.
    return (
        _log_binomial(sizes, float(i))
        + _log_binomial(n - sizes, float(r - i))
        - _log_binomial(np.array([n]), float(r))[0]
    )


def expected_distinct(class_sizes: npt.ArrayLike, sample_size: int, scheme: str = "without") -> float:
    """``E[d]``: expected number of distinct values in the sample."""
    sizes, n, r = _validated(class_sizes, sample_size, scheme)
    log_unseen = _log_prob_count(sizes, n, r, 0, scheme)
    # 1 - exp(log_unseen), stably.  Log-probabilities are <= 0, so the
    # min-clamps here and below are exact no-ops that bound the exp
    # arguments away from overflow (R1303).
    return float(np.sum(-np.expm1(np.minimum(0.0, log_unseen))))


def expected_frequency_count(
    class_sizes: npt.ArrayLike, sample_size: int, frequency: int, scheme: str = "without"
) -> float:
    """``E[f_i]``: expected number of values sampled exactly ``i`` times."""
    sizes, n, r = _validated(class_sizes, sample_size, scheme)
    i = int(frequency)
    if not 0 <= i <= r:
        raise InvalidParameterError(f"frequency must be in [0, r], got {frequency}")
    return float(
        np.sum(np.exp(np.minimum(0.0, _log_prob_count(sizes, n, r, i, scheme))))
    )


def expected_profile(
    class_sizes: npt.ArrayLike,
    sample_size: int,
    scheme: str = "without",
    max_frequency: int | None = None,
) -> dict[int, float]:
    """``{i: E[f_i]}`` for ``i = 1 .. max_frequency`` (default ``min(r, 64)``).

    Entries below 1e-12 are dropped, mirroring the sparsity of real
    profiles.
    """
    sizes, n, r = _validated(class_sizes, sample_size, scheme)
    limit = min(r, 64) if max_frequency is None else min(int(max_frequency), r)
    profile: dict[int, float] = {}
    for i in range(1, limit + 1):
        value = float(
            np.sum(np.exp(np.minimum(0.0, _log_prob_count(sizes, n, r, i, scheme))))
        )
        if value > 1e-12:
            profile[i] = value
    return profile


def expected_gee(class_sizes: npt.ArrayLike, sample_size: int, scheme: str = "with") -> float:
    """``E[GEE] = E[d] + (sqrt(n/r) - 1) E[f_1]`` — Theorem 2's quantity.

    Defaults to with-replacement sampling, the model the proof uses.
    """
    sizes, n, r = _validated(class_sizes, sample_size, scheme)
    e_d = expected_distinct(sizes, r, scheme)
    e_f1 = expected_frequency_count(sizes, r, 1, scheme)
    return e_d + (math.sqrt(n / r) - 1.0) * e_f1


def variance_distinct(
    class_sizes: npt.ArrayLike, sample_size: int, scheme: str = "with"
) -> float:
    """Exact ``Var[d]`` — the "Variance" desideratum of §1.2, computable.

    Writing ``d = Σ_j I_j`` (``I_j`` = class ``j`` seen),

        ``Var[d] = Σ_j u_j (1 - u_j)
                   + Σ_{j != k} (P[both unseen] - u_j u_k)``

    with ``u_j = P[class j unseen]``.  For sampling *with* replacement
    ``P[both unseen] = (1 - p_j - p_k)^r``; *without* replacement it is
    ``C(n - n_j - n_k, r) / C(n, r)``.  The pairwise term makes this
    ``O(D^2)`` — fine for the analytical studies and tests it serves;
    for production-size ``D`` use the bootstrap machinery instead.
    """
    sizes, n, r = _validated(class_sizes, sample_size, scheme)
    d_count = sizes.size
    log_unseen = _log_prob_count(sizes, n, r, 0, scheme)
    unseen = np.exp(np.minimum(0.0, log_unseen))
    variance = float(np.sum(unseen * (1.0 - unseen)))
    if d_count > 1:
        if scheme == "with":
            p = sizes / n
            pair_base = 1.0 - (p[:, None] + p[None, :])
            with np.errstate(invalid="ignore", divide="ignore"):
                # pair_base <= 1, so r * log(pair_base) <= 0: exact clamp.
                both_unseen = np.where(
                    pair_base > 0.0,
                    np.exp(
                        np.minimum(
                            0.0, r * np.log(np.maximum(pair_base, 1e-300))
                        )
                    ),
                    0.0,
                )
        else:
            remaining = n - (sizes[:, None] + sizes[None, :])
            log_total = _log_binomial(np.array([n]), float(r))[0]
            log_both = _log_binomial(remaining, float(r)) - log_total
            both_unseen = np.where(
                remaining >= r, np.exp(np.minimum(0.0, log_both)), 0.0
            )
        off_diagonal = both_unseen - unseen[:, None] * unseen[None, :]
        np.fill_diagonal(off_diagonal, 0.0)
        variance += float(off_diagonal.sum())
    return max(variance, 0.0)


def unbiased_singleton_coefficient(
    class_sizes: npt.ArrayLike, sample_size: int, scheme: str = "without"
) -> float:
    """The exactly-unbiased ``K`` of §5.2: ``(D - E[d]) / E[f_1]``.

    ``D_hat = d + K f_1`` with this ``K`` satisfies ``E[D_hat] = D`` on
    this exact population.  AE approximates this quantity from the
    sample alone; the tests compare its approximation against this
    ground truth.
    """
    sizes, n, r = _validated(class_sizes, sample_size, scheme)
    e_f1 = expected_frequency_count(sizes, r, 1, scheme)
    if e_f1 <= 0.0:
        raise InvalidParameterError(
            "E[f1] is zero for this population/sample size; K is undefined"
        )
    return (sizes.size - expected_distinct(sizes, r, scheme)) / e_f1
