"""HYBGEE — HYBSKEW with GEE on the high-skew branch (paper §5.1).

The paper observes that GEE only errs on *low-frequency* values; high
frequency values are counted essentially exactly.  GEE therefore excels
precisely where Shlosser's estimator was deployed by HYBSKEW — high-skew
data — and on all the real-world datasets tested.  HYBGEE keeps
HYBSKEW's chi-squared gate and smoothed-jackknife low-skew branch but
"substitutes GEE for the Shlosser estimator in the case of high-skew
data".  The experiments (Figures 1–16) show HYBGEE matching HYBSKEW on
low skew and significantly beating it on high skew.
"""

from __future__ import annotations

from repro.contracts import requires
from repro.core.base import ConfidenceInterval, DistinctValueEstimator
from repro.core.bounds import gee_interval
from repro.core.gee import GEE
from repro.estimators.hybskew import HybridSkew
from repro.frequency.profile import FrequencyProfile

__all__ = ["HybridGEE"]


class HybridGEE(HybridSkew):
    """HYBSKEW with GEE substituted on the high-skew branch.

    Parameters
    ----------
    alpha:
        Significance level of the chi-squared skew gate (as HYBSKEW).
    low_skew_estimator:
        Defaults to the smoothed jackknife, exactly as HYBSKEW; on
        low-skew data HYBGEE and HYBSKEW therefore coincide ("they
        overlap in the figure", §6).
    """

    name = "HYBGEE"

    def __init__(
        self,
        alpha: float = 0.05,
        low_skew_estimator: DistinctValueEstimator | None = None,
    ) -> None:
        super().__init__(
            alpha=alpha,
            low_skew_estimator=low_skew_estimator,
            high_skew_estimator=GEE(),
        )

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _interval(
        self, profile: FrequencyProfile, population_size: int
    ) -> ConfidenceInterval:
        # The GEE interval [d, d - f1 + (n/r) f1] is valid regardless of
        # which branch produced the point estimate.
        return gee_interval(profile, population_size)
