"""Estimator framework: result types, sanity bounds, and the base class.

Section 2 of the paper fixes the contract every estimator obeys:

* the input is a random sample of ``r`` rows from a column of ``n`` rows,
  summarized by its frequency profile (``d`` and the ``f_i``);
* the output ``D_hat`` is clamped to the *sanity bounds* ``d <= D_hat <= n``;
* quality is measured by the *ratio error*
  ``max(D_hat / D, D / D_hat) >= 1``.

Estimators here are pure: they read only ``(profile, n)`` plus their own
configuration, never global state, and take no randomness of their own.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from repro.contracts import (
    check_contracts,
    ensures,
    requires,
    runtime_checks_enabled,
)
from repro.errors import InvalidParameterError
from repro.frequency.batch import FrequencyProfileBatch
from repro.frequency.profile import FrequencyProfile
from repro.obs.recorder import OBS

#: What ``estimate_batch`` accepts: an already-packed batch or any
#: sequence of profiles (packed on entry).
ProfileBatchLike = Union[FrequencyProfileBatch, Sequence[FrequencyProfile]]

#: What ``_estimate_raw_batch`` returns per profile: exactly the scalar
#: ``_estimate_raw`` outcome (a float, optionally with diagnostics).
RawOutcome = Union[float, tuple[float, Mapping[str, object]]]

__all__ = [
    "ConfidenceInterval",
    "Estimate",
    "DistinctValueEstimator",
    "clamp_estimate",
    "ratio_error",
    "relative_error",
]


@requires("sample_distinct >= 0", "sample_distinct <= population_size")
@ensures("result >= sample_distinct", "result <= population_size")
def clamp_estimate(raw: float, sample_distinct: int, population_size: int) -> float:
    """Apply the paper's sanity bounds: ``d <= D_hat <= n``.

    Non-finite or NaN raw values are mapped to the nearest bound
    (``n`` for ``+inf``, ``d`` otherwise), so downstream code always
    receives a usable number.
    """
    if math.isnan(raw):
        return float(sample_distinct)
    if raw == math.inf:
        return float(population_size)
    return float(min(max(raw, sample_distinct), population_size))


def ratio_error(estimate: float, true_distinct: float) -> float:
    """The paper's multiplicative error: ``max(D_hat/D, D/D_hat)``.

    Always ``>= 1``; equals 1 exactly when the estimate is perfect.
    """
    if true_distinct <= 0:
        raise InvalidParameterError(
            f"true distinct count must be positive, got {true_distinct}"
        )
    if estimate <= 0:
        raise InvalidParameterError(f"estimate must be positive, got {estimate}")
    if estimate >= true_distinct:
        return estimate / true_distinct
    return true_distinct / estimate


def relative_error(estimate: float, true_distinct: float) -> float:
    """The conventional signed relative error ``(D_hat - D) / D``.

    Included for comparability with Haas et al. (1995); the paper argues
    the ratio error is the better-behaved measure.
    """
    if true_distinct <= 0:
        raise InvalidParameterError(
            f"true distinct count must be positive, got {true_distinct}"
        )
    return (estimate - true_distinct) / true_distinct


@dataclass(frozen=True)
class ConfidenceInterval:
    """An interval claimed to contain the true number of distinct values.

    GEE's interval is ``[d, d - f1 + (n/r) f1]`` (paper §4); AE inherits
    the same construction.
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise InvalidParameterError(
                f"interval lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


@dataclass(frozen=True)
class Estimate:
    """A distinct-values estimate together with its provenance.

    Attributes
    ----------
    value:
        The final estimate after sanity bounds.
    raw_value:
        The estimator's output before clamping (useful for diagnosing
        over/under-shoot).
    estimator:
        Name of the estimator that produced this value.
    sample_size, population_size:
        ``r`` and ``n``.
    sample_distinct:
        ``d``, the number of distinct values actually observed.
    interval:
        Optional confidence interval (GEE-family estimators provide one).
    details:
        Estimator-specific diagnostics, e.g. which branch a hybrid chose.
    """

    value: float
    raw_value: float
    estimator: str
    sample_size: int
    population_size: int
    sample_distinct: int
    interval: ConfidenceInterval | None = None
    details: Mapping[str, object] = field(default_factory=dict)

    def ratio_error(self, true_distinct: float) -> float:
        """Ratio error of this estimate against the ground truth."""
        return ratio_error(self.value, true_distinct)

    def relative_error(self, true_distinct: float) -> float:
        """Signed relative error of this estimate against the ground truth."""
        return relative_error(self.value, true_distinct)


class DistinctValueEstimator(ABC):
    """Base class for all distinct-values estimators.

    Subclasses implement :meth:`_estimate_raw`, returning the unclamped
    estimate (optionally with a diagnostics mapping); :meth:`estimate`
    validates inputs, applies the sanity bounds, and wraps everything in
    an :class:`Estimate`.
    """

    #: Short stable identifier, e.g. ``"GEE"``; used by the registry,
    #: experiment reports, and figures.
    name: str = "base"

    # The paper's sanity bounds, §2: d <= D_hat <= n.  (Preconditions are
    # enforced by the explicit validation below — it must keep raising
    # InvalidParameterError, so they are not @requires clauses.)
    @ensures(
        "result.value >= profile.distinct",
        "result.value <= population_size",
    )
    def estimate(self, profile: FrequencyProfile, population_size: int) -> Estimate:
        """Estimate the number of distinct values in a column of ``population_size`` rows."""
        # Telemetry: every invocation is counted and its wall time
        # accumulated per estimator name (one attribute check when off).
        # No per-call span — a sweep makes hundreds of thousands of
        # estimates; the enclosing ``harness.estimate`` span carries the
        # tree attribution instead.
        started = time.perf_counter() if OBS.enabled else 0.0
        n = int(population_size)
        d = profile.distinct
        r = profile.sample_size
        if n <= 0:
            raise InvalidParameterError(f"population size must be positive, got {n}")
        if r == 0:
            raise InvalidParameterError("cannot estimate from an empty sample")
        if d > n:
            raise InvalidParameterError(
                f"sample has {d} distinct values but the population only {n} rows"
            )
        if profile.max_frequency > n:
            raise InvalidParameterError(
                f"a sample value occurs {profile.max_frequency} times but the "
                f"population only has {n} rows"
            )
        outcome = self._estimate_raw(profile, n)
        # Single-assignment bindings (no re-bound branch locals): the
        # static prover chases one definition per name when discharging
        # the sanity-bound clauses below.
        raw = float(outcome[0]) if isinstance(outcome, tuple) else float(outcome)
        details = outcome[1] if isinstance(outcome, tuple) else {}
        result = Estimate(
            value=clamp_estimate(raw, d, n),
            raw_value=float(raw),
            estimator=self.name,
            sample_size=r,
            population_size=n,
            sample_distinct=d,
            interval=self._interval(profile, n),
            details=details,
        )
        if OBS.enabled:
            elapsed = time.perf_counter() - started
            OBS.add(f"estimator.calls.{self.name}")
            OBS.add(f"estimator.seconds.{self.name}", elapsed)
            OBS.observe(f"estimator.seconds.{self.name}", elapsed)
        return result

    def estimate_batch(
        self, profiles: ProfileBatchLike, population_size: int
    ) -> list[Estimate]:
        """Estimate every profile of a batch in one call.

        Semantically identical to ``[self.estimate(p, population_size)
        for p in profiles]`` — same values, raw values, intervals,
        details, exceptions, and (under ``REPRO_CONTRACTS=1``) the same
        contract clauses enforced per profile — but estimators that
        implement :meth:`_estimate_raw_batch` compute the whole stack in
        a few vectorized passes.  Estimators without a vector kernel
        fall back to the scalar loop, so every subclass keeps working.

        Contract semantics on the batch path: the subclass's
        ``@requires`` clauses are checked for every profile *before* the
        kernel runs, and its ``@ensures`` clauses (plus the sanity-bound
        postconditions of :meth:`estimate`) are checked per result after
        it — the same clauses, compiled once, evaluated per profile.
        Inner helper contracts (e.g. on plug-in estimators a kernel
        inlines) are covered by the scalar fallback and the equivalence
        tests instead.
        """
        batch = (
            profiles
            if isinstance(profiles, FrequencyProfileBatch)
            else FrequencyProfileBatch.from_profiles(profiles)
        )
        if not batch.profiles:
            return []
        n = int(population_size)
        if (
            type(self)._estimate_raw_batch
            is DistinctValueEstimator._estimate_raw_batch
        ):
            # No vector kernel at all: skip straight to the scalar loop
            # (each estimate() call validates and meters itself) rather
            # than paying the batch validation just to discover None.
            return [self.estimate(p, n) for p in batch.profiles]
        started = time.perf_counter() if OBS.enabled else 0.0
        self._validate_batch(batch, n)
        checks = runtime_checks_enabled()
        if checks:
            for profile in batch.profiles:
                check_contracts(
                    self._estimate_raw,
                    {"self": self, "profile": profile, "population_size": n},
                    "requires",
                )
        outcomes = self._estimate_raw_batch(batch, n)
        if outcomes is None:
            # Scalar fallback: each estimate() call does its own
            # validation, contracts, clamping, and telemetry.
            return [self.estimate(p, n) for p in batch.profiles]
        intervals = self._interval_batch(batch, n)
        distincts = batch.distinct.tolist()
        sample_sizes = batch.sample_size.tolist()
        results: list[Estimate] = []
        for k, profile in enumerate(batch.profiles):
            outcome = outcomes[k]
            if checks:
                check_contracts(
                    self._estimate_raw,
                    {
                        "self": self,
                        "profile": profile,
                        "population_size": n,
                        "result": outcome,
                    },
                    "ensures",
                )
            raw = float(outcome[0]) if isinstance(outcome, tuple) else float(outcome)
            details = outcome[1] if isinstance(outcome, tuple) else {}
            result = Estimate(
                value=clamp_estimate(raw, distincts[k], n),
                raw_value=float(raw),
                estimator=self.name,
                sample_size=sample_sizes[k],
                population_size=n,
                sample_distinct=distincts[k],
                interval=intervals[k],
                details=details,
            )
            if checks:
                check_contracts(
                    type(self).estimate,
                    {
                        "self": self,
                        "profile": profile,
                        "population_size": n,
                        "result": result,
                    },
                    "ensures",
                )
            results.append(result)
        if OBS.enabled:
            elapsed = time.perf_counter() - started
            OBS.add(f"estimator.calls.{self.name}", len(results))
            OBS.add(f"estimator.seconds.{self.name}", elapsed)
            OBS.observe(f"estimator.seconds.{self.name}", elapsed)
        return results

    def _validate_batch(self, batch: FrequencyProfileBatch, n: int) -> None:
        """Re-run :meth:`estimate`'s input validation over a batch.

        One vectorized feasibility pass over the batch's cached summary
        vectors; when any profile is infeasible, the scalar clauses are
        replayed on the *first* one in batch order, so the raised error
        matches the scalar loop's exactly.
        """
        if n <= 0:
            raise InvalidParameterError(f"population size must be positive, got {n}")
        infeasible = (
            (batch.sample_size == 0)
            | (batch.distinct > n)
            | (batch.max_frequency > n)
        )
        if not bool(infeasible.any()):
            return
        profile = batch.profiles[int(np.argmax(infeasible))]
        if profile.sample_size == 0:
            raise InvalidParameterError("cannot estimate from an empty sample")
        if profile.distinct > n:
            raise InvalidParameterError(
                f"sample has {profile.distinct} distinct values but the "
                f"population only {n} rows"
            )
        raise InvalidParameterError(
            f"a sample value occurs {profile.max_frequency} times but the "
            f"population only has {n} rows"
        )

    @abstractmethod
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> float | tuple[float, Mapping[str, object]]:
        """Return the unclamped estimate, optionally with diagnostics."""

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[RawOutcome] | None:
        """Hook: unclamped estimates for a whole batch, or ``None``.

        Implementations must return one outcome per profile, each
        bitwise equal to what :meth:`_estimate_raw` returns for that
        profile (including any details mapping).  Returning ``None``
        selects the scalar fallback loop — the default for estimators
        without a vector kernel.
        """
        return None

    def _interval(
        self, profile: FrequencyProfile, population_size: int
    ) -> ConfidenceInterval | None:
        """Hook for estimators that provide a confidence interval."""
        return None

    def _interval_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[ConfidenceInterval | None]:
        """Per-profile confidence intervals for the batch path.

        The default defers to :meth:`_interval` per profile (preserving
        any contracts on it); vectorized estimators may override.
        """
        return [self._interval(p, population_size) for p in batch.profiles]

    def __call__(self, profile: FrequencyProfile, population_size: int) -> float:
        """Shorthand returning just the clamped numeric estimate."""
        return self.estimate(profile, population_size).value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
