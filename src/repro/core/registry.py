"""Registry of estimators by name.

Experiments, benchmarks, and examples refer to estimators by their short
names (``"GEE"``, ``"AE"``, ...); this registry is the single mapping
from names to constructors.  The default estimator set — the six the
paper's §6 experiments compare — is exposed as :data:`PAPER_ESTIMATORS`.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Callable

from repro.core.ae import AE
from repro.core.base import DistinctValueEstimator
from repro.core.gee import GEE
from repro.core.hybgee import HybridGEE
from repro.errors import InvalidParameterError
from repro.estimators.classical import (
    Bootstrap,
    Chao,
    ChaoLee,
    Goodman,
    HorvitzThompson,
    NaiveScaleUp,
    SampleDistinct,
)
from repro.estimators.extrapolation import GoodTuring
from repro.estimators.hybskew import HybridSkew
from repro.estimators.hybvar import HybridVariance
from repro.estimators.jackknife import (
    DUJ2A,
    FirstOrderJackknife,
    MethodOfMoments,
    SecondOrderJackknife,
    SmoothedJackknife,
    UnsmoothedSecondOrderJackknife,
)
from repro.estimators.shlosser import ModifiedShlosser, Shlosser
from repro.obs.recorder import OBS

__all__ = [
    "ESTIMATOR_FACTORIES",
    "PAPER_ESTIMATORS",
    "make_estimator",
    "make_estimators",
    "available_estimators",
]

ESTIMATOR_FACTORIES: dict[str, Callable[[], DistinctValueEstimator]] = {
    "GEE": GEE,
    "AE": AE,
    "HYBGEE": HybridGEE,
    "HYBSKEW": HybridSkew,
    "HYBVAR": HybridVariance,
    "DUJ2A": DUJ2A,
    "SJ": SmoothedJackknife,
    "MM": MethodOfMoments,
    "UJ2": UnsmoothedSecondOrderJackknife,
    "JK1": FirstOrderJackknife,
    "JK2": SecondOrderJackknife,
    "Shlosser": Shlosser,
    "ModShlosser": ModifiedShlosser,
    "Chao84": Chao,
    "ChaoLee": ChaoLee,
    "Goodman": Goodman,
    "Bootstrap": Bootstrap,
    "GT": GoodTuring,
    "HT": HorvitzThompson,
    "Scale": NaiveScaleUp,
    "d": SampleDistinct,
}

#: The six estimators compared throughout the paper's Section 6.
PAPER_ESTIMATORS: tuple[str, ...] = (
    "GEE",
    "AE",
    "HYBGEE",
    "HYBSKEW",
    "HYBVAR",
    "DUJ2A",
)


def make_estimator(name: str) -> DistinctValueEstimator:
    """Instantiate an estimator by registry name.

    Every instance built here is telemetry-instrumented through the
    shared :meth:`~repro.core.base.DistinctValueEstimator.estimate`
    wrapper (per-name invocation counters and accumulated seconds);
    the registry additionally counts constructions per name so a trace
    distinguishes "called often" from "rebuilt often".
    """
    try:
        factory = ESTIMATOR_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(ESTIMATOR_FACTORIES))
        raise InvalidParameterError(
            f"unknown estimator {name!r}; known estimators: {known}"
        ) from None
    if OBS.enabled:
        OBS.add(f"registry.instantiations.{name}")
    return factory()


def make_estimators(names: Iterable[str]) -> list[DistinctValueEstimator]:
    """Instantiate several estimators by name, preserving order."""
    return [make_estimator(name) for name in names]


def available_estimators() -> tuple[str, ...]:
    """All registered estimator names, sorted."""
    return tuple(sorted(ESTIMATOR_FACTORIES))
