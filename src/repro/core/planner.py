"""Sample-size planning from the paper's two theorems.

A statistics collector has to decide *how many rows to read* before it
knows anything about the column.  The paper brackets that decision:

* **Necessary** (Theorem 1): fewer than
  ``r_min = n L / (2 err^2 + L)`` rows (``L = ln(1/gamma)``) and *no*
  estimator can guarantee ratio error ``err`` with confidence
  ``1 - gamma``.
* **Sufficient** (Theorem 2): GEE's expected ratio error is at most
  ``~ e * sqrt(n / r)``, so ``r_suf = ceil(e^2 n / err^2)`` rows
  suffice for GEE to promise ``err`` *in expectation* on every input.

Between the two lies the design space; the planner reports both ends
plus the implied sampling fractions, and refuses targets that would
require a full scan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.theory import minimum_sample_size_for_error
from repro.errors import InvalidParameterError

__all__ = ["SamplingPlan", "plan_sample_size", "gee_sufficient_sample_size"]


@dataclass(frozen=True)
class SamplingPlan:
    """The bracketed sample-size recommendation for one target error."""

    population_size: int
    target_error: float
    gamma: float
    necessary_rows: int
    sufficient_rows: int
    full_scan_needed: bool

    @property
    def necessary_fraction(self) -> float:
        return self.necessary_rows / self.population_size

    @property
    def sufficient_fraction(self) -> float:
        return min(1.0, self.sufficient_rows / self.population_size)


def gee_sufficient_sample_size(population_size: int, target_error: float) -> int:
    """Rows at which GEE's Theorem 2 envelope ``e*sqrt(n/r)`` meets the target.

    Returns a value capped at ``n`` (a full scan is always sufficient —
    GEE with ``r = n`` returns ``d = D`` exactly).
    """
    if population_size < 1:
        raise InvalidParameterError(
            f"population size must be >= 1, got {population_size}"
        )
    if target_error < 1.0:
        raise InvalidParameterError(
            f"ratio errors are >= 1 by definition, got {target_error}"
        )
    rows = math.ceil(math.e**2 * population_size / target_error**2)
    return min(rows, population_size)


def plan_sample_size(
    population_size: int, target_error: float, gamma: float = 0.5
) -> SamplingPlan:
    """Bracket the sample size needed for a target worst-case ratio error.

    ``full_scan_needed`` is set when even the *sufficient* bound demands
    the entire table (targets tighter than ``e`` always do: the Theorem 2
    envelope cannot go below ``e`` at ``r = n``; exactness then comes
    from the sanity bounds, i.e. from actually scanning).
    """
    necessary = minimum_sample_size_for_error(
        population_size, target_error, gamma=gamma
    )
    sufficient = gee_sufficient_sample_size(population_size, target_error)
    return SamplingPlan(
        population_size=int(population_size),
        target_error=float(target_error),
        gamma=float(gamma),
        necessary_rows=necessary,
        sufficient_rows=sufficient,
        full_scan_needed=sufficient >= population_size,
    )
