"""The LOWER/UPPER bounds that accompany GEE-family estimates (paper §4).

Alongside the point estimate, GEE yields an interval that contains the
true number of distinct values with high probability:

* ``LOWER = d`` — the distinct values actually seen; always valid.
* ``UPPER = sum_{i>=2} f_i + (n/r) f_1`` — every singleton in the sample
  may represent up to ``n/r`` distinct values of the population.

The width of ``[LOWER, UPPER]`` quantifies the confidence in the
estimate; Tables 1 and 2 of the paper track how sharply it collapses as
the sampling fraction grows.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import ConfidenceInterval
from repro.errors import InvalidParameterError
from repro.frequency.batch import FrequencyProfileBatch, gather_over_unique
from repro.frequency.profile import FrequencyProfile

__all__ = [
    "gee_lower_bound",
    "gee_upper_bound",
    "gee_interval",
    "gee_interval_batch",
]


def gee_lower_bound(profile: FrequencyProfile) -> float:
    """``LOWER = d``: the number of distinct values observed in the sample."""
    return float(profile.distinct)


def gee_upper_bound(profile: FrequencyProfile, population_size: int) -> float:
    """``UPPER = sum_{i>=2} f_i + (n/r) f_1``, capped at ``n``.

    Raises
    ------
    InvalidParameterError
        If the sample is empty or ``population_size`` is not positive.
    """
    n = int(population_size)
    r = profile.sample_size
    if n <= 0:
        raise InvalidParameterError(f"population size must be positive, got {n}")
    if r == 0:
        raise InvalidParameterError("cannot bound distinct values from an empty sample")
    non_singletons = profile.distinct - profile.f1
    upper = non_singletons + (n / r) * profile.f1
    return float(min(upper, n))


def gee_interval(profile: FrequencyProfile, population_size: int) -> ConfidenceInterval:
    """The GEE confidence interval ``[LOWER, UPPER]``."""
    return ConfidenceInterval(
        lower=gee_lower_bound(profile),
        upper=gee_upper_bound(profile, population_size),
    )


def gee_interval_batch(
    batch: FrequencyProfileBatch, population_size: int
) -> list[ConfidenceInterval]:
    """:func:`gee_interval` for every profile of a batch, vectorized.

    ``n / r`` is computed once per unique sample size with Python scalar
    division and gathered, so each interval is bitwise the scalar one.
    """
    n = int(population_size)
    r = batch.sample_size
    scale = gather_over_unique(
        r, {int(rv): n / int(rv) for rv in np.unique(r).tolist()}  # reprolint: disable=R101 - rv ranges over sample sizes, >= 1 by the batch requires
    )
    uppers = np.minimum(batch.distinct - batch.f1 + scale * batch.f1, float(n))
    return [
        ConfidenceInterval(lower=float(lower), upper=float(upper))
        for lower, upper in zip(batch.distinct.tolist(), uppers.tolist())
    ]
