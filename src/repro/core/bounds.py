"""The LOWER/UPPER bounds that accompany GEE-family estimates (paper §4).

Alongside the point estimate, GEE yields an interval that contains the
true number of distinct values with high probability:

* ``LOWER = d`` — the distinct values actually seen; always valid.
* ``UPPER = sum_{i>=2} f_i + (n/r) f_1`` — every singleton in the sample
  may represent up to ``n/r`` distinct values of the population.

The width of ``[LOWER, UPPER]`` quantifies the confidence in the
estimate; Tables 1 and 2 of the paper track how sharply it collapses as
the sampling fraction grows.
"""

from __future__ import annotations

from repro.core.base import ConfidenceInterval
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = ["gee_lower_bound", "gee_upper_bound", "gee_interval"]


def gee_lower_bound(profile: FrequencyProfile) -> float:
    """``LOWER = d``: the number of distinct values observed in the sample."""
    return float(profile.distinct)


def gee_upper_bound(profile: FrequencyProfile, population_size: int) -> float:
    """``UPPER = sum_{i>=2} f_i + (n/r) f_1``, capped at ``n``.

    Raises
    ------
    InvalidParameterError
        If the sample is empty or ``population_size`` is not positive.
    """
    n = int(population_size)
    r = profile.sample_size
    if n <= 0:
        raise InvalidParameterError(f"population size must be positive, got {n}")
    if r == 0:
        raise InvalidParameterError("cannot bound distinct values from an empty sample")
    non_singletons = profile.distinct - profile.f1
    upper = non_singletons + (n / r) * profile.f1
    return float(min(upper, n))


def gee_interval(profile: FrequencyProfile, population_size: int) -> ConfidenceInterval:
    """The GEE confidence interval ``[LOWER, UPPER]``."""
    return ConfidenceInterval(
        lower=gee_lower_bound(profile),
        upper=gee_upper_bound(profile, population_size),
    )
