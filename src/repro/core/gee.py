"""GEE — the Guaranteed-Error Estimator (paper §4).

For a sample of ``r`` rows from an ``n``-row column,

    ``D_hat = sqrt(n / r) * f_1 + sum_{i >= 2} f_i``

equivalently ``d + (sqrt(n/r) - 1) * f_1``.

Intuition (paper §4): values seen more than once are "high frequency" and
are counted once each.  The ``f_1`` singletons stand in for the low
frequency values: they represent at least ``f_1`` and at most
``(n/r) f_1`` distinct values of the population, and taking the geometric
mean ``sqrt(n/r) f_1`` of those extremes minimizes the worst-case *ratio*
error.  Theorem 2 proves the expected ratio error is ``O(sqrt(n/r))`` on
*every* input, matching the Theorem 1 lower bound within a constant
(about ``e``).

GEE also supplies the confidence interval ``[d, d - f1 + (n/r) f1]``
(see :mod:`repro.core.bounds`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.contracts import ensures, requires
from repro.core.base import ConfidenceInterval, DistinctValueEstimator
from repro.core.bounds import gee_interval, gee_interval_batch
from repro.errors import InvalidParameterError
from repro.frequency.batch import FrequencyProfileBatch, gather_over_unique
from repro.frequency.profile import FrequencyProfile

__all__ = ["GEE", "gee_estimate", "gee_coefficient"]


@ensures("result > 0.0")
def gee_coefficient(population_size: int, sample_size: int) -> float:
    """The GEE scale-up coefficient for singletons, ``sqrt(n / r)``."""
    if sample_size <= 0:
        raise InvalidParameterError(f"sample size must be positive, got {sample_size}")
    if population_size <= 0:
        raise InvalidParameterError(
            f"population size must be positive, got {population_size}"
        )
    return math.sqrt(population_size / sample_size)


class GEE(DistinctValueEstimator):
    """The Guaranteed-Error Estimator with its confidence interval.

    Parameters
    ----------
    exponent:
        Exponent ``a`` in the singleton coefficient ``(n/r)^a``.  The
        paper's estimator uses ``a = 0.5`` (the geometric mean of the
        two extreme bounds); other values are exposed only for the
        coefficient-ablation study and are **not** covered by the
        Theorem 2 guarantee.
    """

    name = "GEE"

    def __init__(self, exponent: float = 0.5) -> None:
        if not 0.0 <= exponent <= 1.0:
            raise InvalidParameterError(
                f"GEE exponent must lie in [0, 1], got {exponent}"
            )
        self.exponent = float(exponent)
        if not math.isclose(exponent, 0.5):
            self.name = f"GEE(a={exponent:g})"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.sample_size <= population_size",
        "profile.distinct >= 0",
        "profile.f1 >= 0",
    )
    @ensures("result >= profile.distinct")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        r = profile.sample_size
        coefficient = (population_size / r) ** self.exponent
        return profile.distinct + (coefficient - 1.0) * profile.f1

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        # ``(n/r) ** a`` once per unique r with Python scalar arithmetic
        # (same division and pow the scalar path uses), then elementwise
        # IEEE add/multiply — bitwise the scalar results.
        r = batch.sample_size
        coefficient = gather_over_unique(
            r,
            {
                int(rv): (population_size / int(rv)) ** self.exponent  # reprolint: disable=R101 - rv ranges over sample sizes, >= 1 by the batch requires
                for rv in np.unique(r).tolist()
            },
        )
        values = batch.distinct + (coefficient - 1.0) * batch.f1
        return [float(value) for value in values.tolist()]

    def _interval(
        self, profile: FrequencyProfile, population_size: int
    ) -> ConfidenceInterval:
        return gee_interval(profile, population_size)

    def _interval_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[ConfidenceInterval | None]:
        return list(gee_interval_batch(batch, population_size))


def gee_estimate(profile: FrequencyProfile, population_size: int) -> float:
    """Functional form of GEE: the clamped estimate as a plain float."""
    return GEE().estimate(profile, population_size).value
