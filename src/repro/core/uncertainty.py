"""Bootstrap uncertainty for arbitrary estimators.

The paper's desiderata (§1.2) demand that "an estimator should indicate
the confidence in its estimate and its variance", and §4 delivers that
analytically for GEE.  For the other estimators — which publish no
interval — this module provides the generic sample-level bootstrap:
resample the observed sample (multinomially over its observed classes),
re-run the estimator on each replicate, and report percentile bounds
and the replicate standard deviation.

The bootstrap interval reflects *estimator variability given the
sample*; unlike GEE's ``[LOWER, UPPER]`` it carries no worst-case
coverage guarantee (Theorem 1 forbids one), which is exactly the
contrast the paper draws.

Resampling a sample systematically collapses its singletons (an
observed singleton reappears in a replicate ``Poisson(1)`` times, so
``f_1`` shrinks and ``f_2`` grows), which biases richness estimators on
replicates downward by far more than their spread — neither percentile
nor reflected bootstrap intervals are honest here.  What the replicates
*do* measure reliably is variability, so we report a **variability
band**: the interval centered on the point estimate ``T`` whose width
is the central ``confidence`` quantile range of the replicates, clamped
to the sanity range ``[d, n]``.  Use it to compare estimator stability
(the paper's §5.2 instability argument against HYBSKEW), not as a
coverage interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.base import ConfidenceInterval, DistinctValueEstimator
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = [
    "BootstrapSummary",
    "bootstrap_profile",
    "bootstrap_estimate",
    "coefficient_of_variation",
]


@dataclass(frozen=True)
class BootstrapSummary:
    """Replicate statistics for one estimator on one sample."""

    estimate: float
    interval: ConfidenceInterval
    std: float
    replicates: int
    confidence: float


def bootstrap_profile(
    profile: FrequencyProfile, rng: np.random.Generator
) -> FrequencyProfile:
    """One bootstrap replicate: resample ``r`` rows from the sample.

    The observed sample contains ``d`` classes with counts ``c_j``;
    resampling ``r`` rows with replacement draws new class counts from
    ``Multinomial(r, c_j / r)`` and drops classes that receive zero.
    """
    r = profile.sample_size
    if r == 0:
        raise InvalidParameterError("cannot bootstrap an empty sample")
    counts = np.repeat(
        [i for i, _ in profile], [c for _, c in profile]
    ).astype(np.float64)
    # The per-class counts sum to exactly r (sum_i i * f_i), so divide by
    # the validated sample size directly.
    draws = rng.multinomial(r, counts / r)
    return FrequencyProfile.from_multiplicities(
        draws[draws > 0].tolist()
    )


def bootstrap_estimate(
    estimator: DistinctValueEstimator,
    profile: FrequencyProfile,
    population_size: int,
    rng: np.random.Generator,
    replicates: int = 200,
    confidence: float = 0.95,
) -> BootstrapSummary:
    """Percentile-bootstrap interval and stddev for any estimator.

    Parameters
    ----------
    estimator:
        Any :class:`~repro.core.DistinctValueEstimator`.
    profile, population_size:
        The observed sample and ``n``.
    replicates:
        Bootstrap resamples (>= 20).
    confidence:
        Central coverage of the percentile interval, e.g. 0.95.
    """
    if replicates < 20:
        raise InvalidParameterError(f"need >= 20 replicates, got {replicates}")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    point = estimator.estimate(profile, population_size).value
    values = np.empty(replicates)
    for index in range(replicates):
        replicate = bootstrap_profile(profile, rng)
        values[index] = estimator.estimate(replicate, population_size).value
    tail = (1.0 - confidence) / 2.0
    q_lo, q_hi = np.quantile(values, [tail, 1.0 - tail])
    # Variability band: replicate-quantile width, centred on the point
    # estimate, clamped to the paper's sanity range [d, n].
    half_width = float(q_hi - q_lo) / 2.0
    lower = min(
        max(point - half_width, float(profile.distinct)), float(population_size)
    )
    upper = min(max(point + half_width, lower), float(population_size))
    return BootstrapSummary(
        estimate=point,
        interval=ConfidenceInterval(float(lower), float(upper)),
        std=float(values.std(ddof=1)) if replicates > 1 else 0.0,
        replicates=replicates,
        confidence=confidence,
    )


def coefficient_of_variation(summary: BootstrapSummary) -> float:
    """Replicate CV, a scale-free instability score (HYBSKEW scores high)."""
    if summary.estimate <= 0:
        raise InvalidParameterError("estimate must be positive")
    return summary.std / summary.estimate
