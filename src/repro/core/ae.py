"""AE — the Adaptive Estimator (paper §5.2–5.3).

AE keeps GEE's generalized-jackknife form ``D_hat = d + K f_1`` but picks
the singleton coefficient ``K`` from the sample itself instead of fixing
it at ``sqrt(n/r) - 1``.  The derivation (paper §5.3):

1. Unbiasedness ``E[D_hat] = D`` forces
   ``K = sum_i (1 - p_i)^r / sum_i r p_i (1 - p_i)^{r-1}``.
2. Values with sample frequency ``i >= 3`` are treated as high-frequency
   with ``p = i / r``.
3. The ``f_1 + f_2`` rare representatives stand for ``m`` low-frequency
   values that together occupy a fraction ``(f_1 + 2 f_2) / r`` of the
   column, each with equal probability ``p = (f_1 + 2 f_2) / (r m)``.
4. Since ``D = d - f_1 - f_2 + m`` must also equal ``d + K f_1``, one
   obtains a fixed-point equation in ``m``:

   ``m - f1 - f2 = f1 * (A(m)) / (B(m))``

   with, writing ``g = f1 + 2 f2``,

   * exact form:
     ``A = sum_{i>=3} (1 - i/r)^r f_i + m (1 - g/(r m))^r`` and
     ``B = sum_{i>=3} i (1 - i/r)^{r-1} f_i + g (1 - g/(r m))^{r-1}``;
   * exponential approximation (``(1 - i/r)^r ~ e^{-i}``):
     ``A = sum_{i>=3} e^{-i} f_i + m e^{-g/m}`` and
     ``B = sum_{i>=3} i e^{-i} f_i + g e^{-g/m}``.

5. The root ``m*`` gives ``D_hat = d + m* - f1 - f2``, clamped to
   ``[d, n]`` as always.

Degenerate cases, resolved exactly as the algebra dictates:

* ``f1 = 0``: the equation reduces to ``m = f2`` and ``D_hat = d`` — with
  no singletons the sample has seen everything it can reason about.
* profiles whose non-singleton evidence vanishes (``f2 = 0`` and no
  moderate frequencies, so ``B ~ 0``): the fixed point escapes to
  infinity because the equation's two sides grow at the same rate.
  This is precisely the "heavy head plus pure singleton tail" profile
  of Theorem 1's Scenario B — the provably indistinguishable case — so
  AE falls back to GEE's own device for it, the geometric mean:
  ``m = f1 * sqrt(n/r) + (rare_distinct - f1)``.  An all-singleton
  sample is the extreme instance and yields GEE's ``sqrt(n/r) * r``.

Two structural sanity bounds from the model itself are always applied
to the solved ``m``: the rare classes each occupy at least one row of
the ``(g / r) n`` rows the rare mass scales up to (``p >= 1/n`` implies
``m <= g n / r``), and ``m`` is at least the number of rare classes
actually observed.

AE inherits GEE's confidence interval ``[d, d - f1 + (n/r) f1]``
(paper §5.2: "a confidence interval can be provided for AE in exactly
the same manner as for GEE").
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np
from scipy import optimize

from repro.contracts import requires
from repro.core.base import ConfidenceInterval, DistinctValueEstimator, RawOutcome
from repro.core.bounds import gee_interval, gee_interval_batch
from repro.errors import InvalidParameterError, SolverError
from repro.frequency.batch import (
    FrequencyProfileBatch,
    exact_exp,
    segment_sums,
    segment_sums_int,
)
from repro.frequency.profile import FrequencyProfile

__all__ = ["AE", "ae_estimate", "solve_low_frequency_count"]

#: Multiple of ``n`` at which the bracket search gives up and treats the
#: fixed point as infinite (the estimate is clamped to ``n`` anyway).
_BRACKET_CAP_FACTOR = 16.0


def _high_frequency_sums_exact(
    profile: FrequencyProfile, rare_cutoff: int
) -> tuple[float, float]:
    """``(A0, B0)`` sums over ``i > rare_cutoff`` with the exact ``(1 - i/r)`` terms."""
    r = profile.sample_size
    a0 = 0.0
    b0 = 0.0
    for i, count in profile.counts.items():
        if i <= rare_cutoff or i >= r:
            continue
        base = 1.0 - i / r
        a0 += (base**r) * count
        b0 += i * (base ** (r - 1)) * count
    return a0, b0


def _high_frequency_sums_approx(
    profile: FrequencyProfile, rare_cutoff: int
) -> tuple[float, float]:
    """``(A0, B0)`` sums over ``i > rare_cutoff`` with ``(1 - i/r)^r ~ e^{-i}``."""
    a0 = 0.0
    b0 = 0.0
    for i, count in profile.counts.items():
        if i <= rare_cutoff:
            continue
        # i >= 1 (frequencies), so the clamp is exact; it bounds the
        # exp argument for the prover (R1303).
        weight = math.exp(min(0.0, -float(i)))
        a0 += weight * count
        b0 += i * weight * count
    return a0, b0


def _fixed_point_residual_approx(
    m: float, f1: int, rare_distinct: int, rare_rows: int, a0: float, b0: float
) -> float:
    """Residual of the exponential-approximation fixed-point equation at ``m``."""
    if m <= 0.0:
        # Below the domain: move the bracket right.
        return -math.inf
    rare_tail = math.exp(-rare_rows / m)
    numerator = a0 + m * rare_tail
    denominator = b0 + rare_rows * rare_tail
    if denominator <= 0.0:
        # exp underflow with an empty high-frequency tail (b0 == 0): the
        # fixed-point term blows up, so the residual is -inf.
        return -math.inf
    return (m - rare_distinct) - f1 * numerator / denominator


def _fixed_point_residual_exact(
    m: float,
    f1: int,
    rare_distinct: int,
    rare_rows: int,
    a0: float,
    b0: float,
    r: int,
) -> float:
    """Residual of the exact fixed-point equation at ``m`` (requires ``m > g/r``)."""
    if m <= 0.0 or r < 1:
        return -math.inf
    base = 1.0 - rare_rows / (r * m)
    if base <= 0.0:
        # Below the algebraic domain; treat as strongly negative so the
        # bracketing logic moves right.
        return -float("inf")
    tail_r = base**r
    tail_r1 = base ** (r - 1)
    numerator = a0 + m * tail_r
    denominator = b0 + rare_rows * tail_r1
    if denominator <= 0.0:
        # Power underflow with an empty high-frequency tail (b0 == 0):
        # the fixed-point term blows up, so the residual is -inf.
        return -math.inf
    return (m - rare_distinct) - f1 * numerator / denominator


def solve_low_frequency_count(
    profile: FrequencyProfile,
    *,
    method: str = "approx",
    rare_cutoff: int = 2,
    population_size: int | None = None,
) -> float:
    """Solve the AE fixed-point equation for ``m``, the rare-value count.

    Parameters
    ----------
    profile:
        The sample's frequency profile.
    method:
        ``"approx"`` (the paper's exponential approximation, default) or
        ``"exact"`` (the full ``(1 - i/r)`` form).
    rare_cutoff:
        Largest sample frequency treated as "rare".  The paper uses 2
        (``f_1`` and ``f_2`` represent the rare values); other values are
        exposed for the ablation study.
    population_size:
        When given, enables the structural sanity bounds (the
        ``m <= g n / r`` cap and the geometric-mean fallback for
        rootless profiles); without it, rootless profiles return
        ``inf`` and the caller applies its own clamp.

    Returns
    -------
    float
        The (bounded) root ``m*``; ``inf`` only when the equation has no
        finite root and ``population_size`` was not supplied.
    """
    if method not in ("approx", "exact"):
        raise InvalidParameterError(
            f"method must be 'approx' or 'exact', got {method!r}"
        )
    if rare_cutoff < 1:
        raise InvalidParameterError(f"rare_cutoff must be >= 1, got {rare_cutoff}")
    r = profile.sample_size
    f1 = profile.f1
    rare_distinct = sum(
        profile.f(i) for i in range(1, rare_cutoff + 1)
    )  # f1 + ... + f_cutoff
    rare_rows = sum(i * profile.f(i) for i in range(1, rare_cutoff + 1))
    if f1 == 0 or rare_rows == 0:
        # Equation reduces to m = (rare_distinct - f1 term) -> m = rare_distinct.
        return float(rare_distinct)

    if method == "approx":
        a0, b0 = _high_frequency_sums_approx(profile, rare_cutoff)
    else:
        a0, b0 = _high_frequency_sums_exact(profile, rare_cutoff)
    return _solve_from_sums(
        method=method,
        f1=f1,
        rare_distinct=rare_distinct,
        rare_rows=rare_rows,
        a0=a0,
        b0=b0,
        sample_size=r,
        population_size=population_size,
    )


def _solve_from_sums(
    *,
    method: str,
    f1: int,
    rare_distinct: int,
    rare_rows: int,
    a0: float,
    b0: float,
    sample_size: int,
    population_size: int | None,
) -> float:
    """Root-find and bound ``m`` given the precomputed tail sums.

    This is the back half of :func:`solve_low_frequency_count`; the batch
    kernel computes ``(a0, b0)`` and the rare counts for a whole batch in
    vectorized passes and then runs this per profile, so the solver —
    brackets, Brent iterations, structural bounds — is the scalar one.
    """
    r = sample_size
    if f1 == 0 or rare_rows == 0:
        # Same reduction as in solve_low_frequency_count: the equation
        # collapses to m = rare_distinct.
        return float(rare_distinct)
    if method == "approx":

        def residual(m: float) -> float:
            return _fixed_point_residual_approx(
                m, f1, rare_distinct, rare_rows, a0, b0
            )

        lo = float(rare_distinct)
    else:

        def residual(m: float) -> float:
            return _fixed_point_residual_exact(
                m, f1, rare_distinct, rare_rows, a0, b0, r
            )

        lo = max(float(rare_distinct), rare_rows / r + 1e-12)

    m = _bracket_and_solve(
        residual, lo, population_size=population_size, sample_size=r
    )
    if population_size is None:
        return m
    if math.isinf(m):
        # Rootless profile: Theorem 1's indistinguishable shape.  Use
        # GEE's geometric-mean scale-up for the singletons.
        m = f1 * math.sqrt(population_size / r) + (rare_distinct - f1)
    # Structural bounds: at least the rare classes seen, at most one
    # class per population row of the rare mass.
    cap = max(float(rare_distinct), rare_rows * population_size / r)
    return min(max(m, float(rare_distinct)), cap)


def _bracket_and_solve(
    residual: Callable[[float], float],
    lo: float,
    *,
    population_size: int | None,
    sample_size: int,
) -> float:
    """Bracket the root of ``residual`` above ``lo`` and solve with Brent.

    ``residual(lo) <= 0`` by construction (at ``m = rare_distinct`` the
    left side vanishes and the right side is non-negative); the residual
    grows roughly linearly for large ``m`` whenever a finite fixed point
    exists.
    """
    value_lo = residual(lo)
    if value_lo >= 0.0:
        # Zero residual means lo already is the root; a positive one can
        # only happen through floating-point noise at the boundary, where
        # the root is numerically indistinguishable from lo.
        return lo
    if population_size is not None:
        cap = _BRACKET_CAP_FACTOR * max(float(population_size), lo + 1.0)
    else:
        cap = _BRACKET_CAP_FACTOR * max(1e6, 1000.0 * (lo + sample_size + 1.0))
    hi = max(2.0 * lo, lo + 1.0)
    while hi <= cap:
        if residual(hi) > 0.0:
            try:
                root = optimize.brentq(residual, lo, hi, xtol=1e-9, rtol=1e-12)
            except ValueError as exc:  # pragma: no cover - defensive
                raise SolverError(
                    f"Brent solver failed on bracket [{lo}, {hi}]"
                ) from exc
            return float(root)
        lo, hi = hi, hi * 2.0
    return float("inf")


class AE(DistinctValueEstimator):
    """The Adaptive Estimator with GEE-style confidence interval.

    Parameters
    ----------
    method:
        ``"approx"`` for the paper's exponential approximation (default)
        or ``"exact"`` for the full ``(1 - i/r)`` fixed point.
    rare_cutoff:
        Largest sample frequency treated as rare (paper: 2).  Exposed
        for the ablation benchmark only.
    """

    name = "AE"

    def __init__(self, method: str = "approx", rare_cutoff: int = 2) -> None:
        if method not in ("approx", "exact"):
            raise InvalidParameterError(
                f"method must be 'approx' or 'exact', got {method!r}"
            )
        if rare_cutoff < 1:
            raise InvalidParameterError(f"rare_cutoff must be >= 1, got {rare_cutoff}")
        self.method = method
        self.rare_cutoff = int(rare_cutoff)
        if method != "approx" or rare_cutoff != 2:
            self.name = f"AE({method},c={rare_cutoff})"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        m = solve_low_frequency_count(
            profile,
            method=self.method,
            rare_cutoff=self.rare_cutoff,
            population_size=population_size,
        )
        rare_distinct = sum(profile.f(i) for i in range(1, self.rare_cutoff + 1))
        if math.isinf(m):
            return float("inf"), {"m": m, "rare_distinct": rare_distinct}
        estimate = profile.distinct + m - rare_distinct
        return estimate, {"m": m, "rare_distinct": rare_distinct}

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[RawOutcome] | None:
        # Vectorize the profile reductions — the rare counts and the
        # exponential tail sums (one shared math.exp table for the whole
        # batch) — and run the scalar Brent solver on each profile's
        # sums.  The exact method's (1 - i/r)^r powers have no bitwise
        # vectorization, so it keeps the scalar path.
        if self.method != "approx":
            return None
        frequencies = batch.frequencies
        counts = batch.counts
        rare = frequencies <= self.rare_cutoff
        rare_distinct = segment_sums_int(
            np.where(rare, counts, 0), batch.indptr
        )
        rare_rows = segment_sums_int(
            np.where(rare, frequencies * counts, 0), batch.indptr
        )
        frequencies_f = frequencies.astype(np.float64)
        counts_f = counts.astype(np.float64)
        weight = exact_exp(np.minimum(-frequencies_f, 0.0))
        tail = ~rare
        a0 = segment_sums(
            np.where(tail, weight * counts_f, 0.0), batch.indptr
        )
        b0 = segment_sums(
            np.where(tail, frequencies_f * weight * counts_f, 0.0), batch.indptr
        )
        outcomes: list[RawOutcome] = []
        for k, profile in enumerate(batch.profiles):
            m = _solve_from_sums(
                method=self.method,
                f1=int(batch.f1[k]),
                rare_distinct=int(rare_distinct[k]),
                rare_rows=int(rare_rows[k]),
                a0=float(a0[k]),
                b0=float(b0[k]),
                sample_size=int(batch.sample_size[k]),
                population_size=population_size,
            )
            rare_seen = int(rare_distinct[k])
            if math.isinf(m):
                outcomes.append(
                    (float("inf"), {"m": m, "rare_distinct": rare_seen})
                )
            else:
                outcomes.append(
                    (
                        int(batch.distinct[k]) + m - rare_seen,
                        {"m": m, "rare_distinct": rare_seen},
                    )
                )
        return outcomes

    def _interval(
        self, profile: FrequencyProfile, population_size: int
    ) -> ConfidenceInterval:
        return gee_interval(profile, population_size)

    def _interval_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[ConfidenceInterval | None]:
        return list(gee_interval_batch(batch, population_size))


def ae_estimate(profile: FrequencyProfile, population_size: int) -> float:
    """Functional form of AE: the clamped estimate as a plain float."""
    return AE().estimate(profile, population_size).value
