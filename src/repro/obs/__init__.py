"""repro.obs — zero-dependency telemetry for the reproduction stack.

The subsystem has three parts (full reference: ``docs/observability.md``):

* :mod:`repro.obs.recorder` — the per-process recorder :data:`OBS` with
  nestable wall-time spans, counters/gauges, a JSONL sink, and the
  drain/absorb protocol that merges worker-process buffers into a
  parent run deterministically.  Disabled (the default without
  ``REPRO_TELEMETRY``), its hot-path cost is one attribute check.
* :mod:`repro.obs.manifest` — the per-run manifest (seed, ``REPRO_*``
  knob snapshot, versions, platform, realized worker count) written
  alongside results.
* :mod:`repro.obs.trace` — offline readers powering ``repro trace``
  (span tree with self/total times) and ``repro stats``.

Instrumented call sites guard with ``if OBS.enabled:`` (counters in hot
loops) or call ``OBS.span(...)`` (which no-ops when disabled); telemetry
never reads a random generator, so recorded runs are bit-identical to
unrecorded ones.
"""

from __future__ import annotations

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    knob_snapshot,
    read_manifest,
    write_manifest,
)
from repro.obs.recorder import (
    ENV_DIR,
    ENV_FLAG,
    OBS,
    Telemetry,
    env_enabled,
    telemetry_dir,
)
from repro.obs.trace import (
    RunData,
    SpanNode,
    attributed_fraction,
    build_tree,
    load_run,
    render_stats,
    render_trace,
)

__all__ = [
    "ENV_DIR",
    "ENV_FLAG",
    "MANIFEST_SCHEMA",
    "OBS",
    "RunData",
    "SpanNode",
    "Telemetry",
    "attributed_fraction",
    "build_manifest",
    "build_tree",
    "env_enabled",
    "knob_snapshot",
    "load_run",
    "read_manifest",
    "render_stats",
    "render_trace",
    "telemetry_dir",
    "write_manifest",
]
