"""repro.obs — zero-dependency telemetry for the reproduction stack.

The subsystem has three parts (full reference: ``docs/observability.md``):

* :mod:`repro.obs.recorder` — the per-process recorder :data:`OBS` with
  nestable wall-time spans, counters/gauges, a JSONL sink, and the
  drain/absorb protocol that merges worker-process buffers into a
  parent run deterministically.  Disabled (the default without
  ``REPRO_TELEMETRY``), its hot-path cost is one attribute check.
* :mod:`repro.obs.manifest` — the per-run manifest (seed, ``REPRO_*``
  knob snapshot, versions, platform, realized worker count) written
  alongside results.
* :mod:`repro.obs.histogram` — fixed log-bucket streaming histograms:
  exact integer bucket counts, associative merge, deterministic
  p50/p90/p95/p99 regardless of worker count or merge order.
* :mod:`repro.obs.trace` — offline readers powering ``repro trace``
  (span tree with self/total times) and ``repro stats`` (counters,
  gauges, histogram quantiles, manifest).
* :mod:`repro.obs.export` — Chrome trace-event JSON
  (``repro trace --chrome``) and folded flamegraph stacks
  (``repro trace --flame``) from the same run files.
* :mod:`repro.obs.perfdiff` — ``repro perfdiff``: diff two perf
  reports or telemetry runs, plus the kernel-speedup CI gate.

Instrumented call sites guard with ``if OBS.enabled:`` (counters in hot
loops) or call ``OBS.span(...)`` (which no-ops when disabled); telemetry
never reads a random generator, so recorded runs are bit-identical to
unrecorded ones — including with ``REPRO_TELEMETRY_MEM=1`` memory
tracking, which only consults :mod:`tracemalloc`.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    folded_stacks,
    write_chrome_trace,
    write_folded,
)
from repro.obs.histogram import (
    BUCKETS_PER_DECADE,
    SUMMARY_QUANTILES,
    LogHistogram,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    knob_snapshot,
    read_manifest,
    write_manifest,
)
from repro.obs.perfdiff import (
    DEFAULT_THRESHOLD,
    GateResult,
    MetricDelta,
    PerfDiff,
    diff_metrics,
    flatten_perf_report,
    flatten_run_metrics,
    gate_report,
    load_metrics,
    render_diff,
)
from repro.obs.recorder import (
    ENV_DIR,
    ENV_FLAG,
    ENV_MEM,
    OBS,
    Telemetry,
    env_enabled,
    env_mem_enabled,
    telemetry_dir,
)
from repro.obs.trace import (
    RunData,
    SpanNode,
    attributed_fraction,
    build_tree,
    load_run,
    render_stats,
    render_trace,
)

__all__ = [
    "BUCKETS_PER_DECADE",
    "DEFAULT_THRESHOLD",
    "ENV_DIR",
    "ENV_FLAG",
    "ENV_MEM",
    "GateResult",
    "LogHistogram",
    "MANIFEST_SCHEMA",
    "MetricDelta",
    "OBS",
    "PerfDiff",
    "RunData",
    "SUMMARY_QUANTILES",
    "SpanNode",
    "Telemetry",
    "attributed_fraction",
    "build_manifest",
    "build_tree",
    "chrome_trace",
    "chrome_trace_events",
    "diff_metrics",
    "env_enabled",
    "env_mem_enabled",
    "flatten_perf_report",
    "flatten_run_metrics",
    "folded_stacks",
    "gate_report",
    "knob_snapshot",
    "load_metrics",
    "load_run",
    "read_manifest",
    "render_diff",
    "render_stats",
    "render_trace",
    "telemetry_dir",
    "write_chrome_trace",
    "write_folded",
    "write_manifest",
]
