"""Exporting recorded runs: Chrome trace-event JSON and folded stacks.

``repro trace`` renders a run as text; this module renders the same
JSONL file for external profiling UIs:

* :func:`chrome_trace` — the Chrome trace-event format (the JSON object
  form, ``{"traceEvents": [...]}``), loadable in Perfetto and
  ``about:tracing``.  Every span becomes one complete (``"ph": "X"``)
  event with microsecond ``ts``/``dur``; metadata events name the
  process and one thread lane per *track*.  Track 0 is the parent
  process; absorbed worker payloads carry the track id their
  ``Telemetry.absorb(..., track=N)`` call assigned, because worker
  clocks restart at ``begin_capture`` and their span timestamps only
  order correctly within their own lane.
* :func:`folded_stacks` — one ``root;child;leaf <self-µs>`` line per
  distinct span path, the input format of flamegraph builders
  (``flamegraph.pl``, speedscope, inferno).  Weights are the span
  *self* times in integer microseconds, aggregated over all occurrences
  of a path.

Both renderers are pure functions of :class:`~repro.obs.trace.RunData`
(byte-stable output for a given run file), and both file writers land
through :func:`~repro.resilience.atomic.atomic_write` like every other
artifact in this repo — a killed export never leaves a torn file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.trace import RunData, SpanNode, build_tree

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "folded_stacks",
    "write_chrome_trace",
    "write_folded",
]

#: ``pid`` used for every event: one recorded run is one logical process
#: tree, whatever OS pids produced it.
_TRACE_PID = 0


def _microseconds(seconds: float) -> float:
    """Seconds -> trace-event microseconds, rounded to a stable 0.1 µs."""
    return round(seconds * 1e6, 1)


def _track_name(track: int) -> str:
    return "main" if track == 0 else f"worker task {track}"


def chrome_trace_events(run: RunData) -> list[dict[str, Any]]:
    """The trace-event list for a run, metadata first, spans in file order.

    Output order is deterministic: process/thread metadata (tracks
    ascending), then one ``X`` event per span record in the order the
    recorder serialized them.
    """
    tracks = sorted({record.get("track", 0) for record in run.spans} | {0})
    command = (run.manifest or {}).get("command")
    process_name = f"repro {command}" if command else "repro"
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _TRACE_PID,
                "tid": track,
                "args": {"name": _track_name(track)},
            }
        )
    for record in run.spans:
        event: dict[str, Any] = {
            "ph": "X",
            "name": record["name"],
            "cat": "span",
            "pid": _TRACE_PID,
            "tid": record.get("track", 0),
            "ts": _microseconds(record.get("t", 0.0)),
            "dur": _microseconds(record.get("dur", 0.0)),
        }
        args = dict(record.get("attrs", {}))
        if record.get("error"):
            args["error"] = record["error"]
        if args:
            event["args"] = args
        events.append(event)
    return events


def chrome_trace(run: RunData) -> str:
    """The run as a Chrome trace-event JSON document (object form)."""
    document = {
        "traceEvents": chrome_trace_events(run),
        "displayTimeUnit": "ms",
    }
    return json.dumps(document, sort_keys=True, indent=1) + "\n"


def write_chrome_trace(path: str | Path, run: RunData) -> Path:
    """Write :func:`chrome_trace` output atomically; returns the path."""
    from repro.resilience.atomic import atomic_write

    return atomic_write(path, chrome_trace(run))


def _fold_node(
    node: SpanNode, prefix: str, weights: dict[str, int]
) -> None:
    path = f"{prefix};{node.name}" if prefix else node.name
    self_us = int(round(node.self_time * 1e6))
    if self_us > 0:
        weights[path] = weights.get(path, 0) + self_us
    for child in node.children:
        _fold_node(child, path, weights)


def folded_stacks(run: RunData) -> str:
    """The run as folded-stack lines (``a;b;c <self-µs>``), path-sorted.

    Paths with zero integer-microsecond self time are dropped — a
    flamegraph cell needs positive weight — so a run of only
    instantaneous spans renders as an empty string.
    """
    weights: dict[str, int] = {}
    for root in build_tree(run.spans):
        _fold_node(root, "", weights)
    lines = [f"{path} {weights[path]}" for path in sorted(weights)]
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded(path: str | Path, run: RunData) -> Path:
    """Write :func:`folded_stacks` output atomically; returns the path."""
    from repro.resilience.atomic import atomic_write

    return atomic_write(path, folded_stacks(run))
