"""Diffing performance reports: ``repro perfdiff A B`` and the CI gate.

Two complementary modes over ``BENCH_perf.json``-style reports and
telemetry JSONL runs:

* **diff** — flatten both inputs to ``key -> value`` metric tables
  (:func:`load_metrics`), compare shared keys, and flag any metric that
  moved past a configurable threshold in its *bad* direction
  (:func:`diff_metrics`).  Time- and count-like metrics regress upward;
  ``kernels.<name>.speedup`` ratios regress downward.  The CLI exits
  nonzero when regressions remain, so two artifact files from different
  CI runs can gate a merge directly.
* **gate** — the kernel-speedup floor check that
  ``scripts/check_perf_baseline.py`` historically implemented
  (:func:`gate_report`): every kernel tracked by the committed
  ``BENCH_perf.baseline.json`` must be measured and must keep at least
  ``baseline * (1 - tolerance)`` of its speedup.  The script now
  delegates here; CI calls ``repro perfdiff --gate``.

Pure functions end to end — loading, flattening, diffing, rendering all
return values; printing and exit codes belong to the CLI layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import InvalidParameterError
from repro.obs.trace import RunData, load_run

__all__ = [
    "DEFAULT_THRESHOLD",
    "GateResult",
    "MetricDelta",
    "PerfDiff",
    "diff_metrics",
    "flatten_perf_report",
    "flatten_run_metrics",
    "gate_report",
    "load_metrics",
    "render_diff",
]

#: Default fractional move (in the bad direction) that counts as a
#: regression — matching the kernel gate's historical 25% tolerance.
DEFAULT_THRESHOLD = 0.25


def _higher_is_better(key: str) -> bool:
    """Direction of goodness for a metric key.

    Speedup ratios are the only tracked metrics where bigger is better;
    everything else (seconds, counts, bytes, quantiles) regresses by
    growing.
    """
    return key.endswith(".speedup")


@dataclass(frozen=True)
class MetricDelta:
    """One shared metric key compared across two reports."""

    key: str
    before: float
    after: float

    @property
    def change(self) -> float:
        """Fractional change ``(after - before) / before`` (0 when before is 0)."""
        if self.before == 0:
            return 0.0
        return (self.after - self.before) / self.before

    @property
    def severity(self) -> float:
        """Fractional move in the metric's *bad* direction (signed)."""
        return -self.change if _higher_is_better(self.key) else self.change

    def regressed(self, threshold: float) -> bool:
        """Whether the bad-direction move exceeds ``threshold``."""
        return self.severity > threshold


@dataclass(frozen=True)
class PerfDiff:
    """The outcome of diffing two metric tables."""

    deltas: list[MetricDelta]
    missing: list[str]
    added: list[str]
    threshold: float

    @property
    def regressions(self) -> list[MetricDelta]:
        """The deltas past the threshold, worst first."""
        return [delta for delta in self.deltas if delta.regressed(self.threshold)]


def flatten_perf_report(data: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a ``BENCH_perf.json`` document into ``key -> value``.

    Handles both exhibit layouts: plain seconds (schema 1) and the
    ``{"seconds", "p50", "p99"}`` objects that quantile-aware runs
    write (null quantiles — telemetry was off — are skipped).
    """
    metrics: dict[str, float] = {}
    for exhibit, value in (data.get("exhibits") or {}).items():
        if isinstance(value, Mapping):
            for column in ("seconds", "p50", "p99"):
                number = value.get(column)
                if isinstance(number, (int, float)):
                    metrics[f"exhibits.{exhibit}.{column}"] = float(number)
        elif isinstance(value, (int, float)):
            metrics[f"exhibits.{exhibit}.seconds"] = float(value)
    for node, seconds in (data.get("tests") or {}).items():
        if isinstance(seconds, (int, float)):
            metrics[f"tests.{node}.seconds"] = float(seconds)
    total = data.get("total_seconds")
    if isinstance(total, (int, float)):
        metrics["total.seconds"] = float(total)
    for name, entry in (data.get("kernels") or {}).items():
        speedup = entry.get("speedup") if isinstance(entry, Mapping) else None
        if isinstance(speedup, (int, float)):
            metrics[f"kernels.{name}.speedup"] = float(speedup)
    telemetry = data.get("telemetry") or {}
    for name, entry in (telemetry.get("spans") or {}).items():
        seconds = entry.get("seconds") if isinstance(entry, Mapping) else None
        if isinstance(seconds, (int, float)):
            metrics[f"telemetry.spans.{name}.seconds"] = float(seconds)
    return metrics


def flatten_run_metrics(run: RunData) -> dict[str, float]:
    """Flatten a telemetry run into ``key -> value`` metrics.

    Spans aggregate to per-name total seconds and counts, counters pass
    through, and populated histograms contribute their p50/p99 — enough
    to diff two recorded runs of the same command.
    """
    metrics: dict[str, float] = {}
    for record in run.spans:
        name = record["name"]
        metrics[f"spans.{name}.count"] = metrics.get(f"spans.{name}.count", 0.0) + 1
        metrics[f"spans.{name}.seconds"] = round(
            metrics.get(f"spans.{name}.seconds", 0.0) + record.get("dur", 0.0), 6
        )
    for name, value in run.counters.items():
        metrics[f"counters.{name}"] = float(value)
    for name, histogram in run.histograms.items():
        if histogram.count:
            metrics[f"quantiles.{name}.p50"] = histogram.quantile(0.50)
            metrics[f"quantiles.{name}.p99"] = histogram.quantile(0.99)
    return metrics


def load_metrics(path: str | Path) -> dict[str, float]:
    """Load a metrics table from a perf report or telemetry JSONL file.

    A file whose whole text parses as one JSON object is treated as a
    ``BENCH_perf.json``-style report; anything else must parse as a
    telemetry run (JSON Lines with ``ev`` records).
    """
    source = Path(path)
    if not source.exists():
        raise InvalidParameterError(f"no perf report at {source}")
    text = source.read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, Mapping):
        if "ev" in document:
            # A single-record JSONL file still parses as one object.
            return flatten_run_metrics(load_run(source))
        return flatten_perf_report(document)
    return flatten_run_metrics(load_run(source))


def diff_metrics(
    before: Mapping[str, float],
    after: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    min_value: float = 0.0,
) -> PerfDiff:
    """Compare two metric tables; deltas come back worst-regression first.

    ``min_value`` suppresses noise: keys where both sides sit below it
    (smoke-scale micro-timings jitter by multiples) are dropped before
    comparison.
    """
    if threshold < 0:
        raise InvalidParameterError(f"threshold must be >= 0, got {threshold:g}")
    shared = [
        key
        for key in before
        if key in after
        and not (abs(before[key]) < min_value and abs(after[key]) < min_value)
    ]
    deltas = sorted(
        (MetricDelta(key, before[key], after[key]) for key in shared),
        key=lambda delta: (-delta.severity, delta.key),
    )
    return PerfDiff(
        deltas=deltas,
        missing=sorted(key for key in before if key not in after),
        added=sorted(key for key in after if key not in before),
        threshold=threshold,
    )


def _format_value(value: float) -> str:
    return f"{value:.4g}"


def render_diff(diff: PerfDiff, limit: int = 20) -> str:
    """Render a diff as an aligned table: regressions, then the biggest moves.

    Every regression is always listed; below the regression block the
    ``limit`` largest remaining moves (either direction) follow, so the
    output stays readable on thousand-key reports.  Missing/added keys
    are summarized at the end.
    """
    regressed = diff.regressions
    rest = [delta for delta in diff.deltas if not delta.regressed(diff.threshold)]
    rest = sorted(rest, key=lambda delta: (-abs(delta.severity), delta.key))[:limit]
    rows: list[tuple[str, str, str, str, str]] = []
    for delta in regressed + rest:
        flag = ""
        if delta.regressed(diff.threshold):
            flag = "REGRESSED"
        elif delta.severity < -diff.threshold:
            flag = "improved"
        rows.append(
            (
                delta.key,
                _format_value(delta.before),
                _format_value(delta.after),
                f"{delta.change:+.1%}",
                flag,
            )
        )
    header = ("metric", "before", "after", "change", "")
    widths = [max(len(row[i]) for row in rows + [header]) for i in range(5)]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in [header] + rows
    ]
    hidden = len(diff.deltas) - len(regressed) - len(rest)
    if hidden > 0:
        lines.append(f"  ... {hidden} more metrics within threshold")
    if diff.missing:
        lines.append(f"missing after: {len(diff.missing)} keys")
    if diff.added:
        lines.append(f"new after: {len(diff.added)} keys")
    lines.append(
        f"{len(regressed)} regression(s) past {diff.threshold:.0%} "
        f"over {len(diff.deltas)} shared metrics"
    )
    return "\n".join(lines)


@dataclass(frozen=True)
class GateResult:
    """Outcome of the kernel-speedup floor check."""

    table: str
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every tracked kernel met its floor."""
        return not self.failures


def gate_report(
    baseline: Mapping[str, Any],
    report: Mapping[str, Any],
    tolerance: float | None = None,
) -> GateResult:
    """The perf-smoke gate: measured kernel speedups vs the baseline.

    Every kernel in ``baseline["kernels"]`` must appear in the report
    (a missing measurement is itself a failure) with a speedup of at
    least ``baseline * (1 - tolerance)``; ``tolerance`` defaults to the
    baseline file's own ``tolerance`` field (0.25 if absent).
    """
    if "kernels" not in baseline:
        raise InvalidParameterError(
            "baseline has no 'kernels' section; is this BENCH_perf.baseline.json?"
        )
    resolved = (
        tolerance if tolerance is not None else float(baseline.get("tolerance", 0.25))
    )
    measured = report.get("kernels", {})
    failures: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []
    for name, entry in sorted(baseline["kernels"].items()):
        floor = entry["speedup"] * (1.0 - resolved)
        current = measured.get(name, {}).get("speedup")
        if current is None:
            rows.append(
                (name, f"{entry['speedup']:.2f}x", f"{floor:.2f}x", "—", "MISSING")
            )
            failures.append(f"{name}: not measured (missing from the report)")
            continue
        ok = current >= floor
        rows.append(
            (
                name,
                f"{entry['speedup']:.2f}x",
                f"{floor:.2f}x",
                f"{current:.2f}x",
                "ok" if ok else "REGRESSED",
            )
        )
        if not ok:
            failures.append(
                f"{name}: speedup {current:.2f}x is below the floor {floor:.2f}x "
                f"(baseline {entry['speedup']:.2f}x - {resolved:.0%})"
            )
    header = ("kernel", "baseline", "floor", "now", "")
    widths = [max(len(row[i]) for row in rows + [header]) for i in range(5)]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in [header] + rows
    ]
    if not failures:
        lines.append(
            f"all {len(rows)} tracked kernel speedups within {resolved:.0%} of baseline"
        )
    return GateResult(table="\n".join(lines), failures=failures)
