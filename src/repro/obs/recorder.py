"""The telemetry recorder: nestable spans, counters, gauges, JSONL runs.

Design constraints (see ``docs/observability.md``):

* **zero dependencies** — stdlib only, importable from every layer
  (sampling, db, sketches) without dragging in the experiment stack;
* **off by default, one attribute check when off** — the module-level
  singleton :data:`OBS` starts disabled unless ``REPRO_TELEMETRY`` is
  set; every recording entry point returns after testing
  ``self.enabled`` once, and hot loops are expected to guard with
  ``if OBS.enabled:`` themselves so the disabled cost is exactly one
  attribute load;
* **never touches randomness** — the recorder reads clocks, never a
  generator, so estimates and RNG stream positions are bit-identical
  with telemetry on or off (pinned by ``tests/obs/test_identity.py``);
* **process-safe by merging, not by sharing** — worker processes record
  into their own buffer (:meth:`Telemetry.begin_capture`), hand the
  buffer back as a picklable payload (:meth:`Telemetry.drain`), and the
  parent splices it into its own run (:meth:`Telemetry.absorb`) in
  submission order, so the merged run is deterministic for a fixed
  worker count and span *structure* is identical for every count.

A *span* is a named interval of wall time with a parent (nesting follows
the with-statement stack), recorded at close.  A *counter* accumulates
(``+=``); a *gauge* overwrites.  A *histogram* tallies a distribution:
every closed span feeds its duration into a per-name
:class:`~repro.obs.histogram.LogHistogram`, and :meth:`Telemetry.observe`
records arbitrary values (latencies, sizes) the same way; histograms
merge across workers by exact bucket-count addition, so quantiles are
invariant under worker count and merge order.  Timestamps are offsets
from the recorder's start on the monotonic :func:`time.perf_counter`
clock — durations are exact, absolute wall-clock time belongs in the
manifest.

Memory tracking is a second opt-in: with ``REPRO_TELEMETRY_MEM=1`` (and
telemetry on) the recorder snapshots :mod:`tracemalloc` at span
boundaries, annotating each span with current/peak/delta bytes and
keeping process-level ``mem.*`` gauges.  Like the time path it never
touches a generator, so the bit-identity guarantee extends to it.

The recorder is deliberately not thread-safe: the project parallelizes
with processes, and a per-process buffer needs no locks.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path
from types import TracebackType
from typing import Any, Iterator, Mapping

from repro.obs.histogram import LogHistogram

__all__ = [
    "ENV_FLAG",
    "ENV_DIR",
    "ENV_MEM",
    "OBS",
    "Telemetry",
    "env_enabled",
    "env_mem_enabled",
    "telemetry_dir",
]

#: Environment switch; any value other than empty/0/false/off enables
#: recording for the process (workers inherit it through the pool).
ENV_FLAG = "REPRO_TELEMETRY"

#: Where CLI runs write their JSONL + manifest (default ``telemetry/``).
ENV_DIR = "REPRO_TELEMETRY_DIR"

#: Second opt-in: tracemalloc snapshots at span boundaries.  Only
#: honored while telemetry itself is enabled.
ENV_MEM = "REPRO_TELEMETRY_MEM"

_DISABLED_VALUES = frozenset({"", "0", "false", "False", "off", "no"})


def env_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for recording in this process."""
    return os.environ.get(ENV_FLAG, "") not in _DISABLED_VALUES


def env_mem_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY_MEM`` asks for memory tracking."""
    return os.environ.get(ENV_MEM, "") not in _DISABLED_VALUES


def telemetry_dir() -> Path:
    """Output directory for CLI-written runs (``REPRO_TELEMETRY_DIR``)."""
    return Path(os.environ.get(ENV_DIR, "telemetry"))


class _NoopSpan:
    """The shared do-nothing span handed out while recording is off."""

    __slots__ = ()

    #: Disabled spans have no identity for children to attach to.
    id: None = None

    #: Shared empty mapping so ``span.attrs`` is always readable; callers
    #: must only annotate attrs after checking ``span.id is not None``.
    attrs: dict[str, Any] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span; records itself into the owning recorder at close."""

    __slots__ = ("_recorder", "name", "attrs", "id", "parent", "_start", "_mem_start")

    def __init__(
        self, recorder: "Telemetry", name: str, attrs: dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.id: int | None = None
        self.parent: int | None = None
        self._start = 0.0
        self._mem_start = 0

    def __enter__(self) -> "_Span":
        recorder = self._recorder
        self.id = recorder._next_id
        recorder._next_id += 1
        self.parent = recorder._stack[-1] if recorder._stack else None
        recorder._stack.append(self.id)
        if recorder.track_memory:
            self._mem_start = tracemalloc.get_traced_memory()[0]
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        ended = time.perf_counter()
        recorder = self._recorder
        if recorder._stack and recorder._stack[-1] == self.id:
            recorder._stack.pop()
        duration = round(ended - self._start, 6)
        record: dict[str, Any] = {
            "ev": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "t": round(self._start - recorder._t0, 6),
            "dur": duration,
        }
        if recorder.track_memory:
            current, peak = tracemalloc.get_traced_memory()
            self.attrs["mem_current_bytes"] = current
            self.attrs["mem_peak_bytes"] = peak
            self.attrs["mem_delta_bytes"] = current - self._mem_start
            recorder._gauges["mem.current_bytes"] = current
            recorder._gauges["mem.peak_bytes"] = max(
                recorder._gauges.get("mem.peak_bytes", 0), peak
            )
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        recorder._events.append(record)
        recorder._observe(self.name, duration)
        return None


class Telemetry:
    """A per-process telemetry buffer; use the singleton :data:`OBS`."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.track_memory = False
        self._events: list[dict[str, Any]] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LogHistogram] = {}
        self._stack: list[int] = []
        self._next_id = 1
        self._t0 = time.perf_counter()
        if enabled:
            self._refresh_memory_tracking()

    def _refresh_memory_tracking(self) -> None:
        """Re-read ``REPRO_TELEMETRY_MEM`` and start tracemalloc if asked.

        Called whenever recording turns on (including worker-side
        :meth:`begin_capture`, so forked pool workers honor the knob
        they inherited).  tracemalloc keeps running once started — other
        recorders or tools may be reading it — recording merely stops
        consulting it when the flag is off.
        """
        self.track_memory = self.enabled and env_mem_enabled()
        if self.track_memory and not tracemalloc.is_tracing():
            tracemalloc.start()

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        """Turn recording on (idempotent; keeps any buffered data)."""
        self.enabled = True
        self._refresh_memory_tracking()

    def disable(self) -> None:
        """Turn recording off without dropping buffered data."""
        self.enabled = False
        self.track_memory = False

    def reset(self) -> None:
        """Drop all buffered data and restart ids and the clock."""
        self._events.clear()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._stack.clear()
        self._next_id = 1
        self._t0 = time.perf_counter()

    def begin_capture(self) -> None:
        """Start a fresh worker-side capture.

        Pool workers may be forked mid-run and re-used across tasks, so
        each traced task first clears whatever the process inherited or
        left behind; the parent then receives exactly one task's worth
        of telemetry from :meth:`drain`.
        """
        self.reset()
        self.enabled = True
        self._refresh_memory_tracking()

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _Span | _NoopSpan:
        """A context manager timing a named, nestable interval."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate ``value`` onto counter ``name`` (no-op when off)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Overwrite gauge ``name`` with ``value`` (no-op when off)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Tally ``value`` into histogram ``name`` (no-op when off).

        The explicit-histogram API: latencies, batch sizes, per-request
        costs.  Span durations flow into the same per-name histogram
        table automatically at span close.
        """
        if not self.enabled:
            return
        self._observe(name, value)

    def _observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LogHistogram()
        histogram.observe(value)

    # -- introspection -------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when nothing has been recorded since the last reset."""
        return not (
            self._events or self._counters or self._gauges or self._histograms
        )

    def counters(self) -> dict[str, float]:
        """Snapshot of the counter table (name -> accumulated value)."""
        return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        """Snapshot of the gauge table (name -> last value)."""
        return dict(self._gauges)

    def span_records(self) -> list[dict[str, Any]]:
        """Snapshot of the closed-span records, in close order."""
        return [dict(record) for record in self._events]

    def histograms(self) -> dict[str, LogHistogram]:
        """Snapshot of the histogram table (name -> independent copy)."""
        return {name: hist.copy() for name, hist in self._histograms.items()}

    def histogram(self, name: str) -> LogHistogram:
        """A copy of one named histogram (empty if never observed)."""
        histogram = self._histograms.get(name)
        return histogram.copy() if histogram is not None else LogHistogram()

    # -- cross-process merge -------------------------------------------
    def drain(self) -> dict[str, Any]:
        """Detach everything recorded so far as a picklable payload.

        The buffer is reset afterwards, so a re-used pool worker starts
        its next task clean even without :meth:`begin_capture`.
        """
        payload = {
            "events": self._events,
            "counters": self._counters,
            "gauges": self._gauges,
            "histograms": {
                name: hist.to_payload() for name, hist in self._histograms.items()
            },
        }
        self._events = []
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._stack = []
        self._next_id = 1
        return payload

    def absorb(
        self,
        payload: Mapping[str, Any],
        parent_id: int | None = None,
        track: int = 0,
    ) -> None:
        """Splice a drained worker payload into this recorder.

        Span ids are remapped past this recorder's id watermark so they
        stay unique; the payload's root spans (parent ``None``) are
        re-parented under ``parent_id``.  Counters accumulate, gauges
        overwrite, histograms merge by exact bucket addition (so the
        merged distribution is invariant under worker count and merge
        order).  A nonzero ``track`` tags every spliced span record —
        worker payloads carry their own clock origin, so exporters place
        each track on its own timeline lane (see
        :mod:`repro.obs.export`).  Callers absorb payloads in submission
        order, which makes the merged event sequence deterministic for a
        fixed worker count (see :mod:`repro.experiments.executor`).
        """
        if not self.enabled:
            return
        offset = self._next_id
        highest = 0
        for record in payload["events"]:
            spliced = dict(record)
            highest = max(highest, spliced["id"])
            spliced["id"] = spliced["id"] + offset
            if spliced.get("parent") is None:
                spliced["parent"] = parent_id
            else:
                spliced["parent"] = spliced["parent"] + offset
            if track:
                spliced["track"] = track
            self._events.append(spliced)
        self._next_id = offset + highest + 1
        for name, value in payload["counters"].items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in payload["gauges"].items():
            self._gauges[name] = value
        for name, state in payload.get("histograms", {}).items():
            incoming = LogHistogram.from_payload(state)
            existing = self._histograms.get(name)
            if existing is None:
                self._histograms[name] = incoming
            else:
                existing.merge(incoming)

    # -- serialization -------------------------------------------------
    def records(self, manifest: Mapping[str, Any] | None = None) -> Iterator[dict[str, Any]]:
        """All JSONL records for the run, manifest first, tables sorted."""
        if manifest is not None:
            yield {"ev": "manifest", "data": dict(manifest)}
        yield from self._events
        for name in sorted(self._counters):
            yield {"ev": "counter", "name": name, "value": self._counters[name]}
        for name in sorted(self._gauges):
            yield {"ev": "gauge", "name": name, "value": self._gauges[name]}
        for name in sorted(self._histograms):
            yield self._histograms[name].to_record(name)

    def write_run(
        self, path: str | Path, manifest: Mapping[str, Any] | None = None
    ) -> Path:
        """Write the buffered run as JSON Lines, atomically.

        The whole run goes through write-temp-then-rename, so a killed
        flush leaves the previous run file (or nothing), never a torn
        JSONL.  Imported lazily: this module must stay importable from
        every layer before the rest of the package initializes.
        """
        from repro.resilience.atomic import atomic_write

        lines = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self.records(manifest=manifest)
        )
        return atomic_write(path, lines)


#: The process-wide recorder.  Enabled at import when ``REPRO_TELEMETRY``
#: is set, so library code can guard hot paths with ``if OBS.enabled:``
#: and CLI/benchmark entry points flush it at exit.
OBS = Telemetry(enabled=env_enabled())
