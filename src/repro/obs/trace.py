"""Reading telemetry runs back: span trees, self/total times, stats.

``repro trace run.jsonl`` renders the span tree of a recorded run with
each span's **total** time (its own duration) and **self** time (total
minus the time covered by its children), so the question "where did the
sweep's wall time go?" has a direct answer.  ``repro stats run.jsonl``
renders the counter/gauge tables (sorted by value, largest first), the
per-name histogram quantiles (p50/p90/p95/p99), and the embedded
manifest.  For timeline and flamegraph views of the same file, see
:mod:`repro.obs.export`.

Rendering works purely from the JSONL records — no recorder state — so
runs can be inspected from another process, another machine, or CI
artifacts.  Sibling order follows record order in the file, which the
recorder makes deterministic (close order within a process, submission
order across merged workers); child durations from parallel workers may
legitimately sum past their parent's wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import InvalidParameterError
from repro.obs.histogram import SUMMARY_QUANTILES, LogHistogram

__all__ = [
    "RunData",
    "SpanNode",
    "attributed_fraction",
    "build_tree",
    "load_run",
    "render_stats",
    "render_trace",
]


@dataclass
class SpanNode:
    """One span of a loaded run, linked into its tree."""

    id: int
    name: str
    parent: int | None
    start: float
    duration: float
    attrs: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero).

        Children executed in parallel worker processes can overlap, so
        their durations may sum past the parent's; the clamp keeps the
        column meaningful in that case.
        """
        return max(0.0, self.duration - sum(c.duration for c in self.children))


@dataclass
class RunData:
    """Everything one telemetry JSONL file contains."""

    manifest: dict[str, Any] | None
    spans: list[dict[str, Any]]
    counters: dict[str, float]
    gauges: dict[str, float]
    histograms: dict[str, LogHistogram] = field(default_factory=dict)


def load_run(path: str | Path) -> RunData:
    """Parse a telemetry JSONL file into its typed parts."""
    manifest: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = []
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, LogHistogram] = {}
    source = Path(path)
    if not source.exists():
        raise InvalidParameterError(f"no telemetry run at {source}")
    for line_number, line in enumerate(
        source.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise InvalidParameterError(
                f"{source}:{line_number}: not a JSON record ({error.msg})"
            ) from None
        kind = record.get("ev")
        if kind == "manifest":
            manifest = record.get("data", {})
        elif kind == "span":
            spans.append(record)
        elif kind == "counter":
            counters[record["name"]] = record["value"]
        elif kind == "gauge":
            gauges[record["name"]] = record["value"]
        elif kind == "hist":
            try:
                histograms[record["name"]] = LogHistogram.from_record(record)
            except ValueError as error:
                raise InvalidParameterError(
                    f"{source}:{line_number}: {error}"
                ) from None
        else:
            raise InvalidParameterError(
                f"{source}:{line_number}: unknown record kind {kind!r}"
            )
    return RunData(
        manifest=manifest,
        spans=spans,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
    )


def build_tree(spans: list[dict[str, Any]]) -> list[SpanNode]:
    """Link span records into root nodes, preserving record order.

    Spans are recorded at close, so children precede their parents in
    the file; linking is therefore a two-pass id join, and sibling order
    is the (deterministic) record order.
    """
    nodes: dict[int, SpanNode] = {}
    ordered: list[SpanNode] = []
    for record in spans:
        node = SpanNode(
            id=record["id"],
            name=record["name"],
            parent=record.get("parent"),
            start=record.get("t", 0.0),
            duration=record.get("dur", 0.0),
            attrs=dict(record.get("attrs", {})),
            error=record.get("error"),
        )
        nodes[node.id] = node
        ordered.append(node)
    roots: list[SpanNode] = []
    for node in ordered:
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def attributed_fraction(node: SpanNode) -> float:
    """Fraction of a span's wall time covered by its child spans.

    The acceptance bar for instrumentation coverage: a well-instrumented
    ``sweep.run`` attributes >= 90% of its time to named children.
    Capped at 1 because parallel children may overlap.
    """
    if node.duration <= 0.0:
        return 1.0 if not node.children else 0.0
    covered = sum(child.duration for child in node.children)
    return min(1.0, covered / node.duration)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1000.0:7.2f}ms"


def _attr_suffix(node: SpanNode) -> str:
    parts = [f"{key}={value}" for key, value in node.attrs.items()]
    if node.error:
        parts.append(f"error={node.error}")
    return f"  [{', '.join(parts)}]" if parts else ""


def _render_node(
    node: SpanNode,
    root_total: float,
    depth: int,
    min_fraction: float,
    lines: list[str],
) -> None:
    share = node.duration / root_total if root_total > 0 else 0.0
    if depth and share < min_fraction:
        return
    lines.append(
        f"{_format_duration(node.duration)}  {_format_duration(node.self_time)}"
        f"  {share:6.1%}  {'  ' * depth}{node.name}{_attr_suffix(node)}"
    )
    for child in node.children:
        _render_node(child, root_total, depth + 1, min_fraction, lines)


def render_trace(run: RunData, min_fraction: float = 0.0) -> str:
    """Render the span tree with total/self times and share-of-root.

    ``min_fraction`` hides non-root spans below that share of their
    root's time — handy for very wide sweeps.
    """
    roots = build_tree(run.spans)
    if not roots:
        return "(no spans recorded)"
    lines = [f"{'total':>9}  {'self':>9}  {'%root':>6}  span"]
    for root in roots:
        _render_node(root, root.duration, 0, min_fraction, lines)
        lines.append(
            f"{'':>9}  {'':>9}  {'':>6}  "
            f"({attributed_fraction(root):.1%} of {root.name} attributed "
            f"to child spans)"
        )
    return "\n".join(lines)


def _render_table(title: str, values: dict[str, float]) -> list[str]:
    """One aligned name/value section, largest values first.

    Big runs accumulate dozens of counters; value-descending order puts
    the hot ones on top (ties break by name for stable output).
    """
    lines = [title]
    width = max(len(name) for name in values)
    for name in sorted(values, key=lambda name: (-values[name], name)):
        value = values[name]
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"  {name:<{width}}  {rendered}")
    return lines


def _render_quantiles(histograms: dict[str, LogHistogram]) -> list[str]:
    """The per-name p50/p90/p95/p99 table (histograms with data only)."""
    populated = {name: hist for name, hist in histograms.items() if hist.count}
    if not populated:
        return []
    lines = ["quantiles:"]
    width = max(len(name) for name in populated)
    for name in sorted(populated):
        histogram = populated[name]
        cells = "  ".join(
            f"{label}={histogram.quantile(q):g}" for label, q in SUMMARY_QUANTILES
        )
        lines.append(f"  {name:<{width}}  n={histogram.count:<6d}  {cells}")
    return lines


def render_stats(run: RunData) -> str:
    """Render counters, gauges, quantiles, and the manifest of a run."""
    sections: list[list[str]] = []
    if run.counters:
        sections.append(_render_table("counters:", run.counters))
    if run.gauges:
        sections.append(_render_table("gauges:", run.gauges))
    quantile_lines = _render_quantiles(run.histograms)
    if quantile_lines:
        sections.append(quantile_lines)
    if run.spans:
        by_name: dict[str, tuple[int, float]] = {}
        for record in run.spans:
            count, total = by_name.get(record["name"], (0, 0.0))
            by_name[record["name"]] = (count + 1, total + record.get("dur", 0.0))
        width = max(len(name) for name in by_name)
        lines = ["spans:"]
        for name in sorted(by_name):
            count, total = by_name[name]
            lines.append(f"  {name:<{width}}  n={count}  total={total:.4f}s")
        sections.append(lines)
    if run.manifest:
        lines = ["manifest:"]
        for key in ("command", "seed", "package_version", "realized_workers",
                    "python", "platform"):
            if run.manifest.get(key) is not None:
                lines.append(f"  {key}: {run.manifest[key]}")
        knobs = run.manifest.get("knobs") or {}
        for name in sorted(knobs):
            lines.append(f"  knob {name}={knobs[name]}")
        sections.append(lines)
    if not sections:
        return "(empty run)"
    return "\n".join("\n".join(section) for section in sections)
