"""Streaming log-bucket histograms: mergeable latency/size distributions.

``repro.obs`` needs distributions, not just totals: the serve tier
reports p50/p99 latency and the error atlas inspects multi-hour runs
after the fact.  A quantile *sketch* (P², t-digest) would be
order-sensitive — merging worker sketches in a different order changes
the result — which breaks the subsystem's determinism contract.  This
module instead uses **fixed logarithmic buckets**:

* every observed value lands in the bucket ``i`` with
  ``10^(i/K) <= value < 10^((i+1)/K)`` where ``K`` is
  :data:`BUCKETS_PER_DECADE` — the bucket layout is a constant of the
  format, never data-dependent;
* a histogram is a sparse ``{bucket index: count}`` mapping of exact
  integers, so merging is bucket-wise integer addition: associative,
  commutative, and bit-identical regardless of worker count or merge
  order (floats are deliberately **not** accumulated — a float
  min/max/sum would re-introduce order sensitivity);
* quantiles are reported as the geometric midpoint of the covering
  bucket, so two histograms with equal bucket counts always report
  byte-identical quantiles.

Resolution: ``K = 20`` buckets per decade keeps any bucket's relative
width under ``10^(1/20) ≈ 1.122``, i.e. quantiles are exact to ~12% —
plenty for latency work where regressions of interest are 25%+ — while
a full run's histogram stays a few dozen sparse entries.

Nonpositive and non-finite observations (a zero-duration span, a clamped
delta) fall outside the log scale and are tallied in a dedicated *zero*
bucket that sorts below every log bucket and reports as ``0.0``.

The module is stdlib-only, like the recorder: it must stay importable
from every layer before the rest of the package initializes.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = [
    "BUCKETS_PER_DECADE",
    "SUMMARY_QUANTILES",
    "LogHistogram",
    "bucket_index",
    "bucket_lower_bound",
    "bucket_midpoint",
]

#: Buckets per factor of ten; a constant of the on-disk format.  Records
#: carry it as ``k`` so a reader can reject histograms recorded under a
#: different layout instead of silently mis-merging them.
BUCKETS_PER_DECADE = 20

#: Quantiles surfaced by :meth:`LogHistogram.summary`, ``repro stats``,
#: and the run manifest.
SUMMARY_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99))


def bucket_lower_bound(index: int) -> float:
    """The inclusive lower edge of log bucket ``index``."""
    return 10.0 ** (index / BUCKETS_PER_DECADE)


def bucket_index(value: float) -> int:
    """The log bucket covering ``value`` (which must be positive, finite).

    The candidate index comes from ``floor(log10(value) * K)``; because
    ``log10`` is inexact in the last ulp near bucket edges, the index is
    then nudged until ``lower(i) <= value < lower(i + 1)`` holds — making
    the bucketing a pure function of the value's bits, identical across
    processes on the same platform.
    """
    index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
    while value < bucket_lower_bound(index):
        index -= 1
    while value >= bucket_lower_bound(index + 1):
        index += 1
    return index


def bucket_midpoint(index: int) -> float:
    """The geometric midpoint of log bucket ``index`` (the quantile value).

    Rounded to six significant digits so JSON round-trips and rendered
    tables are stable across platforms.
    """
    return float(f"{10.0 ** ((index + 0.5) / BUCKETS_PER_DECADE):.6g}")


class LogHistogram:
    """A sparse fixed-log-bucket histogram of exact integer counts.

    The only state is ``buckets`` (log-bucket index -> count) and
    ``zero_count`` (observations at or below zero, or non-finite), so
    equality, merging, and subtraction are all exact integer arithmetic.
    """

    __slots__ = ("buckets", "zero_count")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.zero_count = 0

    # -- recording -----------------------------------------------------
    def observe(self, value: float) -> None:
        """Tally one observation into its covering bucket."""
        numeric = float(value)
        if not (numeric > 0.0 and math.isfinite(numeric)):
            self.zero_count += 1
            return
        index = bucket_index(numeric)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Tally every value in ``values``."""
        for value in values:
            self.observe(value)

    # -- exact integer algebra -----------------------------------------
    def merge(self, other: "LogHistogram") -> None:
        """Add ``other``'s bucket counts into this histogram, in place.

        Integer bucket addition is associative and commutative, so any
        merge tree over the same observations yields identical state —
        the property the worker drain/absorb protocol relies on.
        """
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.zero_count += other.zero_count

    def subtract(self, other: "LogHistogram") -> "LogHistogram":
        """Return this histogram minus ``other``, bucket by bucket.

        Exact because counts are integers; used to attribute a session
        histogram to one exhibit (snapshot before, subtract after).
        Raises :class:`ValueError` if ``other`` is not a sub-histogram.
        """
        result = LogHistogram()
        result.zero_count = self.zero_count - other.zero_count
        if result.zero_count < 0:
            raise ValueError("subtrahend has more zero-bucket observations")
        for index in set(self.buckets) | set(other.buckets):
            count = self.buckets.get(index, 0) - other.buckets.get(index, 0)
            if count < 0:
                raise ValueError(f"subtrahend has more observations in bucket {index}")
            if count:
                result.buckets[index] = count
        return result

    def copy(self) -> "LogHistogram":
        """An independent snapshot of the current state."""
        duplicate = LogHistogram()
        duplicate.buckets = dict(self.buckets)
        duplicate.zero_count = self.zero_count
        return duplicate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return self.buckets == other.buckets and self.zero_count == other.zero_count

    def __repr__(self) -> str:
        return (
            f"LogHistogram(count={self.count}, zero={self.zero_count}, "
            f"buckets={len(self.buckets)})"
        )

    # -- quantiles -----------------------------------------------------
    @property
    def count(self) -> int:
        """Total number of observations, zero bucket included."""
        return self.zero_count + sum(self.buckets.values())

    def quantile(self, q: float) -> float:
        """The q-quantile as its covering bucket's geometric midpoint.

        ``q`` must lie in [0, 1].  The rank is ``ceil(q * count)``
        (clamped to at least 1), counted through the zero bucket first
        and then the log buckets in ascending index order.  An empty
        histogram reports ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        total = self.count
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        if rank <= self.zero_count:
            return 0.0
        seen = self.zero_count
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank <= seen:
                return bucket_midpoint(index)
        return bucket_midpoint(max(self.buckets))  # pragma: no cover - rank <= count

    def summary(self) -> dict[str, Any]:
        """Count plus the standard quantiles, as manifest-ready JSON."""
        result: dict[str, Any] = {"count": self.count}
        for label, q in SUMMARY_QUANTILES:
            result[label] = self.quantile(q)
        return result

    # -- serialization -------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """The picklable/JSON state carried by ``Telemetry.drain``."""
        return {
            "k": BUCKETS_PER_DECADE,
            "zero": self.zero_count,
            "buckets": [[index, self.buckets[index]] for index in sorted(self.buckets)],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_payload` state.

        Rejects payloads recorded under a different bucket layout — a
        merge across layouts would silently corrupt every quantile.
        """
        layout = payload.get("k", BUCKETS_PER_DECADE)
        if layout != BUCKETS_PER_DECADE:
            raise ValueError(
                f"histogram uses {layout} buckets/decade, "
                f"this build expects {BUCKETS_PER_DECADE}"
            )
        histogram = cls()
        histogram.zero_count = int(payload.get("zero", 0))
        for index, count in payload.get("buckets", []):
            histogram.buckets[int(index)] = int(count)
        return histogram

    def to_record(self, name: str) -> dict[str, Any]:
        """The JSONL record for a run file (``ev: "hist"``)."""
        record: dict[str, Any] = {"ev": "hist", "name": name}
        record.update(self.to_payload())
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "LogHistogram":
        """Rebuild a histogram from a JSONL ``hist`` record."""
        return cls.from_payload(record)
