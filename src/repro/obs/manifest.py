"""Run manifests: the who/what/where of every produced artifact.

A figure or benchmark number is only self-describing when the producing
configuration travels with it.  The manifest snapshots everything that
influences a run — the seed, every ``REPRO_*`` knob, package and
dependency versions, the platform, and the realized worker count — into
one JSON document written alongside the results (and embedded as the
first record of the telemetry JSONL, so ``repro stats`` can show it).

The snapshot is *observational*: it records the environment as-is and
never validates or mutates it, so building a manifest can never change
what a run computes.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Mapping

from repro.resilience.atomic import atomic_write

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "knob_snapshot",
    "read_manifest",
    "write_manifest",
]

#: Version of the manifest document layout.
MANIFEST_SCHEMA = 1


def knob_snapshot() -> dict[str, str]:
    """Every ``REPRO_*`` environment variable, sorted by name."""
    return {
        name: value
        for name, value in sorted(os.environ.items())
        if name.startswith("REPRO_")
    }


def _realized_workers(workers: int | None) -> int:
    if workers is not None:
        return workers
    raw = os.environ.get("REPRO_WORKERS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def build_manifest(
    *,
    seed: int | None = None,
    workers: int | None = None,
    command: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest for the current process and configuration.

    ``workers`` is the *realized* worker count when the caller knows it
    (e.g. a sweep that clamped to the number of grid points); otherwise
    the ``REPRO_WORKERS`` knob is reported.  ``extra`` lets callers
    attach run-specific fields (an exhibit id, an output path).
    """
    from repro._version import __version__
    from repro.sampling.kernels import kernel_info

    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "package_version": __version__,
        "recorded_at_unix": round(time.time(), 3),
        "command": command,
        "seed": seed,
        "realized_workers": _realized_workers(workers),
        "knobs": knob_snapshot(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": numpy_version,
        "kernel": kernel_info(),
        "resilience": {
            "faults": os.environ.get("REPRO_FAULTS") or None,
            "fault_seed": os.environ.get("REPRO_FAULT_SEED") or None,
            "retries": os.environ.get("REPRO_RETRIES") or None,
            "task_timeout": os.environ.get("REPRO_TASK_TIMEOUT") or None,
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str | Path, manifest: Mapping[str, Any]) -> Path:
    """Write a manifest as pretty-printed JSON, atomically."""
    return atomic_write(
        path, json.dumps(dict(manifest), indent=2, sort_keys=True) + "\n"
    )


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load a manifest written by :func:`write_manifest`."""
    loaded = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(loaded, dict):
        raise ValueError(f"manifest at {path} is not a JSON object")
    return loaded
