"""A small columnar query executor.

The optimizer (:mod:`repro.db.optimizer`) chooses plans from *estimated*
cardinalities; this engine runs those plans so the cost of a bad
distinct-count statistic becomes an observable — actual intermediate
rows — rather than a model output.  It supports exactly what the
paper's motivation needs:

* sequential scans with simple column predicates;
* left-deep equi-join pipelines (hash joins);
* hash and sort aggregation for ``GROUP BY``.

Relations are columnar: ``dict[str, numpy array]`` with equal-length
columns, column names qualified as ``table.column``.  Every operator
adds the rows it materializes to a shared :class:`ExecutionStats`, so a
plan's measured cost is directly comparable to the optimizer's
``C_out`` estimate.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.db.catalog import Catalog
from repro.db.optimizer import JoinPlan, JoinPredicate, choose_join_order
from repro.db.table import Table
from repro.errors import InvalidParameterError
from repro.obs.recorder import OBS

__all__ = [
    "ExecutionStats",
    "Relation",
    "seq_scan",
    "filter_rows",
    "hash_join",
    "hash_aggregate",
    "sort_aggregate",
    "execute_join_plan",
    "run_join_query",
]

#: A columnar relation: qualified column name -> values.
Relation = dict[str, np.ndarray]


@dataclass
class ExecutionStats:
    """Observable cost counters, accumulated across operators."""

    rows_scanned: int = 0
    rows_output: int = 0
    intermediate_rows: list[int] = field(default_factory=list)
    hash_entries: int = 0

    @property
    def total_intermediate(self) -> int:
        """The measured analogue of the optimizer's C_out cost."""
        return sum(self.intermediate_rows)


def _relation_size(relation: Relation) -> int:
    if not relation:
        return 0
    return int(next(iter(relation.values())).size)


def _validate_relation(relation: Relation) -> None:
    sizes = {column.size for column in relation.values()}
    if len(sizes) > 1:
        raise InvalidParameterError(
            f"ragged relation: column lengths {sorted(sizes)}"
        )


def seq_scan(table: Table, stats: ExecutionStats) -> Relation:
    """Scan a table into a relation with ``table.column`` names."""
    relation = {
        f"{table.name}.{name}": values for name, values in table.columns.items()
    }
    stats.rows_scanned += table.n_rows
    if OBS.enabled:
        OBS.add("db.rows_scanned", table.n_rows)
        OBS.add("db.seq_scans")
    return relation


def filter_rows(
    relation: Relation,
    column: str,
    op: str,
    value,
    stats: ExecutionStats,
) -> Relation:
    """Apply ``column <op> value`` (op in ``== != < <= > >=``)."""
    if column not in relation:
        raise InvalidParameterError(
            f"no column {column!r}; available: {sorted(relation)}"
        )
    data = relation[column]
    operations = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }
    if op not in operations:
        raise InvalidParameterError(
            f"unknown operator {op!r}; known: {sorted(operations)}"
        )
    mask = operations[op](data, value)
    filtered = {name: values[mask] for name, values in relation.items()}
    stats.intermediate_rows.append(_relation_size(filtered))
    return filtered


def hash_join(
    left: Relation,
    right: Relation,
    left_key: str,
    right_key: str,
    stats: ExecutionStats,
) -> Relation:
    """Equi-join two relations (build on the smaller side).

    Output contains every column of both inputs; the measured output
    size is appended to ``stats.intermediate_rows``.
    """
    for key, relation in ((left_key, left), (right_key, right)):
        if key not in relation:
            raise InvalidParameterError(
                f"join key {key!r} missing; available: {sorted(relation)}"
            )
    _validate_relation(left)
    _validate_relation(right)
    build, probe = (left, right) if _relation_size(left) <= _relation_size(right) else (right, left)
    build_key = left_key if build is left else right_key
    probe_key = right_key if build is left else left_key

    table: dict = {}
    for index, key in enumerate(build[build_key].tolist()):
        table.setdefault(key, []).append(index)
    stats.hash_entries += len(table)

    build_indices: list[int] = []
    probe_indices: list[int] = []
    for index, key in enumerate(probe[probe_key].tolist()):
        matches = table.get(key)
        if matches:
            build_indices.extend(matches)
            probe_indices.extend([index] * len(matches))
    build_idx = np.array(build_indices, dtype=np.int64)
    probe_idx = np.array(probe_indices, dtype=np.int64)

    joined: Relation = {}
    for name, values in build.items():
        joined[name] = values[build_idx]
    for name, values in probe.items():
        if name in joined:  # self-join on same qualified name
            continue
        joined[name] = values[probe_idx]
    stats.intermediate_rows.append(_relation_size(joined))
    return joined


def hash_aggregate(
    relation: Relation, group_column: str, stats: ExecutionStats
) -> Relation:
    """``SELECT group_column, COUNT(*) GROUP BY group_column`` via hashing.

    Memory cost is one hash entry per group (recorded in
    ``stats.hash_entries``) — the quantity the optimizer's strategy
    choice estimates with the distinct count.
    """
    if group_column not in relation:
        raise InvalidParameterError(f"no column {group_column!r}")
    groups, counts = np.unique(relation[group_column], return_counts=True)
    stats.hash_entries += groups.size
    stats.intermediate_rows.append(int(groups.size))
    return {group_column: groups, "count": counts}


def sort_aggregate(
    relation: Relation, group_column: str, stats: ExecutionStats
) -> Relation:
    """The sort-based GROUP BY: sort, then count runs (O(1) extra memory)."""
    if group_column not in relation:
        raise InvalidParameterError(f"no column {group_column!r}")
    ordered = np.sort(relation[group_column])
    if ordered.size == 0:
        stats.intermediate_rows.append(0)
        return {group_column: ordered, "count": ordered.astype(np.int64)}
    boundaries = np.flatnonzero(np.concatenate(([True], ordered[1:] != ordered[:-1])))
    groups = ordered[boundaries]
    counts = np.diff(np.concatenate((boundaries, [ordered.size])))
    stats.intermediate_rows.append(int(groups.size))
    return {group_column: groups, "count": counts.astype(np.int64)}


def _predicate_for(
    predicates: Sequence[JoinPredicate], joined: set[str], table: str
) -> JoinPredicate:
    for predicate in predicates:
        if predicate.involves(table) and predicate.other(table) in joined:
            return predicate
    raise InvalidParameterError(
        f"no predicate connects {table!r} to {sorted(joined)}"
    )


def execute_join_plan(
    catalog: Catalog,
    plan: JoinPlan,
    predicates: Sequence[JoinPredicate],
) -> tuple[Relation, ExecutionStats]:
    """Execute a left-deep join order with hash joins.

    Returns the joined relation and the measured cost counters; the
    measured ``total_intermediate`` is the ground truth against which
    the optimizer's estimated cost can be judged.
    """
    stats = ExecutionStats()
    with OBS.span("db.execute_join_plan", tables=len(plan.order)):
        current = seq_scan(catalog.table(plan.order[0]), stats)
        joined = {plan.order[0]}
        for table_name in plan.order[1:]:
            predicate = _predicate_for(predicates, joined, table_name)
            if predicate.left in joined:
                left_key = f"{predicate.left}.{predicate.left_column}"
                right_key = f"{predicate.right}.{predicate.right_column}"
            else:
                left_key = f"{predicate.right}.{predicate.right_column}"
                right_key = f"{predicate.left}.{predicate.left_column}"
            right = seq_scan(catalog.table(table_name), stats)
            current = hash_join(current, right, left_key, right_key, stats)
            joined.add(table_name)
        stats.rows_output = _relation_size(current)
    return current, stats


def run_join_query(
    catalog: Catalog,
    predicates: Sequence[JoinPredicate],
    order: Sequence[str] | None = None,
) -> tuple[Relation, ExecutionStats, JoinPlan]:
    """Plan (unless an order is forced) and execute a join query."""
    if order is None:
        plan = choose_join_order(catalog, predicates)
    else:
        from repro.db.optimizer import enumerate_left_deep_plans

        candidates = [
            candidate
            for candidate in enumerate_left_deep_plans(catalog, predicates)
            if candidate.order == tuple(order)
        ]
        if not candidates:
            raise InvalidParameterError(
                f"order {tuple(order)!r} is not a connected left-deep plan"
            )
        plan = candidates[0]
    relation, stats = execute_join_plan(catalog, plan, predicates)
    return relation, stats, plan
