"""Predicate selectivity estimation from catalog statistics.

The other half of the optimizer's statistics diet.  Given a predicate
``column <op> value``, the estimated fraction of qualifying rows comes
from, in order of preference:

1. a stored :class:`~repro.db.histogram.EquiDepthHistogram` (range and
   equality predicates, value-aware);
2. the distinct-count statistic (equality ``~ 1/D`` under uniformity);
3. the textbook defaults (System R's 1/3 for ranges, 1/10 for equality)
   when no statistics exist.

`Catalog` gains histogram storage via :func:`attach_histogram` /
:func:`stored_histogram` so ANALYZE can persist both kinds of statistic
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.catalog import Catalog
from repro.db.histogram import EquiDepthHistogram
from repro.errors import CatalogError, InvalidParameterError

__all__ = [
    "FilterSpec",
    "attach_histogram",
    "stored_histogram",
    "estimate_selectivity",
    "estimate_filtered_rows",
]

#: System R's defaults for statistics-free estimation.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

_RANGE_OPS = ("<", "<=", ">", ">=")
_ALL_OPS = ("==", "!=", *_RANGE_OPS)


@dataclass(frozen=True)
class FilterSpec:
    """A single-column comparison predicate ``table.column <op> value``."""

    table: str
    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in _ALL_OPS:
            raise InvalidParameterError(
                f"op must be one of {_ALL_OPS}, got {self.op!r}"
            )


def _histogram_key(table: str, column: str) -> tuple[str, str, str]:
    return (table, column, "histogram")


def attach_histogram(
    catalog: Catalog, table: str, column: str, histogram: EquiDepthHistogram
) -> None:
    """Store a histogram for ``table.column`` in the catalog."""
    if table not in catalog.tables:
        raise CatalogError(f"unknown table {table!r}")
    if column not in catalog.tables[table]:
        raise CatalogError(f"table {table!r} has no column {column!r}")
    if not hasattr(catalog, "_histograms"):
        catalog._histograms = {}
    catalog._histograms[_histogram_key(table, column)] = histogram


def stored_histogram(
    catalog: Catalog, table: str, column: str
) -> EquiDepthHistogram | None:
    """The stored histogram, or None when ANALYZE never built one."""
    return getattr(catalog, "_histograms", {}).get(_histogram_key(table, column))


def _histogram_selectivity(
    histogram: EquiDepthHistogram, op: str, value: float
) -> float:
    lowest = histogram.buckets[0].low
    highest = histogram.buckets[-1].high
    if op == "==":
        return histogram.equality_selectivity(value)
    if op == "!=":
        return 1.0 - histogram.equality_selectivity(value)
    if op in ("<", "<="):
        if value < lowest:
            return 0.0
        return histogram.range_selectivity(lowest, min(value, highest))
    # > or >=
    if value > highest:
        return 0.0
    return histogram.range_selectivity(max(value, lowest), highest)


def estimate_selectivity(catalog: Catalog, spec: FilterSpec) -> float:
    """Estimated fraction of rows of ``spec.table`` satisfying ``spec``."""
    histogram = stored_histogram(catalog, spec.table, spec.column)
    if histogram is not None:
        return float(np.clip(_histogram_selectivity(histogram, spec.op, spec.value), 0.0, 1.0))
    if catalog.has_statistics(spec.table, spec.column):
        distinct = max(catalog.distinct_count(spec.table, spec.column), 1.0)
        if spec.op == "==":
            return min(1.0, 1.0 / distinct)
        if spec.op == "!=":
            return 1.0 - min(1.0, 1.0 / distinct)
        return DEFAULT_RANGE_SELECTIVITY
    if spec.op == "==":
        return DEFAULT_EQUALITY_SELECTIVITY
    if spec.op == "!=":
        return 1.0 - DEFAULT_EQUALITY_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def estimate_filtered_rows(catalog: Catalog, spec: FilterSpec) -> float:
    """Estimated qualifying row count, ``n * selectivity``."""
    return catalog.table(spec.table).n_rows * estimate_selectivity(catalog, spec)
