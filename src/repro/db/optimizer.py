"""A toy cost-based optimizer driven by distinct-value statistics.

The paper's motivation (§1): "accuracy of distinct values estimation
greatly impacts the query optimizer's ability to generate good plans for
SQL queries."  This module makes that concrete with the two classic
decisions that hinge on distinct counts:

* **join ordering** — the textbook cardinality model estimates
  ``|R join S on k| = |R| |S| / max(D_R(k), D_S(k))``, so a bad distinct
  estimate misorders joins;
* **aggregation strategy** — hash aggregation needs one hash-table entry
  per group (``D`` entries); if the estimated ``D`` fits the memory
  budget, hash beats sort.

The optimizer is deliberately small — left-deep plans, equi-joins,
exhaustive enumeration — because its purpose is to *demonstrate the
downstream effect of estimation error*, which the optimizer example and
benchmarks quantify by re-costing the chosen plan with exact statistics.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.db.catalog import Catalog
from repro.errors import InvalidParameterError

__all__ = [
    "JoinPredicate",
    "JoinPlan",
    "join_cardinality",
    "enumerate_left_deep_plans",
    "choose_join_order",
    "choose_aggregate_strategy",
]


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join ``left.column = right.column`` between two tables."""

    left: str
    left_column: str
    right: str
    right_column: str

    def involves(self, table: str) -> bool:
        """Whether the predicate references ``table`` on either side."""
        return table in (self.left, self.right)

    def other(self, table: str) -> str:
        """The predicate's other table."""
        if table == self.left:
            return self.right
        if table == self.right:
            return self.left
        raise InvalidParameterError(f"{table!r} is not part of predicate {self}")


@dataclass(frozen=True)
class JoinPlan:
    """A left-deep join order with its estimated cost.

    ``cost`` is the sum of intermediate result cardinalities — the
    standard C_out cost model.
    """

    order: tuple[str, ...]
    intermediate_cardinalities: tuple[float, ...]
    cost: float


def join_cardinality(
    rows_left: float, rows_right: float, distinct_left: float, distinct_right: float
) -> float:
    """Textbook equi-join cardinality ``|R| |S| / max(D_R, D_S)``."""
    if rows_left < 0 or rows_right < 0:
        raise InvalidParameterError("row counts must be non-negative")
    denominator = max(distinct_left, distinct_right, 1.0)
    return rows_left * rows_right / denominator


def _predicate_between(
    predicates: Sequence[JoinPredicate], joined: set[str], table: str
) -> JoinPredicate | None:
    """First predicate connecting ``table`` to the already-joined set."""
    for predicate in predicates:
        if predicate.involves(table) and predicate.other(table) in joined:
            return predicate
    return None


def enumerate_left_deep_plans(
    catalog: Catalog, predicates: Sequence[JoinPredicate]
) -> list[JoinPlan]:
    """All connected left-deep join orders with estimated costs.

    Cardinalities come from the catalog's distinct-value statistics; the
    distinct count of the join key in an intermediate result is
    propagated as the smaller of the two sides' (the containment
    assumption).
    """
    if not predicates:
        raise InvalidParameterError("at least one join predicate is required")
    tables: list[str] = []
    for predicate in predicates:
        for name in (predicate.left, predicate.right):
            if name not in tables:
                tables.append(name)
    plans = []
    for order in itertools.permutations(tables):
        plan = _cost_left_deep(catalog, predicates, order)
        if plan is not None:
            plans.append(plan)
    if not plans:
        raise InvalidParameterError(
            "join graph is disconnected; no left-deep plan covers all tables"
        )
    return plans


def _cost_left_deep(
    catalog: Catalog,
    predicates: Sequence[JoinPredicate],
    order: Sequence[str],
) -> JoinPlan | None:
    """Cost one left-deep order; None when the order is disconnected."""
    first = order[0]
    joined = {first}
    rows = float(catalog.table(first).n_rows)
    # Distinct counts of each table's join columns, looked up lazily.
    key_distinct: dict[str, float] = {}

    def distinct_of(table: str, column: str) -> float:
        key = f"{table}.{column}"
        if key not in key_distinct:
            key_distinct[key] = catalog.distinct_count(table, column)
        return key_distinct[key]

    intermediates = []
    current_key_distinct: dict[str, float] = {}
    for table in order[1:]:
        predicate = _predicate_between(predicates, joined, table)
        if predicate is None:
            return None
        if predicate.left in joined:
            inner_column = predicate.left_column
            outer_table, outer_column = predicate.right, predicate.right_column
            inner_table = predicate.left
        else:
            inner_column = predicate.right_column
            outer_table, outer_column = predicate.left, predicate.left_column
            inner_table = predicate.right
        # Distinct count of the key on the accumulated side: propagated
        # if this key joined before, else the base table's statistic.
        inner_key = f"{inner_table}.{inner_column}"
        d_inner = current_key_distinct.get(
            inner_key, distinct_of(inner_table, inner_column)
        )
        d_outer = distinct_of(outer_table, outer_column)
        outer_rows = float(catalog.table(outer_table).n_rows)
        rows = join_cardinality(rows, outer_rows, d_inner, d_outer)
        current_key_distinct[inner_key] = min(d_inner, d_outer)
        joined.add(table)
        intermediates.append(rows)
    return JoinPlan(
        order=tuple(order),
        intermediate_cardinalities=tuple(intermediates),
        cost=float(sum(intermediates)),
    )


def choose_join_order(
    catalog: Catalog, predicates: Sequence[JoinPredicate]
) -> JoinPlan:
    """The cheapest left-deep plan under the catalog's statistics."""
    plans = enumerate_left_deep_plans(catalog, predicates)
    return min(plans, key=lambda plan: plan.cost)


def choose_aggregate_strategy(
    catalog: Catalog,
    table: str,
    group_column: str,
    memory_budget_groups: int,
) -> str:
    """``"hash"`` when the estimated group count fits in memory, else ``"sort"``.

    The decision the paper's introduction motivates: a hash aggregate
    needs one entry per distinct group; underestimating ``D`` chooses
    hash and spills, overestimating chooses an unnecessary sort.
    """
    if memory_budget_groups < 1:
        raise InvalidParameterError(
            f"memory budget must be >= 1 group, got {memory_budget_groups}"
        )
    estimated_groups = catalog.distinct_count(table, group_column)
    return "hash" if estimated_groups <= memory_budget_groups else "sort"
