"""Multi-column (composite-key) distinct estimation.

The motivating optimizer decisions often concern value *combinations*:
``GROUP BY a, b`` cardinality, duplicate detection on compound keys,
join selectivity over multi-column predicates.  Sampling theory carries
over unchanged — a uniform row sample of the table is a uniform sample
of the composite column — so this module reduces the multi-column case
to the single-column machinery:

* :func:`composite_values` packs several columns' rows into one value
  per row (a collision-checked 64-bit mix of the per-column hashes);
* :func:`estimate_composite_distinct` samples a table once and runs any
  estimator on the packed sample;
* :func:`composite_upper_bound` gives the textbook independence cap
  ``min(n, Π D_i)`` an optimizer would use with no multi-column
  statistics — the example of record for why correlated columns need
  the sampled estimate.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.base import DistinctValueEstimator, Estimate
from repro.core.gee import GEE
from repro.db.table import Table
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile
from repro.sketches.hashing import hash64

__all__ = [
    "composite_values",
    "estimate_composite_distinct",
    "composite_upper_bound",
    "correlation_ratio",
]


def composite_values(table: Table, columns: Sequence[str]) -> np.ndarray:
    """Pack the named columns into one uint64 value per row.

    Each column is hashed with a column-specific seed and the hashes are
    mixed; equal row-tuples map to equal packed values, and unequal
    tuples collide with probability ~2^-64 per pair (negligible against
    sampling error for any realistic table).
    """
    if not columns:
        raise InvalidParameterError("at least one column is required")
    packed: np.ndarray | None = None
    for index, name in enumerate(columns):
        hashed = hash64(table.column(name), seed=index + 1)
        if packed is None:
            packed = hashed.copy()
        else:
            with np.errstate(over="ignore"):
                packed = (
                    packed * np.uint64(0x9E3779B97F4A7C15) + hashed
                ) & np.uint64(0xFFFFFFFFFFFFFFFF)
    return packed


def estimate_composite_distinct(
    table: Table,
    columns: Sequence[str],
    rng: np.random.Generator,
    estimator: DistinctValueEstimator | None = None,
    fraction: float = 0.01,
) -> Estimate:
    """Estimate the distinct count of a column combination from a sample.

    A single set of sampled row indices is drawn (as a real system
    would sample rows, not columns) and packed per row.
    """
    estimator = estimator if estimator is not None else GEE()
    n = table.n_rows
    if n == 0:
        raise InvalidParameterError(f"table {table.name!r} is empty")
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
    packed = composite_values(table, columns)
    r = min(n, max(1, round(fraction * n)))
    indices = rng.choice(n, size=r, replace=False)
    profile = FrequencyProfile.from_sample(packed[indices])
    return estimator.estimate(profile, n)


def composite_upper_bound(
    table: Table, columns: Sequence[str], per_column_distinct: Sequence[float]
) -> float:
    """The independence cap ``min(n, Π D_i)`` for a column combination.

    This is what an optimizer falls back to without multi-column
    statistics; correlated columns can sit far below it.
    """
    if len(columns) != len(per_column_distinct):
        raise InvalidParameterError(
            "columns and per_column_distinct must have equal length"
        )
    if any(d < 1 for d in per_column_distinct):
        raise InvalidParameterError("distinct counts must be >= 1")
    product = 1.0
    for d in per_column_distinct:
        product *= float(d)
        if product > table.n_rows:  # early cap; avoids overflow
            return float(table.n_rows)
    return float(min(product, table.n_rows))


def correlation_ratio(
    composite_distinct: float, per_column_distinct: Sequence[float], n_rows: int
) -> float:
    """How correlated a column set is: ``D_composite / min(n, Π D_i)``.

    1.0 means fully independent columns; values near
    ``max(D_i) / min(n, Π D_i)`` mean one column determines the others.
    """
    cap = 1.0
    for d in per_column_distinct:
        cap *= float(d)
    cap = min(cap, float(n_rows))
    if cap <= 0 or composite_distinct <= 0:
        raise InvalidParameterError("distinct counts must be positive")
    return composite_distinct / cap
