"""Progressive ANALYZE: sample until the accuracy certificate is met.

GEE's interval ``[LOWER, UPPER]`` is a *certificate*: the true distinct
count lies inside it with high probability, so an estimate placed at
the geometric mean ``sqrt(LOWER * UPPER)`` is within ratio
``sqrt(UPPER / LOWER)`` of the truth.  That turns sampling into a
feedback loop the paper's fixed-fraction experiments only hint at:

1. read a small prefix of a random row permutation;
2. compute the certificate; if ``sqrt(UPPER/LOWER) <= target``, stop;
3. otherwise double the prefix (previous rows are reused — the prefix
   of a uniform permutation of any length is a uniform
   without-replacement sample) and repeat, up to a budget.

Theorem 1 says some columns will exhaust any sub-linear budget (an
all-singletons sample keeps the interval wide no matter what) — the
result reports honestly whether the target was certified or the budget
was hit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.base import ConfidenceInterval
from repro.core.bounds import gee_interval
from repro.core.gee import GEE
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile
from repro.sampling.base import as_column

__all__ = ["ProgressiveStage", "ProgressiveResult", "progressive_analyze"]


@dataclass(frozen=True)
class ProgressiveStage:
    """One doubling step of the progressive sampler."""

    sample_size: int
    estimate: float
    interval: ConfidenceInterval
    certified_ratio: float


@dataclass(frozen=True)
class ProgressiveResult:
    """Outcome of a progressive ANALYZE."""

    stages: tuple[ProgressiveStage, ...]
    target_ratio: float
    certified: bool

    @property
    def final(self) -> ProgressiveStage:
        return self.stages[-1]

    @property
    def rows_read(self) -> int:
        """Rows actually examined (stages share their prefixes)."""
        return self.final.sample_size


def progressive_analyze(
    column,
    rng: np.random.Generator,
    target_ratio: float = 2.0,
    initial_fraction: float = 0.001,
    max_fraction: float = 0.25,
) -> ProgressiveResult:
    """Sample a column in doubling stages until GEE certifies the target.

    Parameters
    ----------
    column:
        1-D array of values.
    target_ratio:
        Stop once ``sqrt(UPPER / LOWER) <= target_ratio`` (> 1).
    initial_fraction, max_fraction:
        First-stage size and the sampling budget, as fractions of ``n``.

    Returns
    -------
    ProgressiveResult
        One stage per doubling; ``certified`` tells whether the target
        was met within the budget.
    """
    if target_ratio <= 1.0:
        raise InvalidParameterError(
            f"target_ratio must exceed 1, got {target_ratio}"
        )
    if not 0.0 < initial_fraction <= max_fraction <= 1.0:
        raise InvalidParameterError(
            "need 0 < initial_fraction <= max_fraction <= 1, got "
            f"{initial_fraction} and {max_fraction}"
        )
    data = as_column(column)
    n = data.size
    permutation = rng.permutation(n)
    budget = max(1, round(max_fraction * n))
    r = min(budget, max(1, round(initial_fraction * n)))

    stages: list[ProgressiveStage] = []
    while True:
        profile = FrequencyProfile.from_sample(data[permutation[:r]])
        interval = gee_interval(profile, n)
        estimate = GEE().estimate(profile, n).value
        certified_ratio = (
            math.sqrt(interval.upper / interval.lower)
            if interval.lower > 0
            else math.inf
        )
        stages.append(
            ProgressiveStage(
                sample_size=r,
                estimate=estimate,
                interval=interval,
                certified_ratio=certified_ratio,
            )
        )
        if certified_ratio <= target_ratio:
            return ProgressiveResult(
                stages=tuple(stages), target_ratio=target_ratio, certified=True
            )
        if r >= budget:
            return ProgressiveResult(
                stages=tuple(stages), target_ratio=target_ratio, certified=False
            )
        r = min(budget, r * 2)
