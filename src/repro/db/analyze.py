"""ANALYZE: sample a table and populate catalog statistics.

This is the paper's measurement loop as a reusable command: draw a row
sample of each requested column, reduce it to a frequency profile (the
information the modified SQL Server returned), run a distinct-value
estimator, and store the result — estimate plus confidence interval —
in the catalog.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.base import DistinctValueEstimator
from repro.core.gee import GEE
from repro.db.catalog import Catalog, ColumnStatistics
from repro.db.table import Table
from repro.errors import InvalidParameterError
from repro.obs.recorder import OBS
from repro.sampling.base import RowSampler
from repro.sampling.schemes import UniformWithoutReplacement

__all__ = ["analyze", "analyze_column"]


def analyze_column(
    table: Table,
    column_name: str,
    rng: np.random.Generator,
    estimator: DistinctValueEstimator | None = None,
    sampler: RowSampler | None = None,
    fraction: float | None = None,
    sample_size: int | None = None,
) -> ColumnStatistics:
    """Estimate distinct values for one column and return the statistics.

    Defaults: GEE (the guaranteed-error choice for a system that cannot
    assume anything about its data) over a 1% uniform row sample without
    replacement.
    """
    estimator = estimator if estimator is not None else GEE()
    sampler = sampler if sampler is not None else UniformWithoutReplacement()
    if fraction is None and sample_size is None:
        fraction = 0.01
    with OBS.span(
        "db.analyze_column", table=table.name, column=column_name
    ):
        if OBS.enabled:
            OBS.add("db.analyze_columns")
        profile = sampler.profile(
            table.column(column_name), rng, size=sample_size, fraction=fraction
        )
        estimate = estimator.estimate(profile, table.n_rows)
    return ColumnStatistics(
        table=table.name,
        column=column_name,
        n_rows=table.n_rows,
        distinct_estimate=estimate.value,
        sample_size=profile.sample_size,
        estimator=estimator.name,
        interval=estimate.interval,
    )


def analyze(
    catalog: Catalog,
    table_name: str,
    rng: np.random.Generator,
    columns: Sequence[str] | None = None,
    estimator: DistinctValueEstimator | None = None,
    sampler: RowSampler | None = None,
    fraction: float | None = None,
    sample_size: int | None = None,
) -> list[ColumnStatistics]:
    """ANALYZE a registered table, storing statistics for each column.

    Parameters
    ----------
    catalog:
        The catalog holding the table; statistics are stored into it.
    table_name:
        Which registered table to analyze.
    columns:
        Columns to analyze (default: all).
    estimator, sampler, fraction, sample_size:
        Forwarded to :func:`analyze_column`.

    Returns
    -------
    list[ColumnStatistics]
        The statistics stored, in column order.
    """
    table = catalog.table(table_name)
    names = list(columns) if columns is not None else table.column_names
    unknown = [name for name in names if name not in table]
    if unknown:
        raise InvalidParameterError(
            f"table {table_name!r} has no columns {unknown!r}"
        )
    collected = []
    for name in names:
        stats = analyze_column(
            table,
            name,
            rng,
            estimator=estimator,
            sampler=sampler,
            fraction=fraction,
            sample_size=sample_size,
        )
        catalog.put_statistics(stats)
        collected.append(stats)
    return collected
