"""Exact distinct counting by full scan — the "traditional approach".

"The traditional approach for distinct-values estimation in the absence
of an index would be to scan the table, followed by a sort or a hash.
However, in large data warehouses, these traditional techniques can be
prohibitively expensive" (§1).  Both scans are provided so the examples
and benchmarks can quantify that cost against sampling:

* :func:`exact_distinct_sort` — sort the column, count value boundaries;
* :func:`exact_distinct_hash` — stream the column in chunks through a
  hash set, bounding peak memory by the number of *distinct* values
  rather than rows.

Both return the same number; they differ only in cost profile.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sampling.base import as_column

__all__ = ["exact_distinct_sort", "exact_distinct_hash"]


def exact_distinct_sort(column) -> int:
    """Exact distinct count via sort (``O(n log n)`` time, ``O(n)`` space)."""
    data = as_column(column)
    ordered = np.sort(data)
    if ordered.size == 0:
        return 0
    return int(1 + np.count_nonzero(ordered[1:] != ordered[:-1]))


def exact_distinct_hash(column, chunk_size: int = 65_536) -> int:
    """Exact distinct count via streaming chunk deduplication.

    Processes the column in ``chunk_size`` batches — the access pattern
    of a hash-aggregate operator.  Each chunk is deduplicated on arrival
    and the per-chunk unique *arrays* are accumulated (no per-element
    Python hashing); whenever the accumulated uniques outgrow a bound
    they are compacted with one merge, so peak memory stays proportional
    to the number of *distinct* values rather than rows, and the final
    answer is one ``np.unique`` over arrays that were never larger than
    that.  The count is exact: merging unique sets loses nothing.
    """
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    data = as_column(column)
    pending: list[np.ndarray] = []
    pending_size = 0
    for start in range(0, data.size, chunk_size):
        chunk_unique = np.unique(data[start : start + chunk_size])
        pending.append(chunk_unique)
        pending_size += chunk_unique.size
        # Compact when the staged uniques exceed a few chunks' worth:
        # the merge collapses duplicates across chunks, so the staging
        # area is bounded by O(distinct + chunk_size).
        if len(pending) > 1 and pending_size >= pending[0].size + 4 * chunk_size:
            pending = [np.unique(np.concatenate(pending))]
            pending_size = pending[0].size
    if not pending:
        return 0
    if len(pending) == 1:
        return int(pending[0].size)
    return int(np.unique(np.concatenate(pending)).size)
