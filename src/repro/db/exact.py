"""Exact distinct counting by full scan — the "traditional approach".

"The traditional approach for distinct-values estimation in the absence
of an index would be to scan the table, followed by a sort or a hash.
However, in large data warehouses, these traditional techniques can be
prohibitively expensive" (§1).  Both scans are provided so the examples
and benchmarks can quantify that cost against sampling:

* :func:`exact_distinct_sort` — sort the column, count value boundaries;
* :func:`exact_distinct_hash` — stream the column in chunks through a
  hash set, bounding peak memory by the number of *distinct* values
  rather than rows.

Both return the same number; they differ only in cost profile.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sampling.base import as_column

__all__ = ["exact_distinct_sort", "exact_distinct_hash"]


def exact_distinct_sort(column) -> int:
    """Exact distinct count via sort (``O(n log n)`` time, ``O(n)`` space)."""
    data = as_column(column)
    ordered = np.sort(data)
    if ordered.size == 0:
        return 0
    return int(1 + np.count_nonzero(ordered[1:] != ordered[:-1]))


def exact_distinct_hash(column, chunk_size: int = 65_536) -> int:
    """Exact distinct count via a streaming hash table.

    Processes the column in ``chunk_size`` batches, deduplicating each
    batch before inserting into the running set — the access pattern of
    a hash-aggregate operator.
    """
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    data = as_column(column)
    seen: set = set()
    for start in range(0, data.size, chunk_size):
        chunk = data[start : start + chunk_size]
        seen.update(np.unique(chunk).tolist())
    return len(seen)
