"""Zero-copy table persistence: ``.npy`` columns behind a JSON manifest.

A saved table is a directory::

    people/
        table.json      # name, page size, row count, column -> file map
        col_000.npy     # one .npy per column, manifest order
        col_001.npy

Columns load through ``np.load(mmap_mode="r")``, so opening a table
costs a few page faults regardless of its size: scans slice views of the
mapped file, and row sampling gathers only the selected rows into
memory.  Object-dtype columns (mixed/string data that numpy stores via
pickle) cannot be mapped and load eagerly — the manifest records which,
so readers know what they are getting.

Writes follow the project's crash-safety discipline: every column lands
via :func:`~repro.resilience.atomic.atomic_write` (serialize to memory,
write-temp-then-rename) and the manifest is written *last*, so a killed
``save_table`` leaves either the previous complete table or no manifest
at all — never a directory that claims columns it does not have.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.db.table import Table
from repro.errors import CatalogError
from repro.resilience.atomic import atomic_write

__all__ = ["MANIFEST_NAME", "load_table", "save_table"]

#: Manifest file name inside a table directory.
MANIFEST_NAME = "table.json"

#: Manifest schema version, bumped on incompatible layout changes.
_FORMAT_VERSION = 1


def _column_file(index: int) -> str:
    return f"col_{index:03d}.npy"


def save_table(table: Table, directory: str | Path) -> Path:
    """Persist ``table`` as a directory of ``.npy`` columns plus manifest.

    Returns the manifest path.  Each column is serialized in memory and
    written atomically; the manifest goes last so concurrent readers and
    crash recovery always see a consistent table.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest_columns: list[dict[str, Any]] = []
    for index, (name, values) in enumerate(table.columns.items()):
        file_name = _column_file(index)
        buffer = io.BytesIO()
        np.save(buffer, values)
        atomic_write(target / file_name, buffer.getvalue())
        manifest_columns.append(
            {
                "name": name,
                "file": file_name,
                "dtype": str(values.dtype),
                "mappable": values.dtype.hasobject is False,
            }
        )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "name": table.name,
        "page_size": table.page_size,
        "n_rows": table.n_rows,
        "columns": manifest_columns,
    }
    return atomic_write(
        target / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
    )


def _load_column_file(path: Path, mappable: bool, mmap: bool) -> np.ndarray:
    if mappable and mmap:
        return np.load(path, mmap_mode="r")
    # Object-dtype columns are stored via pickle and cannot be mapped;
    # they load eagerly.  allow_pickle is scoped to exactly this case.
    if not mappable:
        return np.load(path, allow_pickle=True)
    return np.load(path)


def load_table(directory: str | Path, mmap: bool = True) -> Table:
    """Open a saved table, mapping columns read-only by default.

    With ``mmap=True`` (the default) every non-object column is an
    ``np.memmap`` view: nothing is read until sliced, and page scans /
    row gathers touch only the pages they need.  ``mmap=False`` loads
    everything into memory (use for tiny tables or read-write scratch
    copies).
    """
    target = Path(directory)
    manifest_path = target / MANIFEST_NAME
    if not manifest_path.exists():
        raise CatalogError(f"no table manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != _FORMAT_VERSION:
        raise CatalogError(
            f"unsupported table format_version {version!r} in {manifest_path} "
            f"(expected {_FORMAT_VERSION})"
        )
    columns: dict[str, np.ndarray] = {}
    for entry in manifest["columns"]:
        column_path = target / entry["file"]
        if not column_path.exists():
            raise CatalogError(
                f"table manifest {manifest_path} names missing column file "
                f"{entry['file']!r}"
            )
        columns[entry["name"]] = _load_column_file(
            column_path, bool(entry.get("mappable", True)), mmap
        )
    return Table(
        name=manifest["name"],
        columns=columns,
        page_size=int(manifest["page_size"]),
    )
