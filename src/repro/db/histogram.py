"""Sample-built equi-depth histograms with per-bucket distinct counts.

The paper's opening contrast (§1): "while other statistical parameters
such as histograms can be fairly accurately computed from small random
samples, accurate distinct-values estimation has proved to be an
extremely challenging task."  This module implements the easy half —
the equi-depth histograms of Poosala et al. (reference [26]) built from
a row sample — and pairs each bucket with the hard half: a per-bucket
distinct-count estimate produced by any of the library's estimators.

The result is what a real catalog stores per column: bucket boundaries,
per-bucket row fractions (for range selectivity), and per-bucket
distinct counts (for equality selectivity ``1 / D_bucket``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.core.base import DistinctValueEstimator
from repro.core.gee import GEE
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = ["HistogramBucket", "EquiDepthHistogram"]


@dataclass(frozen=True)
class HistogramBucket:
    """One bucket: value range [low, high], row share, distinct estimate."""

    low: float
    high: float
    row_fraction: float
    distinct_estimate: float


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over a numeric column."""

    buckets: tuple[HistogramBucket, ...]
    n_rows: int
    sample_size: int

    @classmethod
    def from_sample(
        cls,
        sample,
        n_rows: int,
        bucket_count: int = 10,
        estimator: DistinctValueEstimator | None = None,
    ) -> "EquiDepthHistogram":
        """Build the histogram from a uniform row sample.

        Parameters
        ----------
        sample:
            1-D numeric array of sampled values.
        n_rows:
            Size of the underlying column (``n``).
        bucket_count:
            Number of equi-depth buckets (ties may merge some).
        estimator:
            Distinct-count estimator applied per bucket (default GEE);
            each bucket's population is taken as ``row_fraction * n``.
        """
        values = np.sort(np.asarray(sample))
        if values.ndim != 1 or values.size == 0:
            raise InvalidParameterError("sample must be a non-empty 1-D array")
        if not np.issubdtype(values.dtype, np.number):
            raise InvalidParameterError("histograms require numeric columns")
        if bucket_count < 1:
            raise InvalidParameterError(
                f"bucket_count must be >= 1, got {bucket_count}"
            )
        if n_rows < values.size:
            raise InvalidParameterError(
                f"n_rows={n_rows} smaller than the sample ({values.size})"
            )
        estimator = estimator if estimator is not None else GEE()
        r = values.size
        # Equi-depth boundaries on the sorted sample; extend each bucket
        # to a value boundary so equal values never straddle buckets.
        edges = [0]
        for b in range(1, bucket_count):
            target = round(b * r / bucket_count)
            # Move right until the value changes.
            while target < r and target > 0 and values[target] == values[target - 1]:
                target += 1
            if target > edges[-1] and target < r:
                edges.append(target)
        edges.append(r)
        buckets = []
        for start, stop in zip(edges, edges[1:]):
            chunk = values[start:stop]
            fraction = chunk.size / r
            bucket_rows = max(1, round(fraction * n_rows))
            profile = FrequencyProfile.from_sample(chunk)
            estimate = estimator.estimate(profile, bucket_rows).value
            buckets.append(
                HistogramBucket(
                    low=float(chunk[0]),
                    high=float(chunk[-1]),
                    row_fraction=fraction,
                    distinct_estimate=estimate,
                )
            )
        return cls(buckets=tuple(buckets), n_rows=int(n_rows), sample_size=r)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def distinct_estimate(self) -> float:
        """Column-level distinct estimate: sum of the buckets'.

        Buckets partition the value domain (construction keeps equal
        values inside one bucket), so per-bucket counts add.
        """
        return float(
            min(
                sum(bucket.distinct_estimate for bucket in self.buckets),
                self.n_rows,
            )
        )

    def range_selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows with value in ``[low, high]``.

        Buckets fully inside the range count whole; the partial end
        buckets contribute proportionally (uniform-within-bucket).
        """
        if high < low:
            raise InvalidParameterError(f"empty range [{low}, {high}]")
        total = 0.0
        for bucket in self.buckets:
            if bucket.high < low or bucket.low > high:
                continue
            if bucket.low >= low and bucket.high <= high:
                total += bucket.row_fraction
                continue
            width = bucket.high - bucket.low
            if width <= 0:
                total += bucket.row_fraction  # single-value bucket
                continue
            overlap = min(bucket.high, high) - max(bucket.low, low)
            total += bucket.row_fraction * max(overlap, 0.0) / width
        return min(total, 1.0)

    def equality_selectivity(self, value: float) -> float:
        """Estimated fraction of rows equal to ``value``: ``share / D_bucket``."""
        bucket = self._bucket_for(value)
        if bucket is None:
            return 0.0
        return bucket.row_fraction / max(bucket.distinct_estimate, 1.0)

    def _bucket_for(self, value: float) -> HistogramBucket | None:
        highs = [bucket.high for bucket in self.buckets]
        index = bisect_right(highs, value)
        if index >= len(self.buckets):
            index = len(self.buckets) - 1
        bucket = self.buckets[index]
        if bucket.low <= value <= bucket.high:
            return bucket
        if index > 0 and self.buckets[index - 1].low <= value <= self.buckets[index - 1].high:
            return self.buckets[index - 1]
        return None

    def __len__(self) -> int:
        return len(self.buckets)
