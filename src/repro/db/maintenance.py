"""Incremental statistics maintenance under appends.

Tables grow; statistics rot.  :class:`MaintainedStatistics` keeps a
column's distinct-count statistic continuously fresh as rows are
appended, without ever rescanning:

* every appended batch flows through a persistent reservoir
  (:class:`~repro.sampling.ChunkedReservoir`), so at any moment the
  sample is uniform over *all rows ever appended*;
* the current estimate and interval are recomputed on demand from the
  live reservoir — an O(sample) operation;
* :meth:`drift` reports how much the estimate has moved since the last
  :meth:`publish` to the catalog, the signal for refreshing dependent
  plans.

This mirrors how production systems piggyback statistics maintenance on
the write path instead of re-running ANALYZE from scratch.
"""

from __future__ import annotations

from repro.core.base import DistinctValueEstimator, Estimate
from repro.core.gee import GEE
from repro.db.catalog import Catalog, ColumnStatistics
from repro.errors import InvalidParameterError
from repro.sampling.reservoir_state import ChunkedReservoir

__all__ = ["MaintainedStatistics"]


class MaintainedStatistics:
    """A live distinct-count statistic for one growing column.

    Parameters
    ----------
    table, column:
        Catalog identity of the statistic.
    sample_size:
        Reservoir capacity.
    rng:
        Randomness for the reservoir.
    estimator:
        Estimator applied to the reservoir (default GEE).
    """

    def __init__(
        self,
        table: str,
        column: str,
        sample_size: int,
        rng: np.random.Generator,
        estimator: DistinctValueEstimator | None = None,
    ) -> None:
        self.table = table
        self.column = column
        self.estimator = estimator if estimator is not None else GEE()
        self._reservoir = ChunkedReservoir(sample_size, rng)
        self._published: Estimate | None = None
        self._published_rows = 0

    @property
    def rows_seen(self) -> int:
        """Total rows appended so far."""
        return self._reservoir.rows_seen

    def append(self, batch) -> None:
        """Absorb a batch of newly inserted rows."""
        self._reservoir.consume(batch)

    def current_estimate(self) -> Estimate:
        """The estimate as of the rows appended so far."""
        profile = self._reservoir.profile()
        return self.estimator.estimate(profile, self.rows_seen)

    def drift(self) -> float:
        """Ratio drift of the live estimate vs the last published one.

        1.0 means unchanged; returns ``inf`` before the first publish.
        """
        if self._published is None:
            return float("inf")
        current = self.current_estimate().value
        published = self._published.value
        return max(current / published, published / current)

    def publish(self, catalog: Catalog) -> ColumnStatistics:
        """Write the current statistic to the catalog and reset drift."""
        estimate = self.current_estimate()
        stats = ColumnStatistics(
            table=self.table,
            column=self.column,
            n_rows=self.rows_seen,
            distinct_estimate=estimate.value,
            sample_size=self._reservoir.size,
            estimator=self.estimator.name,
            interval=estimate.interval,
        )
        catalog.put_statistics(stats)
        self._published = estimate
        self._published_rows = self.rows_seen
        return stats

    def should_republish(self, max_drift: float = 1.2) -> bool:
        """Whether the estimate has drifted past ``max_drift`` since publish."""
        if max_drift <= 1.0:
            raise InvalidParameterError(
                f"max_drift must exceed 1, got {max_drift}"
            )
        return self.drift() > max_drift
