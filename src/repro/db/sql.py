"""A micro-SQL front end for distinct-count queries.

Enough SQL to exercise the whole substrate from a string — the shape of
statement the paper's motivation is really about:

.. code-block:: sql

    SELECT COUNT(DISTINCT city) FROM people
    SELECT COUNT(DISTINCT city) FROM people SAMPLE 1% USING GEE
    SELECT COUNT(DISTINCT city) FROM people SAMPLE 1% USING AE WHERE age > 30
    SELECT city, COUNT(*) FROM people GROUP BY city

Semantics:

* without ``SAMPLE``, ``COUNT(DISTINCT ...)`` is exact (sort scan);
* with ``SAMPLE p%``, a uniform row sample is drawn and the ``USING``
  estimator (default GEE) produces the estimate — the answer is an
  :class:`~repro.db.sql.QueryResult` carrying the value *and* the
  confidence interval when the estimator provides one;
* ``WHERE`` supports one comparison predicate applied before counting;
* ``GROUP BY`` runs the hash aggregate and returns groups with counts.

The grammar is deliberately tiny and the parser is a few regexes —
this is a demonstration surface, not a SQL implementation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.core.base import ConfidenceInterval
from repro.core.registry import make_estimator
from repro.db.catalog import Catalog
from repro.db.engine import ExecutionStats, filter_rows, hash_aggregate, seq_scan
from repro.db.exact import exact_distinct_sort
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = ["QueryResult", "execute_sql"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a micro-SQL statement."""

    kind: str  # "distinct" or "groupby"
    value: float | None = None
    interval: ConfidenceInterval | None = None
    estimator: str | None = None
    rows_read: int = 0
    groups: dict | None = None


_DISTINCT_PATTERN = re.compile(
    r"^\s*select\s+count\s*\(\s*distinct\s+(?P<column>\w+)\s*\)\s*"
    r"from\s+(?P<table>\w+)"
    r"(?:\s+sample\s+(?P<percent>\d+(?:\.\d+)?)\s*%)?"
    r"(?:\s+using\s+(?P<estimator>[\w]+))?"
    r"(?:\s+where\s+(?P<wcol>\w+)\s*(?P<wop><=|>=|!=|==?|<|>)\s*(?P<wval>-?\d+(?:\.\d+)?))?"
    r"\s*;?\s*$",
    re.IGNORECASE,
)

_GROUPBY_PATTERN = re.compile(
    r"^\s*select\s+(?P<column>\w+)\s*,\s*count\s*\(\s*\*\s*\)\s*"
    r"from\s+(?P<table>\w+)\s+group\s+by\s+(?P<group>\w+)\s*;?\s*$",
    re.IGNORECASE,
)


def _parse_number(text: str) -> float | int:
    return float(text) if "." in text else int(text)


def _apply_where(relation, table, match, stats):
    if match.group("wcol") is None:
        return relation
    column = f"{table}.{match.group('wcol')}"
    op = match.group("wop")
    if op == "=":
        op = "=="
    return filter_rows(relation, column, op, _parse_number(match.group("wval")), stats)


def execute_sql(
    catalog: Catalog,
    statement: str,
    rng: np.random.Generator | None = None,
) -> QueryResult:
    """Parse and execute one micro-SQL statement against a catalog."""
    distinct = _DISTINCT_PATTERN.match(statement)
    if distinct is not None:
        return _run_distinct(catalog, distinct, rng)
    groupby = _GROUPBY_PATTERN.match(statement)
    if groupby is not None:
        return _run_groupby(catalog, groupby)
    raise InvalidParameterError(
        f"cannot parse statement: {statement!r}; supported forms are "
        "SELECT COUNT(DISTINCT c) FROM t [SAMPLE p%] [USING est] [WHERE c op v] "
        "and SELECT c, COUNT(*) FROM t GROUP BY c"
    )


def _run_distinct(catalog: Catalog, match, rng) -> QueryResult:
    table = catalog.table(match.group("table"))
    column_name = match.group("column")
    stats = ExecutionStats()
    relation = seq_scan(table, stats)
    relation = _apply_where(relation, table.name, match, stats)
    qualified = f"{table.name}.{column_name}"
    if qualified not in relation:
        raise InvalidParameterError(
            f"table {table.name!r} has no column {column_name!r}"
        )
    values = relation[qualified]
    if values.size == 0:
        return QueryResult(kind="distinct", value=0.0, rows_read=0)

    percent = match.group("percent")
    if percent is None:
        # Exact: the traditional scan-and-sort.
        return QueryResult(
            kind="distinct",
            value=float(exact_distinct_sort(values)),
            estimator="exact",
            rows_read=int(values.size),
        )

    fraction = float(percent) / 100.0
    if not 0.0 < fraction <= 100.0:
        raise InvalidParameterError(f"bad sample percentage: {percent}%")
    fraction = min(fraction, 1.0)
    if rng is None:
        raise InvalidParameterError("SAMPLE queries need an rng argument")
    estimator = make_estimator((match.group("estimator") or "GEE"))
    r = min(values.size, max(1, round(fraction * values.size)))
    indices = rng.choice(values.size, size=r, replace=False)
    profile = FrequencyProfile.from_sample(values[indices])
    estimate = estimator.estimate(profile, values.size)
    return QueryResult(
        kind="distinct",
        value=estimate.value,
        interval=estimate.interval,
        estimator=estimator.name,
        rows_read=r,
    )


def _run_groupby(catalog: Catalog, match) -> QueryResult:
    if match.group("column").lower() != match.group("group").lower():
        raise InvalidParameterError(
            "the selected column must match the GROUP BY column"
        )
    table = catalog.table(match.group("table"))
    stats = ExecutionStats()
    relation = seq_scan(table, stats)
    qualified = f"{table.name}.{match.group('column')}"
    if qualified not in relation:
        raise InvalidParameterError(
            f"table {table.name!r} has no column {match.group('column')!r}"
        )
    aggregated = hash_aggregate(relation, qualified, stats)
    groups = dict(
        zip(aggregated[qualified].tolist(), aggregated["count"].tolist())
    )
    return QueryResult(
        kind="groupby",
        groups=groups,
        rows_read=stats.rows_scanned,
        value=float(len(groups)),
    )
