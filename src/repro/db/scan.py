"""One-pass streaming statistics collection.

A statistics collector embedded in a table scan cannot hold the column
in memory; it sees the rows once, in storage order, in chunks.  The
:class:`StreamingAnalyzer` maintains a bounded reservoir (Vitter's
Algorithm R via :class:`~repro.sampling.reservoir_state.ChunkedReservoir`)
so that when the scan finishes it holds a uniform without-replacement
sample — exactly the §2 sampling model — from which any registered
estimator produces the catalog statistics.  Optionally a
probabilistic-counting sketch rides along on the same scan, giving the
near-exact full-scan answer for comparison at a few KiB of extra state.

This is the operational bridge between the paper's model and a real
ANALYZE: the estimator's input is identical whether the sample came
from random probes or from this single sequential pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import DistinctValueEstimator
from repro.core.gee import GEE
from repro.db.catalog import ColumnStatistics
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile
from repro.sampling.reservoir_state import ChunkedReservoir
from repro.sketches.base import DistinctSketch

__all__ = ["StreamingAnalyzer", "analyze_stream"]


class StreamingAnalyzer:
    """Chunk-at-a-time reservoir sampler + estimator + optional sketch.

    Parameters
    ----------
    sample_size:
        Reservoir capacity ``r``.
    rng:
        Randomness source for the reservoir.
    estimator:
        Estimator applied to the final sample (default GEE).
    sketch:
        Optional :class:`~repro.sketches.DistinctSketch` updated with
        every row of the scan.
    """

    def __init__(
        self,
        sample_size: int,
        rng: np.random.Generator,
        estimator: DistinctValueEstimator | None = None,
        sketch: DistinctSketch | None = None,
    ) -> None:
        self.sample_size = int(sample_size)
        self.estimator = estimator if estimator is not None else GEE()
        self.sketch = sketch
        self._reservoir = ChunkedReservoir(sample_size, rng)
        self._finished = False

    @property
    def rows_seen(self) -> int:
        """Rows consumed so far."""
        return self._reservoir.rows_seen

    def consume(self, chunk) -> None:
        """Feed the next chunk of rows (in scan order)."""
        if self._finished:
            raise InvalidParameterError("analyzer already finished")
        data = np.asarray(chunk)
        if data.ndim == 1 and data.size and self.sketch is not None:
            self.sketch.add(data)
        self._reservoir.consume(data)

    def profile(self) -> FrequencyProfile:
        """Frequency profile of the current reservoir."""
        return self._reservoir.profile()

    def finish(self, table: str, column: str) -> ColumnStatistics:
        """Close the scan and produce catalog statistics."""
        profile = self.profile()  # raises if nothing was consumed
        self._finished = True
        estimate = self.estimator.estimate(profile, self.rows_seen)
        return ColumnStatistics(
            table=table,
            column=column,
            n_rows=self.rows_seen,
            distinct_estimate=estimate.value,
            sample_size=profile.sample_size,
            estimator=self.estimator.name,
            interval=estimate.interval,
        )


def analyze_stream(
    chunks,
    sample_size: int,
    rng: np.random.Generator,
    table: str = "stream",
    column: str = "values",
    estimator: DistinctValueEstimator | None = None,
    sketch: DistinctSketch | None = None,
) -> ColumnStatistics:
    """Run a :class:`StreamingAnalyzer` over an iterable of chunks."""
    analyzer = StreamingAnalyzer(
        sample_size, rng, estimator=estimator, sketch=sketch
    )
    for chunk in chunks:
        analyzer.consume(chunk)
    return analyzer.finish(table, column)
