"""The mini database substrate: tables, catalog, ANALYZE, exact scans,
and the toy optimizer that consumes distinct-value statistics.

This package plays the role Microsoft SQL Server 7.0 played in the
paper's experiments (DESIGN.md §3): it stores the data, samples it, and
exposes exactly the sample statistics the estimators need — while the
optimizer demonstrates why those statistics matter (§1).
"""

from repro.db.analyze import analyze, analyze_column
from repro.db.catalog import Catalog, ColumnStatistics
from repro.db.composite import (
    composite_upper_bound,
    composite_values,
    correlation_ratio,
    estimate_composite_distinct,
)
from repro.db.engine import (
    ExecutionStats,
    execute_join_plan,
    filter_rows,
    hash_aggregate,
    hash_join,
    run_join_query,
    seq_scan,
    sort_aggregate,
)
from repro.db.exact import exact_distinct_hash, exact_distinct_sort
from repro.db.histogram import EquiDepthHistogram, HistogramBucket
from repro.db.iocost import (
    expected_pages_row_sampling,
    io_cost_summary,
    pages_block_sampling,
    pages_in_table,
)
from repro.db.maintenance import MaintainedStatistics
from repro.db.progressive import (
    ProgressiveResult,
    ProgressiveStage,
    progressive_analyze,
)
from repro.db.scan import StreamingAnalyzer, analyze_stream
from repro.db.selectivity import (
    FilterSpec,
    attach_histogram,
    estimate_filtered_rows,
    estimate_selectivity,
    stored_histogram,
)
from repro.db.sql import QueryResult, execute_sql
from repro.db.storage import load_table, save_table
from repro.db.optimizer import (
    JoinPlan,
    JoinPredicate,
    choose_aggregate_strategy,
    choose_join_order,
    enumerate_left_deep_plans,
    join_cardinality,
)
from repro.db.table import DEFAULT_PAGE_SIZE, Table

__all__ = [
    "analyze",
    "analyze_column",
    "StreamingAnalyzer",
    "analyze_stream",
    "MaintainedStatistics",
    "ProgressiveResult",
    "ProgressiveStage",
    "progressive_analyze",
    "QueryResult",
    "execute_sql",
    "FilterSpec",
    "attach_histogram",
    "estimate_filtered_rows",
    "estimate_selectivity",
    "stored_histogram",
    "Catalog",
    "ColumnStatistics",
    "composite_upper_bound",
    "composite_values",
    "correlation_ratio",
    "estimate_composite_distinct",
    "ExecutionStats",
    "execute_join_plan",
    "filter_rows",
    "hash_aggregate",
    "hash_join",
    "run_join_query",
    "seq_scan",
    "sort_aggregate",
    "exact_distinct_hash",
    "EquiDepthHistogram",
    "HistogramBucket",
    "expected_pages_row_sampling",
    "io_cost_summary",
    "pages_block_sampling",
    "pages_in_table",
    "exact_distinct_sort",
    "JoinPlan",
    "JoinPredicate",
    "choose_aggregate_strategy",
    "choose_join_order",
    "enumerate_left_deep_plans",
    "join_cardinality",
    "DEFAULT_PAGE_SIZE",
    "Table",
    "load_table",
    "save_table",
]
