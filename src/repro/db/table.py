"""Tables and paged storage — the library's stand-in for SQL Server 7.0.

The paper's experiments stored data in Microsoft SQL Server and used a
modified server that, after gathering a row sample, returned the sample's
distinct count, its ``f_i`` vector, and its skew (§6).  This module
provides the equivalent substrate: a :class:`Table` holds named columns
in columnar numpy storage, logically divided into fixed-size *pages* so
that page-level sampling and scan costing are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.column import Column
from repro.data.surrogates import Dataset
from repro.errors import CatalogError, InvalidParameterError

__all__ = ["Table", "DEFAULT_PAGE_SIZE"]

#: Rows per page; 8 KiB pages of ~80-byte rows, roughly SQL Server 7.0.
DEFAULT_PAGE_SIZE = 100


@dataclass
class Table:
    """A named table with columnar storage and logical pages.

    Parameters
    ----------
    name:
        Table name (catalog key).
    columns:
        Mapping of column name to 1-D numpy array; all arrays must have
        equal length.
    page_size:
        Rows per logical page (used by page sampling and scan costing).
    """

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise InvalidParameterError(
                f"page_size must be >= 1, got {self.page_size}"
            )
        lengths = {name: np.asarray(col).shape for name, col in self.columns.items()}
        self.columns = {name: np.asarray(col) for name, col in self.columns.items()}
        for name, column in self.columns.items():
            if column.ndim != 1:
                raise InvalidParameterError(
                    f"column {name!r} must be 1-D, got shape {lengths[name]}"
                )
        sizes = {column.size for column in self.columns.values()}
        if len(sizes) > 1:
            raise InvalidParameterError(
                f"columns of table {self.name!r} have unequal lengths: "
                f"{ {k: v.size for k, v in self.columns.items()} }"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: Dataset, page_size: int = DEFAULT_PAGE_SIZE) -> "Table":
        """Build a table from a :class:`~repro.data.Dataset` of columns."""
        return cls(
            name=dataset.name,
            columns={column.name: column.values for column in dataset},
            page_size=page_size,
        )

    @classmethod
    def from_columns(
        cls, name: str, columns: list[Column], page_size: int = DEFAULT_PAGE_SIZE
    ) -> "Table":
        """Build a table from :class:`~repro.data.Column` objects."""
        return cls(
            name=name,
            columns={column.name: column.values for column in columns},
            page_size=page_size,
        )

    # ------------------------------------------------------------------
    # Persistence (see repro.db.storage for the on-disk layout)
    # ------------------------------------------------------------------
    def save(self, directory) -> Path:
        """Persist to a directory of ``.npy`` columns plus a manifest."""
        from repro.db.storage import save_table

        return save_table(self, directory)

    @classmethod
    def load(cls, directory, mmap: bool = True) -> "Table":
        """Open a saved table; columns are read-only memmap views by default."""
        from repro.db.storage import load_table

        return load_table(directory, mmap=mmap)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).size)

    @property
    def n_pages(self) -> int:
        """Number of logical pages (ceil of rows / page_size)."""
        return -(-self.n_rows // self.page_size)

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """The raw values of a column, raising :class:`CatalogError` if missing."""
        try:
            return self.columns[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns: {', '.join(self.columns) or '(none)'}"
            ) from None

    def page(self, column_name: str, page_number: int) -> np.ndarray:
        """Rows of one column on one logical page."""
        if not 0 <= page_number < self.n_pages:
            raise InvalidParameterError(
                f"page {page_number} out of range [0, {self.n_pages})"
            )
        start = page_number * self.page_size
        return self.column(column_name)[start : start + self.page_size]

    def __contains__(self, column_name: str) -> bool:
        return column_name in self.columns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table(name={self.name!r}, n_rows={self.n_rows}, "
            f"columns={self.column_names})"
        )
