"""The system catalog: where distinct-value statistics live.

A query optimizer never re-estimates statistics per query; it reads them
from a catalog populated by an ANALYZE-style command.  This module
models that flow: :class:`Catalog` registers tables and stores one
:class:`ColumnStatistics` per analyzed column, including the estimate's
confidence interval when the estimator provides one (the paper argues
"such measures of confidence should be required of all estimators", §1.2).

Statistics survive restarts: :meth:`Catalog.save_statistics` /
:meth:`Catalog.load_statistics` round-trip them through JSON, and
:meth:`Catalog.staleness` reports how far a table has drifted since its
statistics were collected — the signal a real system uses to schedule
re-ANALYZE.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.base import ConfidenceInterval
from repro.db.table import Table
from repro.errors import CatalogError
from repro.resilience import atomic_write

__all__ = ["ColumnStatistics", "Catalog"]


@dataclass(frozen=True)
class ColumnStatistics:
    """Distinct-value statistics for one column of one table."""

    table: str
    column: str
    n_rows: int
    distinct_estimate: float
    sample_size: int
    estimator: str
    interval: ConfidenceInterval | None = None

    @property
    def sampling_fraction(self) -> float:
        return self.sample_size / self.n_rows if self.n_rows else 0.0

    @property
    def density(self) -> float:
        """Average rows per distinct value (the optimizer's selectivity basis)."""
        if self.distinct_estimate <= 0:
            return float(self.n_rows)
        return self.n_rows / self.distinct_estimate


@dataclass
class Catalog:
    """Registry of tables and their column statistics."""

    tables: dict[str, Table] = field(default_factory=dict)
    statistics: dict[tuple[str, str], ColumnStatistics] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def register(self, table: Table) -> None:
        """Register (or replace) a table."""
        self.tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a registered table by name."""
        try:
            return self.tables[name]
        except KeyError:
            known = ", ".join(sorted(self.tables)) or "(none)"
            raise CatalogError(
                f"unknown table {name!r}; registered tables: {known}"
            ) from None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def put_statistics(self, stats: ColumnStatistics) -> None:
        """Store statistics for ``(stats.table, stats.column)``."""
        if stats.table not in self.tables:
            raise CatalogError(
                f"cannot store statistics for unregistered table {stats.table!r}"
            )
        if stats.column not in self.tables[stats.table]:
            raise CatalogError(
                f"table {stats.table!r} has no column {stats.column!r}"
            )
        self.statistics[(stats.table, stats.column)] = stats

    def column_statistics(self, table: str, column: str) -> ColumnStatistics:
        """The stored statistics for one column (CatalogError if absent)."""
        try:
            return self.statistics[(table, column)]
        except KeyError:
            raise CatalogError(
                f"no statistics for {table}.{column}; run analyze() first"
            ) from None

    def has_statistics(self, table: str, column: str) -> bool:
        """Whether statistics have been stored for the column."""
        return (table, column) in self.statistics

    def distinct_count(self, table: str, column: str) -> float:
        """Shorthand for the stored distinct-value estimate."""
        return self.column_statistics(table, column).distinct_estimate

    def staleness(self, table: str, column: str) -> float:
        """Relative row-count drift since the statistics were collected.

        ``|n_now - n_at_analyze| / n_at_analyze``; 0.0 means fresh.
        Systems typically re-ANALYZE past some threshold (e.g. 0.2).
        """
        stats = self.column_statistics(table, column)
        current = self.table(table).n_rows
        if stats.n_rows <= 0:
            return float("inf")
        return abs(current - stats.n_rows) / stats.n_rows

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_statistics(self, path) -> None:
        """Write all stored statistics to a JSON file (atomically)."""
        records = []
        for stats in self.statistics.values():
            record = {
                "table": stats.table,
                "column": stats.column,
                "n_rows": stats.n_rows,
                "distinct_estimate": stats.distinct_estimate,
                "sample_size": stats.sample_size,
                "estimator": stats.estimator,
            }
            if stats.interval is not None:
                record["interval"] = [stats.interval.lower, stats.interval.upper]
            records.append(record)
        atomic_write(Path(path), json.dumps(records, indent=1))

    def load_statistics(self, path, strict: bool = True) -> int:
        """Load statistics from JSON written by :meth:`save_statistics`.

        Records referencing unregistered tables/columns raise
        :class:`CatalogError` when ``strict`` (default) and are skipped
        otherwise.  Returns the number of records stored.
        """
        file_path = Path(path)
        if not file_path.exists():
            raise CatalogError(f"no such statistics file: {path}")
        try:
            records = json.loads(file_path.read_text())
        except json.JSONDecodeError as error:
            raise CatalogError(f"malformed statistics file {path}: {error}") from None
        loaded = 0
        for record in records:
            interval = record.get("interval")
            stats = ColumnStatistics(
                table=record["table"],
                column=record["column"],
                n_rows=int(record["n_rows"]),
                distinct_estimate=float(record["distinct_estimate"]),
                sample_size=int(record["sample_size"]),
                estimator=str(record["estimator"]),
                interval=(
                    ConfidenceInterval(float(interval[0]), float(interval[1]))
                    if interval is not None
                    else None
                ),
            )
            try:
                self.put_statistics(stats)
            except CatalogError:
                if strict:
                    raise
                continue
            loaded += 1
        return loaded

    def __len__(self) -> int:
        return len(self.tables)
