"""I/O cost model for sampling designs.

Estimation error is only half the story of the paper's "low sampling"
desideratum — the other half is what a sample *costs* to read.  Disks
serve pages, not rows, so a uniform row sample of ``r`` rows touches

    ``E[pages] = P * (1 - (1 - 1/P)^r)``

of the table's ``P`` pages (each row lands on a uniform page) — the
coupon-collector effect that makes row sampling surprisingly expensive:
at 100 rows/page, a 1% row sample touches ~63% of the pages.  Block
sampling reads exactly ``ceil(r / page_size)`` pages but biases the
sample on clustered layouts (see the sampling-design ablation); a full
scan reads all ``P``.

These functions quantify the three options so the trade-off the paper
implies — and Olken's thesis develops — can be *computed*, not argued.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError

__all__ = [
    "pages_in_table",
    "expected_pages_row_sampling",
    "pages_block_sampling",
    "io_cost_summary",
]


def _validate(n_rows: int, page_size: int) -> None:
    if n_rows < 1:
        raise InvalidParameterError(f"n_rows must be >= 1, got {n_rows}")
    if page_size < 1:
        raise InvalidParameterError(f"page_size must be >= 1, got {page_size}")


def pages_in_table(n_rows: int, page_size: int) -> int:
    """Total pages, ``ceil(n / page_size)``."""
    _validate(n_rows, page_size)
    return -(-n_rows // page_size)


def expected_pages_row_sampling(
    n_rows: int, sample_size: int, page_size: int
) -> float:
    """Expected distinct pages touched by a uniform row sample.

    Uses the with-replacement approximation ``P (1 - (1 - 1/P)^r)``,
    which upper-bounds the without-replacement count by a hair and is
    exact in the regime that matters (``r << n``).
    """
    _validate(n_rows, page_size)
    if not 1 <= sample_size <= n_rows:
        raise InvalidParameterError(
            f"sample size must be in [1, n], got {sample_size}"
        )
    pages = pages_in_table(n_rows, page_size)
    if pages == 1:
        return 1.0
    return pages * -math.expm1(sample_size * math.log1p(-1.0 / pages))


def pages_block_sampling(n_rows: int, sample_size: int, page_size: int) -> int:
    """Pages read by block sampling: ``ceil(r / page_size)``."""
    _validate(n_rows, page_size)
    if not 1 <= sample_size <= n_rows:
        raise InvalidParameterError(
            f"sample size must be in [1, n], got {sample_size}"
        )
    return -(-sample_size // page_size)


def io_cost_summary(
    n_rows: int, sample_size: int, page_size: int = 100
) -> dict[str, float]:
    """Pages read by each strategy, plus their fraction of a full scan."""
    total = pages_in_table(n_rows, page_size)
    row = expected_pages_row_sampling(n_rows, sample_size, page_size)
    block = pages_block_sampling(n_rows, sample_size, page_size)
    return {
        "total_pages": float(total),
        "row_sampling_pages": row,
        "row_sampling_fraction": row / total,
        "block_sampling_pages": float(block),
        "block_sampling_fraction": block / total,
        "full_scan_pages": float(total),
    }
