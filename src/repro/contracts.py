"""Checkable numeric contracts: ``@requires`` / ``@ensures``.

The paper's theorems come with explicit preconditions — Theorem 2's
ratio-error bound for GEE assumes ``1 <= r <= n``, the jackknifes need a
non-empty sample, Shlosser's estimator a positive population — and the
estimator entry points now carry them as machine-readable clauses::

    @requires("r >= 1", "r <= n")
    @ensures("result >= d")
    def estimate(...): ...

Each clause is a Python expression over the function's parameters
(attribute chains like ``column.size`` and, for ``@ensures``, the name
``result`` — or ``result[i]`` for tuple returns).  The clauses serve two
consumers:

* **statically**, reprolint's dataflow engine
  (:mod:`repro.analysis.dataflow`) parses the same strings into its
  interval domain: ``@requires`` seeds parameter facts, ``@ensures`` is
  assumed at call sites and verified at every return — ``proved``
  clauses cost nothing at runtime, unprovable ones are the documented
  residue the runtime checks cover;
* **at runtime**, the clauses compile into optional asserts.  They are
  **off by default** (zero overhead beyond one flag check) and enabled
  under ``REPRO_CONTRACTS=1`` — which the test suite and CI set — or via
  :func:`set_runtime_checks`.

Metadata is always attached (``__repro_contracts__``), so coverage gates
can verify every public estimator carries a contract without enabling
checks.
"""

from __future__ import annotations

import ast
import builtins
import functools
import inspect
import math
import os
from types import CodeType
from typing import Any, Callable, TypeVar

from repro.errors import InvalidParameterError

__all__ = [
    "ContractViolationError",
    "check_contracts",
    "contract_clauses",
    "ensures",
    "requires",
    "runtime_checks_enabled",
    "set_runtime_checks",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Environment switch; any value other than empty/0/false/off enables checks.
ENV_FLAG = "REPRO_CONTRACTS"

_DISABLED_VALUES = frozenset({"", "0", "false", "False", "off", "no"})

#: Names clauses may use beyond the function's own parameters.  Clauses
#: are trusted in-repo strings (they live in decorators next to the code
#: they describe), so they get real builtins — numpy ufuncs and reductions
#: need them.
_CLAUSE_GLOBALS: dict[str, Any] = {
    "__builtins__": builtins,
    "math": math,
}

_NON_PARAMETER_NAMES = frozenset({"math"}) | frozenset(dir(builtins))

_FORCED: bool | None = None


class ContractViolationError(AssertionError):
    """A ``@requires``/``@ensures`` clause evaluated false at runtime."""


def runtime_checks_enabled() -> bool:
    """True when contract clauses are being evaluated on each call."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(ENV_FLAG, "") not in _DISABLED_VALUES


def set_runtime_checks(enabled: bool | None) -> None:
    """Force runtime checking on/off; ``None`` defers to ``REPRO_CONTRACTS``."""
    global _FORCED
    _FORCED = enabled


def contract_clauses(func: Callable[..., Any]) -> dict[str, list[str]]:
    """The declared clause strings of a contracted callable.

    Returns ``{"requires": [...], "ensures": [...]}`` — empty lists when
    the callable carries no contract.  Follows ``__wrapped__`` chains so
    it works on further-decorated functions.
    """
    current: Any = func
    while current is not None:
        meta = getattr(current, "__repro_contracts__", None)
        if meta is not None:
            return {
                "requires": [text for text, _code in meta["requires"]],
                "ensures": [text for text, _code in meta["ensures"]],
            }
        current = getattr(current, "__wrapped__", None)
    return {"requires": [], "ensures": []}


def _contract_meta(
    func: Callable[..., Any],
) -> dict[str, list[tuple[str, CodeType]]] | None:
    current: Any = func
    while current is not None:
        meta = getattr(current, "__repro_contracts__", None)
        if meta is not None:
            return meta  # type: ignore[no-any-return]
        current = getattr(current, "__wrapped__", None)
    return None


def check_contracts(
    func: Callable[..., Any], namespace: dict[str, Any], kind: str = "ensures"
) -> None:
    """Evaluate a contracted callable's clauses against an explicit namespace.

    Batched evaluation paths (``estimate_batch``) compute many results in
    one call but must enforce the *same* per-result contracts the scalar
    path does; this helper re-runs a function's compiled ``requires`` or
    ``ensures`` clauses with caller-supplied bindings (parameter names,
    plus ``result`` for ``ensures``).  No-op for uncontracted callables.
    Raises :class:`ContractViolationError` exactly as the scalar wrapper
    would.
    """
    if kind not in ("requires", "ensures"):
        raise InvalidParameterError(
            f"kind must be 'requires' or 'ensures', got {kind!r}"
        )
    meta = _contract_meta(func)
    if meta is None:
        return
    for compiled in meta[kind]:
        _check(compiled, namespace, func, kind)


def _compile_clause(clause: str, kind: str) -> tuple[str, CodeType]:
    try:
        tree = ast.parse(clause, mode="eval")
    except SyntaxError as exc:
        raise InvalidParameterError(
            f"invalid @{kind} clause {clause!r}: {exc}"
        ) from exc
    return clause, compile(tree, f"<{kind}: {clause}>", "eval")


def _holds(value: Any) -> bool:
    """Clause truth, tolerating numpy scalars and elementwise arrays."""
    try:
        return bool(value)
    except (TypeError, ValueError):
        reduce_all = getattr(value, "all", None)
        if callable(reduce_all):
            return bool(reduce_all())
        return False


def _check(
    compiled: tuple[str, CodeType],
    namespace: dict[str, Any],
    func: Callable[..., Any],
    kind: str,
) -> None:
    text, code = compiled
    try:
        value = eval(code, _CLAUSE_GLOBALS, namespace)  # noqa: S307 - clauses
    except ContractViolationError:
        raise
    except Exception as exc:
        raise ContractViolationError(
            f"@{kind}({text!r}) on {func.__qualname__} could not be "
            f"evaluated: {exc}"
        ) from exc
    if not _holds(value):
        bindings = ", ".join(
            f"{name}={namespace[name]!r}"
            for name in sorted(_clause_names(text))
            if name in namespace
        )
        raise ContractViolationError(
            f"@{kind}({text!r}) violated on {func.__qualname__}"
            + (f" with {bindings}" if bindings else "")
        )


@functools.lru_cache(maxsize=None)
def _clause_names(clause: str) -> frozenset[str]:
    try:
        tree = ast.parse(clause, mode="eval")
    except SyntaxError:  # pragma: no cover - rejected at decoration time
        return frozenset()
    return frozenset(
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and node.id not in _NON_PARAMETER_NAMES
    )


def _contracted(func: F) -> F:
    """Wrap ``func`` once; stacked contract decorators share the wrapper."""
    if getattr(func, "__repro_contracts_owner__", False):
        return func
    contracts: dict[str, list[tuple[str, CodeType]]] = {
        "requires": [],
        "ensures": [],
    }
    signature = inspect.signature(func)

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if not runtime_checks_enabled():
            return func(*args, **kwargs)
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        namespace = dict(bound.arguments)
        for compiled in contracts["requires"]:
            _check(compiled, namespace, func, "requires")
        result = func(*args, **kwargs)
        namespace["result"] = result
        for compiled in contracts["ensures"]:
            _check(compiled, namespace, func, "ensures")
        return result

    wrapper.__repro_contracts_owner__ = True  # type: ignore[attr-defined]
    wrapper.__repro_contracts__ = contracts  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]


def _add_clauses(kind: str, clauses: tuple[str, ...]) -> Callable[[F], F]:
    if not clauses:
        raise InvalidParameterError(f"@{kind} needs at least one clause")
    compiled = [_compile_clause(clause, kind) for clause in clauses]

    def decorate(func: F) -> F:
        wrapped = _contracted(func)
        meta: dict[str, list[tuple[str, CodeType]]] = (
            wrapped.__repro_contracts__  # type: ignore[attr-defined]
        )
        meta[kind].extend(compiled)
        return wrapped

    return decorate


def requires(*clauses: str) -> Callable[[F], F]:
    """Declare preconditions over the decorated function's parameters."""
    return _add_clauses("requires", clauses)


def ensures(*clauses: str) -> Callable[[F], F]:
    """Declare postconditions; ``result`` names the return value."""
    return _add_clauses("ensures", clauses)
