"""repro — a reproduction of "Towards Estimation Error Guarantees for
Distinct Values" (Charikar, Chaudhuri, Motwani, Narasayya; PODS 2000).

Quickstart::

    import numpy as np
    from repro import GEE, AE, zipf_column
    from repro.sampling import UniformWithoutReplacement

    rng = np.random.default_rng(0)
    column = zipf_column(n_rows=1_000_000, z=1.0, duplication=10, rng=rng)
    profile = UniformWithoutReplacement().profile(column.values, rng, fraction=0.01)
    print(GEE().estimate(profile, column.n_rows))
    print(AE().estimate(profile, column.n_rows))
    print("truth:", column.distinct_count)

The package layout follows the paper:

* :mod:`repro.core`        — GEE, AE, HYBGEE, Theorem 1 (the contribution);
* :mod:`repro.estimators`  — the prior-art baselines (§1.1, §6);
* :mod:`repro.frequency`   — frequency profiles and sample statistics (§2);
* :mod:`repro.sampling`    — row-sampling schemes (§2);
* :mod:`repro.data`        — Zipfian synthetics and real-data surrogates (§6);
* :mod:`repro.db`          — the mini database substrate (ANALYZE, catalog,
  optimizer) playing SQL Server's role;
* :mod:`repro.sketches`    — full-scan probabilistic counting comparators;
* :mod:`repro.experiments` — the harness regenerating every table/figure.
"""

import logging as _logging

from repro._version import __version__
from repro.core import (
    AE,
    GEE,
    PAPER_ESTIMATORS,
    ConfidenceInterval,
    DistinctValueEstimator,
    Estimate,
    HybridGEE,
    adversarial_pair,
    available_estimators,
    gee_interval,
    lower_bound_error,
    make_estimator,
    make_estimators,
    ratio_error,
)
from repro.data import (
    Column,
    Dataset,
    census,
    covertype,
    mssales,
    zipf_column,
)
from repro.errors import (
    CatalogError,
    DataGenerationError,
    EstimationError,
    InvalidParameterError,
    InvalidSampleError,
    ReproError,
    SolverError,
)
from repro.frequency import FrequencyProfile

# Library logging policy (rule R801): the package logger stays silent
# unless an application attaches a handler; the CLI attaches one in
# ``repro.cli.main`` driven by ``--log-level``/``-v``.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__all__ = [
    "__version__",
    "AE",
    "GEE",
    "HybridGEE",
    "PAPER_ESTIMATORS",
    "ConfidenceInterval",
    "DistinctValueEstimator",
    "Estimate",
    "adversarial_pair",
    "available_estimators",
    "gee_interval",
    "lower_bound_error",
    "make_estimator",
    "make_estimators",
    "ratio_error",
    "Column",
    "Dataset",
    "census",
    "covertype",
    "mssales",
    "zipf_column",
    "FrequencyProfile",
    "ReproError",
    "InvalidParameterError",
    "InvalidSampleError",
    "EstimationError",
    "SolverError",
    "CatalogError",
    "DataGenerationError",
]
