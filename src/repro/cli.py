"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-estimators``
    Show every registered estimator name.
``generate``
    Write a synthetic Zipfian column (the §6 generator) to a ``.npy``
    or text file.
``estimate``
    Sample a column from a file and print one or more estimators'
    distinct-count estimates (with GEE-family confidence intervals).
``exhibit``
    Regenerate one of the paper's tables/figures (``fig1`` ... ``fig16``,
    ``table1``, ``table2``, ``theorem1``) and print or CSV-export it.
``bound``
    Evaluate the Theorem 1 lower bound, or invert it: how many rows must
    be examined to permit a target accuracy.
``plan``
    Bracket the sample size for a target error: Theorem 1's necessary
    rows vs GEE's Theorem 2 sufficient rows.
``report``
    Regenerate every paper exhibit into a directory (rendered text plus
    one CSV per exhibit).
``sweep``
    Run one exhibit as a crash-safe supervised sweep: every completed
    grid point is checkpointed to a journal, so a killed run can be
    resumed with ``--resume`` and produces the byte-identical CSV the
    uninterrupted run would have (see ``docs/robustness.md``).
``sql``
    Run a micro-SQL statement (``SELECT COUNT(DISTINCT c) FROM t
    [SAMPLE p%] [USING est] [WHERE ...]``) against CSV tables loaded
    with ``--load name=path``.
``lint``
    Run reprolint, the project's static analyzer, over source paths
    (default ``src``); exits nonzero when findings remain.
``trace``
    Render the span tree of a telemetry run (``REPRO_TELEMETRY=1``
    JSONL) with total/self times per span; ``--chrome out.json``
    exports Chrome trace-event JSON (Perfetto / ``about:tracing``)
    and ``--flame [out.folded]`` exports folded flamegraph stacks.
``stats``
    Show the counters, gauges, histogram quantiles (p50/p90/p95/p99),
    span aggregates, and manifest of a telemetry run.
``perfdiff``
    Diff two perf reports (``BENCH_perf.json``) or telemetry runs and
    exit nonzero on regressions past ``--threshold``; ``--gate`` runs
    the kernel-speedup floor check CI uses against
    ``BENCH_perf.baseline.json``.

Global flags: ``--log-level {debug,info,warning,error}`` (or ``-v`` /
``-vv``) control the ``repro`` package logger; any command run with
``REPRO_TELEMETRY=1`` flushes its recorded run to the telemetry
directory (``REPRO_TELEMETRY_DIR``, default ``telemetry/``) on success.

Examples
--------
::

    python -m repro generate --rows 1000000 --z 1 --duplication 10 --out col.npy
    python -m repro estimate col.npy --fraction 0.01 --estimator GEE AE
    python -m repro exhibit fig2
    python -m repro bound --rows 1000000 --target-error 2
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from pathlib import Path

import numpy as np

from repro.core import (
    available_estimators,
    lower_bound_error,
    make_estimator,
    minimum_sample_size_for_error,
)
from repro.data import zipf_column
from repro.errors import InvalidParameterError, ReproError, SweepGapError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.sampling import UniformWithoutReplacement

__all__ = ["main", "build_parser"]

_log = logging.getLogger("repro.cli")

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _configure_logging(level_name: str, verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` package logger.

    Library modules log to the package logger, which carries only a
    ``NullHandler`` (rule R801 keeps ``print`` out of library code); the
    CLI is where diagnostics become visible.  The handler is recreated
    on every ``main()`` call so it follows ``sys.stderr`` redirection
    (e.g. pytest's capsys), and ``-v``/``-vv`` can only lower the
    threshold set by ``--log-level``.
    """
    level = getattr(logging, level_name.upper())
    if verbosity >= 2:
        level = min(level, logging.DEBUG)
    elif verbosity == 1:
        level = min(level, logging.INFO)
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    setattr(handler, "_repro_cli", True)
    logger.addHandler(handler)
    logger.setLevel(level)


def _finalize_telemetry(args: argparse.Namespace) -> None:
    """Flush a ``REPRO_TELEMETRY=1`` run to the telemetry directory.

    Writes ``<command>.jsonl`` (manifest embedded as the first record)
    plus a standalone ``<command>.manifest.json`` next to it; a no-op
    when recording is off or nothing was recorded.  Histogram summaries
    (count + p50/p90/p95/p99 per name) land in the manifest's ``extra``
    under ``quantiles``.
    """
    from repro.obs import OBS, build_manifest, telemetry_dir, write_manifest

    if not OBS.enabled or OBS.is_empty:
        return
    command = args.command or "run"
    extra = dict(getattr(args, "_telemetry_extra", None) or {})
    quantiles = {
        name: histogram.summary()
        for name, histogram in OBS.histograms().items()
        if histogram.count
    }
    if quantiles:
        extra["quantiles"] = quantiles
    manifest = build_manifest(
        seed=getattr(args, "seed", None),
        command=command,
        extra=extra or None,
    )
    out_dir = telemetry_dir()
    run_path = OBS.write_run(out_dir / f"{command}.jsonl", manifest=manifest)
    write_manifest(out_dir / f"{command}.manifest.json", manifest)
    _log.info("telemetry run written to %s", run_path)


def _load_column(path: str, csv_column: str | None = None) -> np.ndarray:
    """Load a column from ``.npy``, ``.csv`` (with --column), or text."""
    from repro.data.io import load_column

    return load_column(path, column=csv_column).values


# -- argument validation ------------------------------------------------
# argparse only checks types; value ranges are checked here so a bad
# ``--rows -5`` exits 2 with one logged line instead of a numpy traceback
# from deep inside a generator.


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidParameterError(message)


def _validate_seed(seed: int) -> None:
    _require(seed >= 0, f"--seed must be >= 0, got {seed}")


def _validate_gamma(gamma: float) -> None:
    _require(0.0 < gamma < 1.0, f"--gamma must be in (0, 1), got {gamma:g}")


def _cmd_list_estimators(_args: argparse.Namespace) -> int:
    for name in available_estimators():
        print(name)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.io import save_column

    _require(args.rows >= 1, f"--rows must be >= 1, got {args.rows}")
    _require(args.z >= 0, f"--z must be >= 0, got {args.z:g}")
    _require(
        args.duplication >= 1, f"--duplication must be >= 1, got {args.duplication}"
    )
    _validate_seed(args.seed)
    rng = np.random.default_rng(args.seed)
    column = zipf_column(
        args.rows, z=args.z, duplication=args.duplication, rng=rng
    )
    save_column(column.values, args.out)
    print(
        f"wrote {column.n_rows:,} rows, {column.distinct_count:,} distinct "
        f"values to {args.out}"
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    _require(
        0.0 < args.fraction <= 1.0,
        f"--fraction must be in (0, 1], got {args.fraction:g}",
    )
    _validate_seed(args.seed)
    values = _load_column(args.column, csv_column=args.csv_column)
    rng = np.random.default_rng(args.seed)
    sampler = UniformWithoutReplacement()
    profile = sampler.profile(values, rng, fraction=args.fraction)
    n = values.size
    print(
        f"n={n:,} rows, sampled r={profile.sample_size:,} "
        f"(d={profile.distinct:,}, f1={profile.f1:,})"
    )
    for name in args.estimator:
        result = make_estimator(name).estimate(profile, n)
        line = f"{name:>12}: {result.value:,.0f}"
        if result.interval is not None:
            line += (
                f"   [{result.interval.lower:,.0f}, {result.interval.upper:,.0f}]"
            )
        print(line)
    if args.exact:
        from repro.db import exact_distinct_sort

        print(f"{'exact':>12}: {exact_distinct_sort(values):,} (full scan)")
    return 0


def _cmd_exhibit(args: argparse.Namespace) -> int:
    _validate_seed(args.seed)
    table = run_experiment(args.id, seed=args.seed)
    if args.csv:
        table.write_csv(args.csv)
        print(f"wrote {args.csv}")
    else:
        print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import config
    from repro.experiments.executor import sweep_context
    from repro.resilience import RetryPolicy

    _validate_seed(args.seed)
    _require(args.retries >= 0, f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None:
        _require(args.timeout > 0, f"--timeout must be positive, got {args.timeout:g}")
    # Resumable sweeps need worker-count-invariant per-point streams; the
    # legacy protocol threads one generator through the whole sweep and
    # cannot skip completed points bit-identically.
    if config.seed_mode() == "legacy":
        raise InvalidParameterError(
            "repro sweep requires spawned seeding; unset REPRO_SEED_MODE=legacy"
        )
    os.environ["REPRO_SEED_MODE"] = "spawn"
    journal_path = Path(args.journal or f"sweeps/{args.id}.journal.jsonl")
    policy = RetryPolicy(retries=args.retries, timeout=args.timeout)
    args._telemetry_extra = {
        "exhibit": args.id,
        "journal": str(journal_path),
        "resumed": bool(args.resume),
    }
    try:
        with sweep_context(journal=journal_path, resume=args.resume, policy=policy):
            table = run_experiment(args.id, seed=args.seed)
    except SweepGapError as error:
        _log.error("sweep incomplete: %s", error)
        _log.error(
            "completed points remain journaled in %s; re-run with --resume "
            "to fill only the gaps",
            journal_path,
        )
        return 1
    if args.csv:
        table.write_csv(args.csv)
        print(f"wrote {args.csv}")
    else:
        print(table.render())
    if not args.keep_journal:
        journal_path.unlink(missing_ok=True)
        _log.info("sweep complete; removed journal %s", journal_path)
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    _require(args.rows >= 1, f"--rows must be >= 1, got {args.rows}")
    _validate_gamma(args.gamma)
    if args.sample_size is not None:
        _require(
            1 <= args.sample_size <= args.rows,
            f"--sample-size must be in [1, --rows], got {args.sample_size}",
        )
    if args.target_error is not None:
        _require(
            args.target_error >= 1.0,
            f"--target-error is a ratio error >= 1, got {args.target_error:g}",
        )
        needed = minimum_sample_size_for_error(
            args.rows, args.target_error, gamma=args.gamma
        )
        print(
            f"guaranteeing ratio error <= {args.target_error:g} with "
            f"confidence {1 - args.gamma:.0%} requires examining at least "
            f"{needed:,} of {args.rows:,} rows ({needed / args.rows:.2%})"
        )
        return 0
    if args.sample_size is None:
        raise ReproError("provide --sample-size or --target-error")
    floor = lower_bound_error(args.rows, args.sample_size, gamma=args.gamma)
    print(
        f"examining {args.sample_size:,} of {args.rows:,} rows: no estimator "
        f"can guarantee ratio error below {floor:.3f} "
        f"(with probability {args.gamma:g})"
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import plan_sample_size

    _require(args.rows >= 1, f"--rows must be >= 1, got {args.rows}")
    _require(
        args.target_error >= 1.0,
        f"--target-error is a ratio error >= 1, got {args.target_error:g}",
    )
    _validate_gamma(args.gamma)
    plan = plan_sample_size(args.rows, args.target_error, gamma=args.gamma)
    print(
        f"target ratio error {plan.target_error:g} on a {plan.population_size:,}-row "
        f"column (confidence {1 - plan.gamma:.0%}):"
    )
    print(
        f"  necessary (Theorem 1) : {plan.necessary_rows:>12,} rows "
        f"({plan.necessary_fraction:.2%}) — below this, no estimator can"
    )
    print(
        f"  sufficient (GEE)      : {plan.sufficient_rows:>12,} rows "
        f"({plan.sufficient_fraction:.2%}) — at this, GEE guarantees it"
    )
    if plan.full_scan_needed:
        print("  note: the sufficient bound is a full scan for this target")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.resilience import atomic_write

    _validate_seed(args.seed)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    exhibits = args.only if args.only else sorted(EXPERIMENTS)
    summary_lines = []
    for exhibit_id in exhibits:
        table = run_experiment(exhibit_id, seed=args.seed)
        table.write_csv(out_dir / f"{exhibit_id}.csv")
        rendered = table.render()
        atomic_write(out_dir / f"{exhibit_id}.txt", rendered)
        summary_lines.append(f"### {exhibit_id}\n{rendered}")
        print(f"wrote {exhibit_id} ({table.title})")
    atomic_write(out_dir / "REPORT.txt", "\n".join(summary_lines))
    from repro.obs import build_manifest, write_manifest

    write_manifest(
        out_dir / "manifest.json",
        build_manifest(seed=args.seed, command="report", extra={"exhibits": exhibits}),
    )
    print(f"report written to {out_dir}/")
    return 0


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.data.io import load_csv_table
    from repro.db import Catalog, Table
    from repro.db.sql import execute_sql

    catalog = Catalog()
    for spec in args.load:
        if "=" not in spec:
            raise ReproError(f"--load expects name=path, got {spec!r}")
        table_name, path = spec.split("=", 1)
        catalog.register(Table(name=table_name, columns=load_csv_table(path)))
    rng = np.random.default_rng(args.seed)
    result = execute_sql(catalog, args.statement, rng)
    if result.kind == "groupby":
        for group, count in sorted(result.groups.items()):
            print(f"{group}\t{count}")
        print(f"({len(result.groups)} groups)")
        return 0
    line = f"{result.value:,.0f}"
    if result.estimator and result.estimator != "exact":
        line += f"   (estimated by {result.estimator} from {result.rows_read:,} rows"
        if result.interval is not None:
            line += (
                f"; interval [{result.interval.lower:,.0f}, "
                f"{result.interval.upper:,.0f}]"
            )
        line += ")"
    else:
        line += f"   (exact, {result.rows_read:,} rows scanned)"
    print(line)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        all_rules,
        lint_paths,
        load_baseline,
        render_json,
        render_prove,
        render_sarif,
        render_text,
    )
    from repro.analysis.baseline import write_baseline
    from repro.analysis.explain import explain_all, explain_rule
    from repro.analysis.rules.suppressions import STALE_SUPPRESSION_CODE

    if args.explain:
        if args.explain.lower() == "all":
            print(explain_all())
        else:
            print(explain_rule(args.explain))
        return 0
    if args.list_rules:
        for code, rule_class in all_rules().items():
            print(f"{code}  {rule_class.name:24s} {rule_class.description}")
        return 0
    select = list(args.select) if args.select else None
    if args.stale_pragmas and select and STALE_SUPPRESSION_CODE not in select:
        # --select narrows the run; --stale-pragmas opts R701 back in.
        select.append(STALE_SUPPRESSION_CODE)
    ignore = list(args.ignore) if args.ignore else None
    if args.stale_pragmas and ignore and STALE_SUPPRESSION_CODE in ignore:
        ignore.remove(STALE_SUPPRESSION_CODE)
    baseline = load_baseline(args.baseline) if args.baseline else None
    report = lint_paths(
        args.paths,
        select=select,
        ignore=ignore,
        baseline=baseline,
        prove=args.prove,
    )
    if args.write_baseline:
        entries = write_baseline(args.write_baseline, report)
        print(f"wrote {entries} baseline entr{'y' if entries == 1 else 'ies'} to {args.write_baseline}")
        return 0
    renderers = {"json": render_json, "sarif": render_sarif, "text": render_text}
    print(renderers[args.format](report))
    if args.prove and args.format == "text":
        print()
        print(render_prove(report))
    return report.exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_run, render_trace

    run = load_run(args.run)
    exported = False
    if args.chrome:
        from repro.obs.export import write_chrome_trace

        out = write_chrome_trace(args.chrome, run)
        print(f"wrote Chrome trace to {out}")
        exported = True
    if args.flame is not None:
        from repro.obs.export import folded_stacks, write_folded

        if args.flame == "-":
            sys.stdout.write(folded_stacks(run))
        else:
            out = write_folded(args.flame, run)
            print(f"wrote folded stacks to {out}")
        exported = True
    if not exported:
        print(render_trace(run, min_fraction=args.min_fraction))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import load_run, render_stats

    run = load_run(args.run)
    print(render_stats(run))
    return 0


def _load_json_document(path: str) -> dict:
    source = Path(path)
    if not source.exists():
        raise InvalidParameterError(f"no perf report at {source}")
    try:
        document = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise InvalidParameterError(f"{source}: not JSON ({error.msg})") from None
    if not isinstance(document, dict):
        raise InvalidParameterError(f"{source}: expected a JSON object")
    return document


def _cmd_perfdiff(args: argparse.Namespace) -> int:
    from repro.obs.perfdiff import (
        diff_metrics,
        gate_report,
        load_metrics,
        render_diff,
    )

    if args.gate:
        result = gate_report(
            _load_json_document(args.before),
            _load_json_document(args.after),
            tolerance=args.tolerance,
        )
        print(result.table)
        if result.failures:
            for failure in result.failures:
                _log.error("FAIL %s", failure)
            _log.error(
                "if the change is intentional, refresh the baseline from the "
                "current report (see docs/performance.md)"
            )
            return 1
        return 0
    diff = diff_metrics(
        load_metrics(args.before),
        load_metrics(args.after),
        threshold=args.threshold,
        min_value=args.min_value,
    )
    print(render_diff(diff))
    return 1 if diff.regressions else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distinct-values estimation (PODS 2000 reproduction).",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=_LOG_LEVELS,
        help="threshold for the repro package logger (default: warning)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase log verbosity (-v: info, -vv: debug)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list-estimators", help="show registered estimator names"
    ).set_defaults(func=_cmd_list_estimators)

    generate = sub.add_parser("generate", help="write a synthetic Zipf column")
    generate.add_argument("--rows", type=int, default=1_000_000)
    generate.add_argument("--z", type=float, default=1.0)
    generate.add_argument("--duplication", type=int, default=1)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help=".npy or text path")
    generate.set_defaults(func=_cmd_generate)

    estimate = sub.add_parser("estimate", help="estimate distinct values of a column")
    estimate.add_argument(
        "column", help=".npy, .csv (with --csv-column), or one-value-per-line text"
    )
    estimate.add_argument(
        "--csv-column", help="column name when the input is a CSV file"
    )
    estimate.add_argument("--fraction", type=float, default=0.01)
    estimate.add_argument(
        "--estimator",
        nargs="+",
        default=["GEE", "AE"],
        choices=list(available_estimators()),
    )
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument(
        "--exact", action="store_true", help="also run the exact full scan"
    )
    estimate.set_defaults(func=_cmd_estimate)

    exhibit = sub.add_parser("exhibit", help="regenerate a paper table/figure")
    exhibit.add_argument("id", choices=sorted(EXPERIMENTS))
    exhibit.add_argument("--seed", type=int, default=0)
    exhibit.add_argument("--csv", help="write CSV here instead of printing")
    exhibit.set_defaults(func=_cmd_exhibit)

    sweep = sub.add_parser(
        "sweep",
        help="run an exhibit as a crash-safe, resumable supervised sweep",
    )
    sweep.add_argument("id", choices=sorted(EXPERIMENTS))
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--csv", help="write CSV here instead of printing")
    sweep.add_argument(
        "--journal",
        help="checkpoint journal path (default: sweeps/<id>.journal.jsonl)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip grid points already checkpointed in the journal",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per grid point after a failure (default: 2)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        help="progress timeout in seconds; hung workers are replaced",
    )
    sweep.add_argument(
        "--keep-journal",
        action="store_true",
        help="keep the journal after a fully successful sweep",
    )
    sweep.set_defaults(func=_cmd_sweep)

    bound = sub.add_parser("bound", help="Theorem 1 lower-bound calculator")
    bound.add_argument("--rows", type=int, required=True)
    bound.add_argument("--sample-size", type=int)
    bound.add_argument("--target-error", type=float)
    bound.add_argument("--gamma", type=float, default=0.5)
    bound.set_defaults(func=_cmd_bound)

    plan = sub.add_parser(
        "plan", help="bracket the sample size for a target error"
    )
    plan.add_argument("--rows", type=int, required=True)
    plan.add_argument("--target-error", type=float, required=True)
    plan.add_argument("--gamma", type=float, default=0.5)
    plan.set_defaults(func=_cmd_plan)

    report = sub.add_parser(
        "report", help="regenerate every paper exhibit into a directory"
    )
    report.add_argument("--out", required=True, help="output directory")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--only", nargs="*", choices=sorted(EXPERIMENTS), help="subset of exhibits"
    )
    report.set_defaults(func=_cmd_report)

    sql = sub.add_parser("sql", help="run a micro-SQL statement on CSV tables")
    sql.add_argument("statement", help="the SQL text")
    sql.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register a CSV file as a table (repeatable)",
    )
    sql.add_argument("--seed", type=int, default=0)
    sql.set_defaults(func=_cmd_sql)

    lint = sub.add_parser(
        "lint", help="run reprolint, the project static analyzer"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="format"
    )
    lint.add_argument(
        "--prove",
        action="store_true",
        help="run the interval prover over @requires/@ensures contracts "
        "and print a clause-by-clause verdict table",
    )
    lint.add_argument(
        "--stale-pragmas",
        action="store_true",
        dest="stale_pragmas",
        help="force the stale-suppression rule (R701) on, even under "
        "--select/--ignore",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="CODE",
        help="run only these rule codes (repeatable)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="CODE",
        help="skip these rule codes (repeatable)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", help="absorb findings listed in this baseline"
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as a baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )
    lint.add_argument(
        "--explain",
        metavar="CODE",
        help="print a rule's rationale, example, and fix, then exit "
        "('all' prints every rule)",
    )
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace", help="render the span tree of a telemetry run"
    )
    trace.add_argument("run", help="telemetry JSONL file (from a REPRO_TELEMETRY=1 run)")
    trace.add_argument(
        "--min-fraction",
        type=float,
        default=0.0,
        help="hide spans below this share of their root's time (e.g. 0.01)",
    )
    trace.add_argument(
        "--chrome",
        metavar="OUT",
        help="write Chrome trace-event JSON (Perfetto / about:tracing) here",
    )
    trace.add_argument(
        "--flame",
        nargs="?",
        const="-",
        metavar="OUT",
        help="write folded flamegraph stacks here (stdout if no path given)",
    )
    trace.set_defaults(func=_cmd_trace)

    stats = sub.add_parser(
        "stats",
        help="show counters, gauges, quantiles, and the manifest of a "
        "telemetry run",
    )
    stats.add_argument("run", help="telemetry JSONL file")
    stats.set_defaults(func=_cmd_stats)

    perfdiff = sub.add_parser(
        "perfdiff",
        help="diff two perf reports or telemetry runs; exit 1 on regression",
    )
    perfdiff.add_argument(
        "before", help="baseline BENCH_perf.json or telemetry JSONL"
    )
    perfdiff.add_argument(
        "after", help="candidate BENCH_perf.json or telemetry JSONL"
    )
    perfdiff.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional bad-direction move that counts as a regression "
        "(default: 0.25)",
    )
    perfdiff.add_argument(
        "--min-value",
        type=float,
        default=0.0,
        dest="min_value",
        help="ignore metrics below this absolute value on both sides "
        "(noise floor for smoke-scale micro-timings)",
    )
    perfdiff.add_argument(
        "--gate",
        action="store_true",
        help="kernel-speedup floor mode: BEFORE is the committed baseline, "
        "AFTER the fresh report; every tracked kernel must keep "
        "baseline*(1-tolerance)",
    )
    perfdiff.add_argument(
        "--tolerance",
        type=float,
        help="gate-mode tolerance override (default: the baseline file's "
        "own tolerance field, 0.25 if absent)",
    )
    perfdiff.set_defaults(func=_cmd_perfdiff)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.log_level, args.verbose)
    try:
        code = args.func(args)
    except ReproError as error:
        _log.error("error: %s", error)
        return 2
    if code == 0:
        _finalize_telemetry(args)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
