"""Flajolet–Martin probabilistic counting with stochastic averaging (PCSA).

Reference [12] of the paper.  Each value is hashed; the low bits select
one of ``m`` bitmaps and the rank of the lowest set bit of the remaining
hash is recorded in that bitmap.  With ``R_j`` the position of the
lowest *unset* bit of bitmap ``j``,

    ``D_hat = (m / phi) * 2^{mean_j R_j}``,   ``phi ~ 0.77351``.

Standard error is about ``0.78 / sqrt(m)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sketches.base import DistinctSketch
from repro.sketches.hashing import hash64

__all__ = ["FlajoletMartin"]

#: Flajolet–Martin's bias-correction constant.
_PHI = 0.77351

#: Bits tracked per bitmap (hash width after bucket selection).
_BITMAP_WIDTH = 56


class FlajoletMartin(DistinctSketch):
    """PCSA: ``m`` first-set-bit bitmaps with stochastic averaging.

    Parameters
    ----------
    bitmaps:
        Number of bitmaps ``m`` (a power of two).
    seed:
        Hash seed.
    """

    name = "FM"

    def __init__(self, bitmaps: int = 64, seed: int = 0) -> None:
        if bitmaps < 1 or bitmaps & (bitmaps - 1):
            raise InvalidParameterError(
                f"bitmaps must be a positive power of two, got {bitmaps}"
            )
        self.bitmaps = int(bitmaps)
        self.seed = int(seed)
        self._bucket_bits = self.bitmaps.bit_length() - 1
        self._sketch = np.zeros(self.bitmaps, dtype=np.uint64)

    def add(self, values) -> None:
        hashes = hash64(values, seed=self.seed)
        buckets = (hashes & np.uint64(self.bitmaps - 1)).astype(np.int64)
        payload = hashes >> np.uint64(self._bucket_bits)
        # Rank of the lowest set bit; all-zero payloads (prob 2^-56) get
        # the maximum rank.
        low_bit = payload & (~payload + np.uint64(1))
        # The maximum-clamp only touches the payload == 0 lanes that the
        # where() discards; it keeps np.log2's domain provably positive
        # instead of emitting -inf there (R1302).
        ranks = np.where(
            payload == 0,
            _BITMAP_WIDTH,
            np.log2(np.maximum(low_bit, 1).astype(np.float64)).astype(np.int64),
        )
        ranks = np.minimum(ranks, _BITMAP_WIDTH - 1)
        marks = np.left_shift(np.uint64(1), ranks.astype(np.uint64))
        np.bitwise_or.at(self._sketch, buckets, marks)

    def _lowest_unset_bits(self) -> np.ndarray:
        """Position of the lowest zero bit of each bitmap (vectorized)."""
        inverted = ~self._sketch
        low_zero = inverted & (~inverted + np.uint64(1))
        # A saturated bitmap has no zero bit (low_zero == 0); log2(0)
        # would cast -inf to int64 garbage, skewing the mean rank.  Its
        # lowest unset position is the full width; the maximum-clamp
        # keeps np.log2's domain provably positive on the lanes the
        # where() keeps (R1302).
        positions = np.log2(
            np.maximum(low_zero, 1).astype(np.float64)
        ).astype(np.int64)
        return np.where(inverted == 0, _BITMAP_WIDTH, positions)

    def estimate(self) -> float:
        mean_rank = float(self._lowest_unset_bits().mean())
        raw = self.bitmaps / _PHI * 2.0**mean_rank
        # Small-range correction (as in HyperLogLog): PCSA's 2^mean form
        # is heavily biased while bitmaps are sparsely hit, so fall back
        # to linear counting over the bitmaps in that regime.
        if raw <= 2.5 * self.bitmaps:
            empty = int(np.count_nonzero(self._sketch == 0))
            if empty > 0:
                # empty <= bitmaps, so the ratio is >= 1 and the clamp
                # is an exact no-op proving np.log's domain (R1302).
                return self.bitmaps * float(
                    np.log(np.maximum(self.bitmaps / empty, 1.0))
                )
        return raw

    def merge(self, other: DistinctSketch) -> None:
        self._require_compatible(other, bitmaps=self.bitmaps, seed=self.seed)
        self._sketch |= other._sketch

    @property
    def memory_bytes(self) -> int:
        return self.bitmaps * 8
