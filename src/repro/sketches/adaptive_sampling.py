"""Wegman's adaptive sampling (analyzed by Flajolet, 1990).

The third classical probabilistic-counting scheme of the era alongside
Flajolet–Martin and linear counting.  Maintain a set of hashed values,
but only those whose hash falls in a suffix-masked bucket; whenever the
set exceeds its capacity ``m``, deepen the mask (halving the retained
fraction) and evict.  At the end, ``|set| * 2^depth`` estimates the
distinct count: the set is a uniform sample of the *distinct hashes* at
rate ``2^-depth``.  Standard error ``~ 1.2 / sqrt(m)``.

Unlike KMV it needs no sorted structure, and unlike FM it yields an
unbiased estimate without magic constants — at the cost of storing up
to ``m`` full hashes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sketches.base import DistinctSketch
from repro.sketches.hashing import hash64

__all__ = ["AdaptiveSampling"]


class AdaptiveSampling(DistinctSketch):
    """Adaptive (Wegman) sampling of distinct hash values.

    Parameters
    ----------
    capacity:
        Maximum retained distinct hashes ``m`` (>= 8).
    seed:
        Hash seed.
    """

    name = "Adaptive"

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 8:
            raise InvalidParameterError(f"capacity must be >= 8, got {capacity}")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.depth = 0
        self._kept = np.empty(0, dtype=np.uint64)

    def _mask_filter(self, hashes: np.ndarray) -> np.ndarray:
        """Hashes whose low ``depth`` bits are all zero."""
        if self.depth == 0:
            return hashes
        mask = np.uint64((1 << self.depth) - 1)
        return hashes[(hashes & mask) == 0]

    def _shrink_until_fits(self) -> None:
        while self._kept.size > self.capacity:
            self.depth += 1
            self._kept = self._mask_filter(self._kept)

    def add(self, values) -> None:
        hashes = self._mask_filter(hash64(values, seed=self.seed))
        if hashes.size == 0:
            return
        self._kept = np.union1d(self._kept, hashes)  # sorted, deduplicated
        self._shrink_until_fits()

    def estimate(self) -> float:
        return float(self._kept.size) * float(2**self.depth)

    def merge(self, other: DistinctSketch) -> None:
        self._require_compatible(other, capacity=self.capacity, seed=self.seed)
        # Align to the deeper mask, then union and re-shrink.
        self.depth = max(self.depth, other.depth)
        self._kept = self._mask_filter(self._kept)
        self._kept = np.union1d(self._kept, self._mask_filter(other._kept))
        self._shrink_until_fits()

    @property
    def memory_bytes(self) -> int:
        return self.capacity * 8
