"""K-Minimum-Values (KMV) distinct-count sketch.

Keep the ``k`` smallest distinct hash values seen; if ``h_(k)`` is the
k-th smallest hash normalized to (0, 1), the unbiased estimate is

    ``D_hat = (k - 1) / h_(k)``.

When fewer than ``k`` distinct hashes have been seen the sketch is exact.
Relative error is about ``1 / sqrt(k - 2)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.sketches.base import DistinctSketch
from repro.sketches.hashing import hash64

__all__ = ["KMinimumValues"]

_HASH_SPACE = 2.0**64


class KMinimumValues(DistinctSketch):
    """The k-minimum-values sketch.

    Parameters
    ----------
    k:
        Number of minimum hash values retained (>= 3 for the estimator
        to have finite variance).
    seed:
        Hash seed.
    """

    name = "KMV"

    def __init__(self, k: int = 1024, seed: int = 0) -> None:
        if k < 3:
            raise InvalidParameterError(f"k must be >= 3, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        self._minima = np.empty(0, dtype=np.uint64)

    def add(self, values) -> None:
        hashes = hash64(values, seed=self.seed)
        combined = np.union1d(self._minima, hashes)  # sorted + deduplicated
        self._minima = combined[: self.k]

    def estimate(self) -> float:
        seen = self._minima.size
        if seen < self.k:
            return float(seen)
        # The +1 avoids zero for tiny hashes; the max-clamp is an exact
        # no-op (a uint64 hash is >= 0) that lets the interval prover
        # discharge the division instead of a pragma.
        kth = max(float(self._minima[-1]) + 1.0, 1.0)
        return (self.k - 1) / (kth / _HASH_SPACE)

    def merge(self, other: DistinctSketch) -> None:
        self._require_compatible(other, k=self.k, seed=self.seed)
        combined = np.union1d(self._minima, other._minima)
        self._minima = combined[: self.k]

    # ------------------------------------------------------------------
    # Set operations (KMV's distinguishing capability)
    # ------------------------------------------------------------------
    def jaccard_estimate(self, other: "KMinimumValues") -> float:
        """Estimated Jaccard similarity ``|A ∩ B| / |A ∪ B|``.

        The k smallest hashes of ``A ∪ B`` are a uniform sample of the
        union's distinct values; the fraction of them present in *both*
        sketches estimates the Jaccard coefficient.
        """
        self._require_compatible(other, k=self.k, seed=self.seed)
        union_minima = np.union1d(self._minima, other._minima)[: self.k]
        if union_minima.size == 0:
            return 0.0
        in_both = np.isin(union_minima, self._minima) & np.isin(
            union_minima, other._minima
        )
        return float(in_both.sum()) / union_minima.size

    def union_estimate(self, other: "KMinimumValues") -> float:
        """Estimated ``|A ∪ B|`` (merge without mutating either sketch)."""
        self._require_compatible(other, k=self.k, seed=self.seed)
        merged = KMinimumValues(k=self.k, seed=self.seed)
        merged._minima = np.union1d(self._minima, other._minima)[: self.k]
        return merged.estimate()

    def intersection_estimate(self, other: "KMinimumValues") -> float:
        """Estimated ``|A ∩ B| = Jaccard * |A ∪ B|``.

        The workhorse of join-size estimation on distinct keys; relative
        error grows as the intersection shrinks relative to the union.
        """
        return self.jaccard_estimate(other) * self.union_estimate(other)

    @property
    def memory_bytes(self) -> int:
        return self.k * 8
