"""Vectorized 64-bit hashing shared by the sketch implementations.

All sketches hash values to uniform 64-bit integers.  Numeric numpy
arrays are hashed vectorially with the SplitMix64 finalizer (a
well-tested bijective mixer); other dtypes fall back to a per-element
``blake2b`` digest of the value's ``repr``.  Builtin ``hash`` is
deliberately avoided there: it is salted by ``PYTHONHASHSEED`` for
str/bytes, so sketch contents — and therefore estimates — would differ
across processes of the same experiment (rule R1001).  A ``seed``
parameter decorrelates independent sketch instances.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.obs.recorder import OBS
from repro.sampling.base import as_column

__all__ = ["hash64"]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer applied elementwise to a uint64 array."""
    with np.errstate(over="ignore"):
        z = (values + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        return z ^ (z >> np.uint64(31))


def _stable_hash(item: object) -> int:
    """Process-independent 64-bit hash of one Python value.

    Digests the value's ``repr`` with blake2b, so equal values hash
    equally in every process regardless of ``PYTHONHASHSEED``.  The
    value must have a deterministic ``repr`` — true for the str/bytes/
    numeric data columns hold; objects whose repr embeds ``id()`` were
    never soundly hashable across processes to begin with.
    """
    payload = repr(item).encode("utf-8", "backslashreplace")
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "little"
    )


def hash64(values, seed: int = 0) -> np.ndarray:
    """Hash a 1-D array of values to uniform uint64.

    Integer and floating dtypes are reinterpreted as uint64 and mixed
    vectorially; object/string arrays digest each element's ``repr``
    with blake2b (slower, but stable across processes and runs).
    """
    data = as_column(values)
    # Every sketch's ``add`` funnels through this hash, so one guarded
    # counter here observes all sketch ingest without per-sketch hooks.
    if OBS.enabled:
        OBS.add("sketch.values_hashed", data.size)
    if np.issubdtype(data.dtype, np.integer):
        raw = data.astype(np.uint64, copy=False)
    elif np.issubdtype(data.dtype, np.floating):
        raw = data.astype(np.float64, copy=False).view(np.uint64)
    else:
        raw = np.fromiter(
            (_stable_hash(item) for item in data.tolist()),
            dtype=np.uint64,
            count=data.size,
        )
    with np.errstate(over="ignore"):
        salted = (raw ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF)) & _MASK64
    return _splitmix64(salted)
