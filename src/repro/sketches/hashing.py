"""Vectorized 64-bit hashing shared by the sketch implementations.

All sketches hash values to uniform 64-bit integers.  Numeric numpy
arrays are hashed vectorially with the SplitMix64 finalizer (a
well-tested bijective mixer); other dtypes fall back to Python's
``hash`` per element.  A ``seed`` parameter decorrelates independent
sketch instances.
"""

from __future__ import annotations

import numpy as np

from repro.obs.recorder import OBS
from repro.sampling.base import as_column

__all__ = ["hash64"]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer applied elementwise to a uint64 array."""
    with np.errstate(over="ignore"):
        z = (values + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        return z ^ (z >> np.uint64(31))


def hash64(values, seed: int = 0) -> np.ndarray:
    """Hash a 1-D array of values to uniform uint64.

    Integer and floating dtypes are reinterpreted as uint64 and mixed
    vectorially; object/string arrays use Python's ``hash`` per element
    (slower, but correct for arbitrary hashables).
    """
    data = as_column(values)
    # Every sketch's ``add`` funnels through this hash, so one guarded
    # counter here observes all sketch ingest without per-sketch hooks.
    if OBS.enabled:
        OBS.add("sketch.values_hashed", data.size)
    if np.issubdtype(data.dtype, np.integer):
        raw = data.astype(np.uint64, copy=False)
    elif np.issubdtype(data.dtype, np.floating):
        raw = data.astype(np.float64, copy=False).view(np.uint64)
    else:
        raw = np.fromiter(
            (hash(item) & 0xFFFFFFFFFFFFFFFF for item in data.tolist()),
            dtype=np.uint64,
            count=data.size,
        )
    with np.errstate(over="ignore"):
        salted = (raw ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF)) & _MASK64
    return _splitmix64(salted)
