"""HyperLogLog (Flajolet et al. 2007).

The modern descendant of the probabilistic counting line the paper's
related work describes.  ``m = 2^p`` registers record the maximum
leading-zero rank seen in each hash bucket; the harmonic-mean raw
estimate is bias-corrected by ``alpha_m`` and, in the small range, by
linear counting on empty registers.  Standard error ``~ 1.04/sqrt(m)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError
from repro.sketches.base import DistinctSketch
from repro.sketches.hashing import hash64

__all__ = ["HyperLogLog"]


def _alpha(m: int) -> float:
    """The bias-correction constant ``alpha_m`` from the HLL paper."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog(DistinctSketch):
    """HyperLogLog with small-range linear-counting correction.

    Parameters
    ----------
    precision:
        ``p``; the sketch uses ``2^p`` one-byte registers.  Typical
        values 10–16.
    seed:
        Hash seed.
    """

    name = "HLL"

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise InvalidParameterError(
                f"precision must be in [4, 18], got {precision}"
            )
        self.precision = int(precision)
        self.seed = int(seed)
        self.registers_count = 1 << self.precision
        self._registers = np.zeros(self.registers_count, dtype=np.uint8)

    def add(self, values) -> None:
        hashes = hash64(values, seed=self.seed)
        buckets = (hashes >> np.uint64(64 - self.precision)).astype(np.int64)
        payload_bits = 64 - self.precision
        payload = hashes & np.uint64((1 << payload_bits) - 1)
        # rho = position (1-based) of the leftmost set bit of the payload
        # within payload_bits, i.e. payload_bits - floor(log2(payload)).
        # The maximum-clamp only touches the payload == 0 lanes that the
        # where() discards; it keeps np.log2's domain provably positive
        # (R1302) and makes the errstate shield unnecessary.
        ranks = np.where(
            payload == 0,
            payload_bits + 1,
            payload_bits
            - np.floor(np.log2(np.maximum(payload, 1).astype(np.float64))),
        ).astype(np.uint8)
        np.maximum.at(self._registers, buckets, ranks)

    def estimate(self) -> float:
        m = self.registers_count
        registers = self._registers.astype(np.float64)
        # registers >= 0, so the min-clamp is an exact no-op bounding the
        # exp2 argument for the prover (R1303).
        raw = _alpha(m) * m * m / np.sum(np.exp2(np.minimum(0.0, -registers)))  # reprolint: disable=R101 - sum of 2^-register over m >= 16 registers is positive
        if raw <= 2.5 * m:
            zeros = int(np.count_nonzero(self._registers == 0))
            if zeros:
                return m * math.log(m / zeros)
        return float(raw)

    def merge(self, other: DistinctSketch) -> None:
        self._require_compatible(
            other, precision=self.precision, seed=self.seed
        )
        np.maximum(self._registers, other._registers, out=self._registers)

    @property
    def memory_bytes(self) -> int:
        return self.registers_count
