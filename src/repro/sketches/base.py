"""Common interface for the probabilistic-counting sketches.

The paper's related work (§1.1) notes that "probabilistic counting"
hashing techniques "reduce memory requirements at the cost of
introducing imprecision, [but] still involve a full scan of the table".
These sketches make that trade-off measurable: every sketch reports its
memory footprint and must see *every* row (``add`` is called on the full
column), in contrast to the samplers which read only ``r`` rows.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.obs.recorder import OBS

__all__ = ["DistinctSketch"]


class DistinctSketch(ABC):
    """A streaming, mergeable distinct-count sketch."""

    #: Stable identifier used by benchmarks and reports.
    name: str = "sketch"

    @abstractmethod
    def add(self, values) -> None:
        """Absorb a batch of values (1-D array-like)."""

    @abstractmethod
    def estimate(self) -> float:
        """Current distinct-count estimate."""

    @abstractmethod
    def merge(self, other: "DistinctSketch") -> None:
        """Union this sketch with a compatible ``other`` (in place)."""

    @property
    @abstractmethod
    def memory_bytes(self) -> int:
        """Size of the sketch state in bytes."""

    @classmethod
    def count(cls, values, **kwargs) -> float:
        """One-shot convenience: build, add, estimate."""
        with OBS.span(f"sketch.{cls.name}"):
            sketch = cls(**kwargs)
            sketch.add(values)
            estimate = sketch.estimate()
        if OBS.enabled:
            OBS.add("sketch.counts")
            OBS.add(f"sketch.memory_bytes.{cls.name}", sketch.memory_bytes)
        return estimate

    def _require_compatible(self, other: "DistinctSketch", **attrs) -> None:
        """Raise TypeError/ValueError unless ``other`` matches this sketch."""
        if OBS.enabled:
            OBS.add("sketch.merges")
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        for attr, expected in attrs.items():
            actual = getattr(other, attr)
            if actual != expected:
                raise ValueError(
                    f"cannot merge sketches with different {attr}: "
                    f"{actual} != {expected}"
                )
