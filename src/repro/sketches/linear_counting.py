"""Linear counting (Whang, Vander-Zanden, Taylor 1990).

Reference [30] of the paper: "a linear-time probabilistic counting
algorithm for database applications".  Hash each value into an ``m``-bit
bitmap; with ``V`` the fraction of bits still zero after the scan, the
maximum-likelihood estimate of the distinct count is

    ``D_hat = -m ln(V)``.

Accurate while the bitmap stays sparse enough (load factor up to ~12 with
tolerable error); saturates (``V = 0``) when ``D >> m``, in which case
this implementation returns the bitmap-capacity upper estimate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError
from repro.sketches.base import DistinctSketch
from repro.sketches.hashing import hash64

__all__ = ["LinearCounting"]


class LinearCounting(DistinctSketch):
    """Bitmap-based linear counting.

    Parameters
    ----------
    bits:
        Bitmap size ``m`` (number of bits).  Should be at least on the
        order of the expected distinct count for good accuracy.
    seed:
        Hash seed; distinct seeds give independent sketches.
    """

    name = "LinearCounting"

    def __init__(self, bits: int = 1 << 16, seed: int = 0) -> None:
        if bits < 8:
            raise InvalidParameterError(f"bits must be >= 8, got {bits}")
        self.bits = int(bits)
        self.seed = int(seed)
        self._bitmap = np.zeros(self.bits, dtype=bool)

    def add(self, values) -> None:
        hashes = hash64(values, seed=self.seed)
        positions = (hashes % np.uint64(self.bits)).astype(np.int64)
        self._bitmap[positions] = True

    @property
    def zero_fraction(self) -> float:
        """Fraction of bitmap bits still unset."""
        return 1.0 - self._bitmap.sum() / self.bits

    def estimate(self) -> float:
        v = self.zero_fraction
        if v <= 0.0:
            # Saturated bitmap: all we know is D >> m; report the
            # coupon-collector-style capacity bound.
            return float(self.bits) * math.log(self.bits)
        return -self.bits * math.log(v)

    def merge(self, other: DistinctSketch) -> None:
        self._require_compatible(other, bits=self.bits, seed=self.seed)
        self._bitmap |= other._bitmap

    @property
    def memory_bytes(self) -> int:
        return self.bits // 8
