"""Probabilistic counting sketches (the paper's §1.1 full-scan comparators).

"While these methods reduce memory requirements at the cost of
introducing imprecision, they still involve a full scan of the table" —
the sketch-vs-sampling benchmark quantifies exactly that trade-off.
"""

from repro.sketches.adaptive_sampling import AdaptiveSampling
from repro.sketches.base import DistinctSketch
from repro.sketches.flajolet_martin import FlajoletMartin
from repro.sketches.hashing import hash64
from repro.sketches.hyperloglog import HyperLogLog
from repro.sketches.kmv import KMinimumValues
from repro.sketches.linear_counting import LinearCounting

__all__ = [
    "AdaptiveSampling",
    "DistinctSketch",
    "FlajoletMartin",
    "hash64",
    "HyperLogLog",
    "KMinimumValues",
    "LinearCounting",
]
