"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidSampleError",
    "InvalidParameterError",
    "EstimationError",
    "SolverError",
    "CatalogError",
    "DataGenerationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its documented domain (e.g. ``r > n``)."""


class InvalidSampleError(ReproError, ValueError):
    """A sample or frequency profile is malformed or inconsistent."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate for a valid input."""


class SolverError(EstimationError):
    """A numerical solver (e.g. AE's fixed-point search) failed to converge."""


class CatalogError(ReproError, KeyError):
    """A catalog lookup referenced a missing table, column, or statistic."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator was configured inconsistently."""
