"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidSampleError",
    "InvalidParameterError",
    "EstimationError",
    "SolverError",
    "CatalogError",
    "DataGenerationError",
    "ResilienceError",
    "InjectedFaultError",
    "SweepGapError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its documented domain (e.g. ``r > n``)."""


class InvalidSampleError(ReproError, ValueError):
    """A sample or frequency profile is malformed or inconsistent."""


class EstimationError(ReproError):
    """An estimator could not produce an estimate for a valid input."""


class SolverError(EstimationError):
    """A numerical solver (e.g. AE's fixed-point search) failed to converge."""


class CatalogError(ReproError, KeyError):
    """A catalog lookup referenced a missing table, column, or statistic."""


class DataGenerationError(ReproError, ValueError):
    """A synthetic data generator was configured inconsistently."""


class ResilienceError(ReproError):
    """A checkpoint journal or recovery operation could not proceed."""


class InjectedFaultError(ReproError):
    """A deterministic fault fired at an instrumented site (``REPRO_FAULTS``)."""


class SweepGapError(ResilienceError):
    """A supervised sweep exhausted its retry budget on one or more points.

    Carries the :class:`~repro.resilience.supervisor.PartialSweepResult`
    (as ``partial``) so callers can inspect the completed prefix and the
    exact missing grid points instead of losing the run.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial
