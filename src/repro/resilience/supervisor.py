"""Supervision policy for sweeps: retries, backoff, timeouts, gaps.

The executor's supervised path (see
:func:`repro.experiments.executor.run_sweep`) consults a
:class:`RetryPolicy` when a task attempt fails: bounded retries with
exponential backoff and *decorrelated jitter*, a progress timeout for
hung workers, and — when the budget is exhausted — a
:class:`PartialSweepResult` that names the exact missing grid points
instead of losing the completed ones.

Determinism: a retried task reruns on its original spawn-key seed, so a
retry that succeeds produces the byte-identical result the first attempt
would have.  Backoff jitter is drawn from its own SeedSequence domain
(:data:`JITTER_DOMAIN`, disjoint from the executor's task/data domains
and the fault domain), so pacing the retries never moves an experiment's
random streams.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "ENV_RETRIES",
    "ENV_TASK_TIMEOUT",
    "JITTER_DOMAIN",
    "RetryPolicy",
    "PartialSweepResult",
    "jitter_delays",
]

#: Retry budget per grid point (``REPRO_RETRIES``; supervised default 2).
ENV_RETRIES = "REPRO_RETRIES"

#: Progress timeout in seconds for pooled sweeps (``REPRO_TASK_TIMEOUT``).
ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"

#: Spawn-key namespace for backoff jitter draws.
JITTER_DOMAIN = 0x117E4


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised sweep responds to task failures.

    ``retries`` is the number of *additional* attempts after the first
    (0 = fail fast).  ``timeout`` is a progress watchdog for pooled
    sweeps: when no task completes for that many seconds, outstanding
    workers are presumed hung, the pool is rebuilt, and the running
    tasks burn one retry each (None = wait forever).  ``base_delay`` /
    ``max_delay`` bound the decorrelated-jitter backoff between retries.
    """

    retries: int = 2
    timeout: float | None = None
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise InvalidParameterError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise InvalidParameterError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay} / {self.max_delay}"
            )

    @classmethod
    def from_env(cls) -> "RetryPolicy | None":
        """The policy requested via environment, or None when unset.

        Returning None (rather than a default policy) lets the executor
        keep its unsupervised fast path when nothing asked for
        supervision — the off-by-default overhead guarantee.
        """
        raw_retries = os.environ.get(ENV_RETRIES)
        raw_timeout = os.environ.get(ENV_TASK_TIMEOUT)
        if raw_retries is None and raw_timeout is None:
            return None
        retries = 2
        timeout: float | None = None
        if raw_retries is not None:
            try:
                retries = int(raw_retries)
            except ValueError:
                raise InvalidParameterError(
                    f"{ENV_RETRIES} must be an integer, got {raw_retries!r}"
                ) from None
        if raw_timeout is not None:
            try:
                timeout = float(raw_timeout)
            except ValueError:
                raise InvalidParameterError(
                    f"{ENV_TASK_TIMEOUT} must be a number, got {raw_timeout!r}"
                ) from None
        return cls(retries=retries, timeout=timeout)


def jitter_delays(seed: int, index: int, policy: RetryPolicy) -> Iterator[float]:
    """Decorrelated-jitter backoff delays for retries of one grid point.

    The classic scheme (``sleep = min(cap, uniform(base, prev * 3))``)
    drawn from a generator seeded under :data:`JITTER_DOMAIN` by
    ``(seed, index)`` — deterministic per point, independent of every
    experiment stream.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(JITTER_DOMAIN, index))
    )
    previous = policy.base_delay
    while True:
        previous = min(
            policy.max_delay,
            float(rng.uniform(policy.base_delay, max(previous * 3, policy.base_delay))),
        )
        yield previous


class PartialSweepResult(Sequence[Any]):
    """A sweep that completed some — not all — of its grid points.

    Behaves as a sequence of per-point results with ``None`` at the
    gaps, and reports exactly which indices are missing and why.  The
    completed points were journaled (when a journal was active), so a
    follow-up ``resume`` run pays only for the gaps.
    """

    def __init__(
        self,
        results: list[Any],
        missing: Sequence[int],
        errors: dict[int, str] | None = None,
    ) -> None:
        self.results = results
        self.missing = tuple(missing)
        self.errors = dict(errors or {})

    @property
    def complete(self) -> bool:
        """True when every grid point has a result."""
        return not self.missing

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: Any) -> Any:
        return self.results[index]

    def describe(self) -> str:
        """One line naming the gaps, for logs and error messages."""
        done = len(self.results) - len(self.missing)
        if self.complete:
            return f"complete: {done}/{len(self.results)} points"
        reasons = "; ".join(
            f"#{index}: {self.errors.get(index, 'unknown')}"
            for index in self.missing
        )
        return (
            f"{done}/{len(self.results)} points complete; "
            f"missing {list(self.missing)} ({reasons})"
        )

    def __repr__(self) -> str:
        return f"PartialSweepResult({self.describe()})"
