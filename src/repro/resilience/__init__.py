"""repro.resilience — crash-safe sweeps and deterministic chaos.

Three parts (full reference: ``docs/robustness.md``):

* :mod:`repro.resilience.journal` — the append-only, fsync'd checkpoint
  journal that lets a killed sweep resume bit-identically
  (:class:`SweepJournal`), plus :func:`atomic_write`, the
  write-temp-then-rename helper every final artifact goes through;
* :mod:`repro.resilience.supervisor` — :class:`RetryPolicy` (bounded
  retries, decorrelated-jitter backoff, progress timeouts) and
  :class:`PartialSweepResult` (graceful degradation with explicit gap
  reporting);
* :mod:`repro.resilience.faults` — the ``REPRO_FAULTS`` deterministic
  fault-injection framework consulted by instrumented sites.

The executor (:func:`repro.experiments.executor.run_sweep`) threads
these together; ``repro sweep --resume`` is the CLI surface.
"""

from __future__ import annotations

from repro.resilience.atomic import atomic_write
from repro.resilience.faults import (
    ENV_FAULT_SEED,
    ENV_FAULTS,
    FAULT_DOMAIN,
    FaultPlan,
    FaultRule,
    fault_plan,
    parse_faults,
    reload_faults,
)
from repro.resilience.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    sweep_config_hash,
    task_key,
)
from repro.resilience.supervisor import (
    ENV_RETRIES,
    ENV_TASK_TIMEOUT,
    JITTER_DOMAIN,
    PartialSweepResult,
    RetryPolicy,
    jitter_delays,
)

__all__ = [
    "ENV_FAULTS",
    "ENV_FAULT_SEED",
    "ENV_RETRIES",
    "ENV_TASK_TIMEOUT",
    "FAULT_DOMAIN",
    "JITTER_DOMAIN",
    "JOURNAL_SCHEMA",
    "FaultPlan",
    "FaultRule",
    "PartialSweepResult",
    "RetryPolicy",
    "SweepJournal",
    "atomic_write",
    "fault_plan",
    "jitter_delays",
    "parse_faults",
    "reload_faults",
    "sweep_config_hash",
    "task_key",
]
