"""The crash-safe sweep checkpoint journal.

A supervised sweep (:func:`repro.experiments.executor.run_sweep` with a
journal, or ``repro sweep``) appends one JSONL record per completed grid
point, so a killed run can resume and skip everything already computed.
Because every point's random stream depends only on ``(seed, index)``
(the SeedSequence spawn-key protocol), a resumed sweep recomputes the
missing points on exactly the streams the uninterrupted run would have
used — the merged result is bit-identical.

File layout (one JSON object per line)::

    {"ev": "journal", "schema": 1, "sweep": "<config hash>",
     "seed": 0, "points": 6, "task": "repro.experiments.figures:_evaluate_point"}
    {"ev": "point", "index": 0, "key": "0:0x7a5c:0", "attempt": 0,
     "result": "<base64 pickle>", "crc": 1234567}
    ...

Durability protocol:

* the header is created with an atomic write-temp-then-rename
  (:func:`~repro.resilience.atomic.atomic_write`), so a half-created
  journal never exists on disk;
* each point record is appended, flushed, and **fsync'd** before the
  result is considered checkpointed;
* recovery tolerates a torn tail: a truncated or corrupt trailing line
  (the crash window of an in-flight append) is discarded, and every
  intact record before it is recovered.  Each record carries a CRC-32 of
  its payload, so corruption anywhere — not just the tail — demotes that
  record to "missing" instead of resurrecting garbage;
* duplicate records for one index are last-write-wins (a retried point
  that was journaled twice keeps its most recent result);
* a journal whose ``schema`` is from a different layout generation, or
  whose ``sweep`` hash does not match the sweep being resumed, is
  **refused** (:class:`~repro.errors.ResilienceError`) rather than
  silently mixed into foreign results.

Results are arbitrary picklable objects (``EvaluationResult`` trees,
tuples, floats); they are stored as base64-encoded pickles.  Journals
are local scratch state produced and consumed by the same user — do not
resume from a journal you did not write.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import os
import pickle
import zlib
from pathlib import Path
from typing import IO, Any, Sequence

from repro.errors import ResilienceError
from repro.resilience.atomic import atomic_write

__all__ = ["JOURNAL_SCHEMA", "SweepJournal", "sweep_config_hash", "task_key"]

#: Version of the journal line layout; bumped on incompatible changes.
JOURNAL_SCHEMA = 1

_log = logging.getLogger(__name__)


def sweep_config_hash(task: str, seed: int, points: Sequence[Any]) -> str:
    """Stable identity of one sweep: task name, root seed, and grid.

    Grid points are hashed through ``repr`` — the sweep task dataclasses
    (plain data by the executor's pickling contract) have deterministic
    reprs, so the same configuration always maps to the same hash and a
    journal can refuse to resume a *different* sweep.
    """
    digest = hashlib.sha256()
    digest.update(f"{task}|{seed}|{len(points)}|".encode())
    digest.update(repr(list(points)).encode())
    return digest.hexdigest()[:16]


def task_key(seed: int, domain: int, index: int) -> str:
    """Render a task's SeedSequence spawn key as the journal record key."""
    return f"{seed}:{domain:#x}:{index}"


def _encode_result(result: Any) -> str:
    return base64.b64encode(pickle.dumps(result, protocol=4)).decode("ascii")


def _decode_result(payload: str) -> Any:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class SweepJournal:
    """Append-only checkpoint journal for one sweep (see module docs).

    Usage::

        journal = SweepJournal("sweeps/fig5.journal.jsonl")
        completed = journal.begin(config_hash, seed=0, points=6, resume=True)
        ... run only the indices missing from ``completed`` ...
        journal.record(index, result, key=..., attempt=...)
        journal.close()
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self._header: dict[str, Any] | None = None
        self.hits = 0
        self.misses = 0

    # -- lifecycle -----------------------------------------------------
    def begin(
        self,
        config_hash: str,
        *,
        seed: int,
        points: int,
        task: str = "",
        resume: bool = False,
    ) -> dict[int, Any]:
        """Open the journal and return the already-completed results.

        With ``resume=True`` and an existing journal, the header is
        validated (schema and sweep hash must match) and every intact
        point record is decoded into the returned ``{index: result}``
        map.  Without ``resume`` — or when no journal exists yet — a
        fresh journal replaces whatever was there, via an atomic header
        write.  The journal is left open for appending either way.
        """
        completed: dict[int, Any] = {}
        if resume and self.path.exists():
            self._header, completed = self._load(config_hash)
        else:
            self._header = {
                "ev": "journal",
                "schema": JOURNAL_SCHEMA,
                "sweep": config_hash,
                "seed": seed,
                "points": points,
                "task": task,
            }
            atomic_write(self.path, json.dumps(self._header, sort_keys=True) + "\n")
        self._handle = open(self.path, "a", encoding="utf-8")
        self.hits = len(completed)
        self.misses = points - len(completed)
        return completed

    def close(self) -> None:
        """Close the append handle (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def journal_id(self) -> str | None:
        """The sweep hash this journal is bound to (None before begin)."""
        return self._header["sweep"] if self._header else None

    # -- recording -----------------------------------------------------
    def record(
        self, index: int, result: Any, *, key: str = "", attempt: int = 0
    ) -> None:
        """Append one completed point; fsync'd before returning.

        After this returns, the result survives SIGKILL: the line is on
        disk and recovery will find it intact (or, if the crash landed
        mid-append, discard the torn tail and recompute just this point).
        """
        if self._handle is None:
            raise ResilienceError("journal is not open; call begin() first")
        from repro.resilience.faults import fault_plan

        fault_plan().consult("journal.write", key=index)
        payload = _encode_result(result)
        record = {
            "ev": "point",
            "index": index,
            "key": key,
            "attempt": attempt,
            "result": payload,
            "crc": zlib.crc32(payload.encode("ascii")),
        }
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- recovery ------------------------------------------------------
    def _load(self, config_hash: str) -> tuple[dict[str, Any], dict[int, Any]]:
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        if not lines or not lines[0].strip():
            raise ResilienceError(f"journal {self.path} is empty; cannot resume")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ResilienceError(
                f"journal {self.path} has an unreadable header: {exc}"
            ) from exc
        if header.get("ev") != "journal":
            raise ResilienceError(
                f"journal {self.path} does not start with a journal header"
            )
        schema = header.get("schema")
        if schema != JOURNAL_SCHEMA:
            raise ResilienceError(
                f"journal {self.path} has schema {schema!r}; this build "
                f"writes schema {JOURNAL_SCHEMA} — refusing to resume"
            )
        if header.get("sweep") != config_hash:
            raise ResilienceError(
                f"journal {self.path} belongs to sweep {header.get('sweep')!r}, "
                f"not {config_hash!r}; refusing to resume a different "
                "configuration (delete the journal or drop --resume)"
            )
        completed: dict[int, Any] = {}
        dropped = 0
        for position, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            record = self._parse_point(line, position)
            if record is None:
                dropped += 1
                continue
            completed[record[0]] = record[1]
        if dropped:
            _log.warning(
                "journal %s: dropped %d corrupt record(s); the affected "
                "points will be recomputed",
                self.path,
                dropped,
            )
        return header, completed

    def _parse_point(self, line: str, position: int) -> tuple[int, Any] | None:
        """Decode one point line, or None when it is torn/corrupt."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            _log.debug("journal %s line %d: torn or non-JSON", self.path, position)
            return None
        if record.get("ev") != "point":
            return None
        payload = record.get("result")
        index = record.get("index")
        if not isinstance(payload, str) or not isinstance(index, int):
            return None
        if zlib.crc32(payload.encode("ascii")) != record.get("crc"):
            _log.debug("journal %s line %d: CRC mismatch", self.path, position)
            return None
        try:
            return index, _decode_result(payload)
        except Exception:
            # A corrupt pickle payload must demote the record to
            # "missing" (recompute the point), never crash recovery; the
            # log line keeps the drop visible (R901-clean because of it).
            _log.debug("journal %s line %d: undecodable payload", self.path, position)
            return None
