"""Atomic file writes: an interrupt never leaves a truncated artifact.

Every final artifact the project produces — exhibit CSVs, rendered
reports, ``BENCH_perf.json``, telemetry JSONL runs, manifests, generated
columns — is written through :func:`atomic_write`: the payload goes to a
temporary file in the *same directory*, is flushed and fsync'd, and is
then moved over the destination with :func:`os.replace`, which POSIX
guarantees to be atomic within a filesystem.  A reader (or a resumed
run) therefore sees either the complete old artifact or the complete new
one, never a torn prefix.

The append-only checkpoint journal is the one artifact deliberately
*not* written this way (rewriting the whole file per record would defeat
its purpose); it instead fsyncs per appended line and tolerates a torn
tail on recovery — see :mod:`repro.resilience.journal`.
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write"]

_log = logging.getLogger(__name__)


def atomic_write(
    path: str | Path,
    data: str | bytes,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Write ``data`` to ``path`` via write-temp-then-rename.

    Parent directories are created as needed.  The temporary file lives
    next to the destination (``os.replace`` must not cross filesystems)
    and is removed on any failure, so interrupted writes leave the
    previous artifact intact and no debris behind.  ``fsync=False`` skips
    the durability sync for callers that only need atomicity (tests,
    scratch output).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = data.encode(encoding) if isinstance(data, str) else data
    descriptor, temp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            _log.debug("could not remove temp file %s", temp_name)
        raise
    return target
