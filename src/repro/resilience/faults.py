"""Deterministic fault injection (``REPRO_FAULTS``).

The chaos test suite and the CI chaos-smoke job need failures that are
*reproducible*: the same spec and fault seed must kill the same task
attempts on every run, or a "recovered bit-identically" assertion means
nothing.  This module turns a spec string into a seeded fault plan that
instrumented sites consult:

Grammar (clauses joined by ``;``)::

    REPRO_FAULTS="sweep.point:crash@0.1;sampler.profile:delay@0.05:0.01"

    clause  := site ":" kind "@" probability [":" seconds]
    site    := instrumented site name (see SITES)
    kind    := "crash" | "kill" | "delay" | "hang"
    probability := float in [0, 1]
    seconds := duration for delay/hang (defaults 0.01 / 30.0)

Kinds:

* ``crash`` — raise :class:`~repro.errors.InjectedFaultError` (an
  ordinary task failure; exercised by the retry path);
* ``kill``  — ``os._exit(70)`` the current process (a hard worker
  death; exercises ``BrokenProcessPool`` recovery — never use inline);
* ``delay`` — sleep ``seconds`` (slows a site; used by the CI smoke job
  to make a mid-run SIGKILL land predictably);
* ``hang``  — sleep ``seconds`` with a long default (exercises the
  supervisor's progress timeout).

Determinism: each consult draws from a generator seeded by
``SeedSequence(entropy=fault_seed, spawn_key=(FAULT_DOMAIN, site, key,
attempt))``.  ``FAULT_DOMAIN`` is disjoint from the executor's task and
data domains — fault draws can never perturb an experiment's random
streams.  Sites with a natural key (a sweep point's index) fire
identically across runs, worker counts, and resume boundaries; keyless
sites fall back to a per-process invocation counter (deterministic for
a serial run, scheduling-dependent under a pool — fine for chaos tests,
which key their assertions on the executor boundary).

With ``REPRO_FAULTS`` unset the plan is disabled and every consult is a
dict lookup returning immediately — the production overhead budget.
"""

from __future__ import annotations

import logging
import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import InjectedFaultError, InvalidParameterError
from repro.obs.recorder import OBS

__all__ = [
    "ENV_FAULTS",
    "ENV_FAULT_SEED",
    "FAULT_DOMAIN",
    "KINDS",
    "SITES",
    "FaultRule",
    "FaultPlan",
    "parse_faults",
    "fault_plan",
    "reload_faults",
]

#: Environment variable holding the fault spec (empty/unset = no faults).
ENV_FAULTS = "REPRO_FAULTS"

#: Root entropy for fault draws (default 0); lets chaos suites explore
#: several deterministic failure schedules.
ENV_FAULT_SEED = "REPRO_FAULT_SEED"

#: Spawn-key namespace for fault draws — disjoint from the executor's
#: TASK_DOMAIN/DATA_DOMAIN and the supervisor's JITTER_DOMAIN.
FAULT_DOMAIN = 0xFA17

#: Recognized fault kinds.
KINDS: tuple[str, ...] = ("crash", "kill", "delay", "hang")

#: Instrumented sites (documented surface; unknown sites are rejected so
#: a typo'd spec fails loudly instead of silently injecting nothing).
SITES: tuple[str, ...] = (
    "sweep.point",
    "sampler.profile",
    "harness.evaluate",
    "db.scan",
    "journal.write",
)

_DEFAULT_SECONDS = {"delay": 0.01, "hang": 30.0}

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class FaultRule:
    """One parsed clause: what to inject at a site, and how often."""

    site: str
    kind: str
    probability: float
    seconds: float


class FaultPlan:
    """A seeded set of fault rules that instrumented sites consult."""

    def __init__(self, rules: dict[str, FaultRule], seed: int = 0) -> None:
        self._rules = rules
        self._seed = seed
        self._counters: dict[str, int] = {}
        #: False when no rules are loaded; sites may check this first.
        self.enabled = bool(rules)

    def rule_for(self, site: str) -> FaultRule | None:
        """The rule registered for ``site`` (None when uninstrumented)."""
        return self._rules.get(site)

    def consult(self, site: str, key: int | None = None, attempt: int = 0) -> None:
        """Maybe inject a fault at ``site`` (no-op without a rule).

        ``key`` identifies the unit of work (a sweep point's index) so
        the decision is reproducible across processes and resumes;
        ``attempt`` distinguishes retries, so a crash that fired on
        attempt 0 draws fresh on attempt 1 and a retried task can
        succeed.  Keyless sites use a per-process invocation counter.
        """
        rule = self._rules.get(site)
        if rule is None:
            return
        if key is None:
            key = self._counters[site] = self._counters.get(site, -1) + 1
        if self._draw(site, key, attempt) >= rule.probability:
            return
        if OBS.enabled:
            OBS.add("resilience.faults_injected")
            OBS.add(f"resilience.faults_injected.{site}")
        _log.debug(
            "injecting %s at %s (key=%s attempt=%d)", rule.kind, site, key, attempt
        )
        if rule.kind == "crash":
            raise InjectedFaultError(
                f"injected crash at {site} (key={key}, attempt={attempt})"
            )
        if rule.kind == "kill":
            os._exit(70)
        time.sleep(rule.seconds)  # delay / hang

    def _draw(self, site: str, key: int, attempt: int) -> float:
        sequence = np.random.SeedSequence(
            entropy=self._seed,
            spawn_key=(FAULT_DOMAIN, zlib.crc32(site.encode()), key, attempt),
        )
        return float(np.random.default_rng(sequence).random())


def parse_faults(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    rules: dict[str, FaultRule] = {}
    for clause in filter(None, (part.strip() for part in spec.split(";"))):
        site, _, action = clause.partition(":")
        kind, _, rate = action.partition("@")
        if not site or not kind or not rate:
            raise InvalidParameterError(
                f"bad REPRO_FAULTS clause {clause!r}; expected "
                "site:kind@probability[:seconds]"
            )
        if site not in SITES:
            raise InvalidParameterError(
                f"unknown fault site {site!r}; known sites: {', '.join(SITES)}"
            )
        if kind not in KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {kind!r}; known kinds: {', '.join(KINDS)}"
            )
        rate_text, _, seconds_text = rate.partition(":")
        try:
            probability = float(rate_text)
        except ValueError:
            raise InvalidParameterError(
                f"bad fault probability {rate_text!r} in {clause!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise InvalidParameterError(
                f"fault probability must be in [0, 1], got {probability}"
            )
        seconds = _DEFAULT_SECONDS.get(kind, 0.0)
        if seconds_text:
            try:
                seconds = float(seconds_text)
            except ValueError:
                raise InvalidParameterError(
                    f"bad fault duration {seconds_text!r} in {clause!r}"
                ) from None
            if seconds < 0:
                raise InvalidParameterError(
                    f"fault duration must be >= 0, got {seconds}"
                )
        rules[site] = FaultRule(site, kind, probability, seconds)
    return FaultPlan(rules, seed=seed)


_PLAN: FaultPlan | None = None


def fault_plan() -> FaultPlan:  # reprolint: disable=R1101 - lazy init is the documented contract: spawned workers re-parse REPRO_FAULTS from the inherited environment, so every process converges on the same plan
    """The process-wide plan parsed from ``REPRO_FAULTS`` (cached).

    Pool workers forked from a parent inherit the parsed plan; spawned
    workers re-parse the inherited environment on first consult.
    """
    global _PLAN
    if _PLAN is None:
        spec = os.environ.get(ENV_FAULTS, "")
        raw_seed = os.environ.get(ENV_FAULT_SEED, "").strip()
        try:
            seed = int(raw_seed) if raw_seed else 0
        except ValueError:
            raise InvalidParameterError(
                f"{ENV_FAULT_SEED} must be an integer, got {raw_seed!r}"
            ) from None
        _PLAN = parse_faults(spec, seed=seed)
    return _PLAN


def reload_faults() -> FaultPlan:
    """Drop the cached plan and re-read the environment (tests)."""
    global _PLAN
    _PLAN = None
    return fault_plan()
