"""Baseline files: ratchet pre-existing findings without hiding new ones.

A baseline is a JSON object mapping ``"path::code"`` to the number of
findings of that code tolerated in that file::

    {
      "version": 1,
      "entries": {"src/repro/legacy.py::R101": 2}
    }

Keys are deliberately line-insensitive — editing an unrelated part of a
baselined file must not resurrect its debt — but count-sensitive: adding
a *third* R101 to a file baselined at two fails the run.  Generate one
with ``repro lint --write-baseline``; shrink it as debt is paid down.
"""

from __future__ import annotations

import json
import os

from repro.analysis.runner import LintReport
from repro.errors import InvalidParameterError
from repro.resilience import atomic_write

__all__ = ["load_baseline", "write_baseline", "baseline_from_report"]

_BASELINE_VERSION = 1


def load_baseline(path: str) -> dict[str, int]:
    """Read a baseline file into a ``{"path::code": count}`` mapping."""
    if not os.path.isfile(path):
        raise InvalidParameterError(f"baseline file does not exist: {path!r}")
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"baseline file {path!r} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise InvalidParameterError(
            f"baseline file {path!r} must be an object with an 'entries' key"
        )
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise InvalidParameterError(
            f"baseline file {path!r}: 'entries' must be an object"
        )
    result: dict[str, int] = {}
    for key, count in entries.items():
        if not isinstance(key, str) or "::" not in key:
            raise InvalidParameterError(
                f"baseline key {key!r} must look like 'path::CODE'"
            )
        if not isinstance(count, int) or count < 1:
            raise InvalidParameterError(
                f"baseline count for {key!r} must be a positive integer"
            )
        result[key] = count
    return result


def baseline_from_report(report: LintReport) -> dict[str, int]:
    """Collapse a report's findings into baseline entries."""
    entries: dict[str, int] = {}
    for finding in report.findings:
        key = finding.baseline_key
        entries[key] = entries.get(key, 0) + 1
    return dict(sorted(entries.items()))


def write_baseline(path: str, report: LintReport) -> int:
    """Write the report's findings as a baseline; return the entry count.

    The write is atomic — a lint run killed mid-write must not leave a
    torn baseline that silently admits (or re-reports) findings.
    """
    entries = baseline_from_report(report)
    payload = {"version": _BASELINE_VERSION, "entries": entries}
    atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)
