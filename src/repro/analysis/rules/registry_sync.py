"""R501 — registry completeness: every concrete estimator is reachable.

The experiment harness, the CLI, and the paper-exhibit scripts all
enumerate estimators through ``ESTIMATOR_FACTORIES``
(:mod:`repro.core.registry`).  A concrete ``DistinctValueEstimator``
subclass that never lands in the registry silently drops out of every
sweep and every comparison table — the most expensive kind of bug to
notice, because nothing fails.  This rule cross-references the
statically-derived class hierarchy against the registry literal and
reports unregistered concrete estimators at their definition site.

Classes whose name starts with an underscore are treated as private
implementation details and exempt, as are abstract classes (detected via
ABC bases or ``abstractmethod`` members).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ESTIMATOR_BASE, ProjectContext
from repro.analysis.rules.base import ProjectRule, register
from repro.analysis.source import SourceModule

__all__ = ["RegistryCompleteness"]


@register
class RegistryCompleteness(ProjectRule):
    """Flag concrete estimator classes missing from ESTIMATOR_FACTORIES."""

    code = "R501"
    name = "registry-completeness"
    description = (
        "concrete DistinctValueEstimator subclass not reachable from "
        "ESTIMATOR_FACTORIES"
    )

    rationale = (
        "Sweeps, the CLI, and the paper's figure harness enumerate\n"
        'estimators through ESTIMATOR_FACTORIES.  A concrete subclass\n'
        'missing from the registry silently vanishes from every\n'
        'experiment — results ship without it and nothing fails.  The\n'
        'registry is the single source of truth, so drift is a lint\n'
        'error, not a runtime surprise.'
    )
    example = (
        'class ShloHybrid(DistinctValueEstimator):   # R501: defined but\n'
        '    ...                                     # never registered\n'
        '\n'
        'ESTIMATOR_FACTORIES = {\n'
        '    "gee": lambda: Gee(),                   # ShloHybrid absent\n'
        '}\n'
    )
    remediation = (
        'Add a factory entry for the new estimator (or mark the class\n'
        'abstract if it is a base).'
    )

    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        if context.registry_module is None:
            # No registry in the scanned set (e.g. a fixtures-only run):
            # completeness is unverifiable, so stay silent rather than
            # flag every class.
            return
        by_path = {module.path: module for module in modules}
        for name in sorted(context.estimator_classes):
            facts = context.classes.get(name)
            if facts is None or name == ESTIMATOR_BASE:
                continue
            if facts.is_abstract or name.startswith("_"):
                continue
            if name in context.registered_classes:
                continue
            module = by_path.get(facts.module_path)
            if module is None:
                continue
            yield self.finding(
                module,
                facts.lineno,
                facts.col,
                f"estimator class {name} is not registered in "
                f"{context.registry_module} ESTIMATOR_FACTORIES; it will be "
                "invisible to the CLI and every experiment sweep",
            )
