"""Stale-suppression detection (R701).

Suppression pragmas are the *explicit baseline*: each one marks a finding
the team decided to live with.  When the finding goes away — the code was
fixed, or the dataflow prover now discharges it — the pragma outlives its
reason and starts hiding *future* regressions at that line.  R701 reports
every pragma entry that suppressed nothing during the run.

The rule cannot work from one module's AST alone: whether a pragma is
used depends on which findings every *other* rule produced.  The runner
therefore drives it — :func:`~repro.analysis.runner.lint_paths` records
which pragma entries absorbed a finding and, when R701 is active, emits a
finding for each leftover entry.  :meth:`StaleSuppression.check` is a
deliberate no-op.

Scoping, to avoid false alarms on partial runs:

* an entry for code ``C`` is only reported when the rule for ``C``
  actually ran (``repro lint --select R201`` must not call an R101
  pragma stale);
* a ``disable=all`` entry is only reported when *every* registered rule
  ran.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["STALE_SUPPRESSION_CODE", "StaleSuppression"]

STALE_SUPPRESSION_CODE = "R701"


@register
class StaleSuppression(Rule):
    """R701: a ``# reprolint: disable`` pragma that suppresses nothing."""

    code = STALE_SUPPRESSION_CODE
    name = "stale-suppression"
    description = (
        "suppression pragma that no longer suppresses any finding "
        "(delete it; the prover or a fix made it redundant)"
    )

    rationale = (
        'A pragma that suppresses nothing is debt with a fuse: the code\n'
        'it excused has been fixed (or the analyzer got smarter), and the\n'
        'stale marker now silently pre-excuses the *next* regression on\n'
        'that line.  Keeping the suppression set minimal is what makes\n'
        'each remaining pragma a reviewed, justified exception.'
    )
    example = (
        'x = n / max(n, 1)   # reprolint: disable=R101 - R701: the rewrite\n'
        '                    # made this safe; the pragma now masks nothing\n'
    )
    remediation = (
        'Delete the pragma.  If the rule starts firing again, that is a\n'
        'new finding deserving a fresh look, not an old excuse.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        # Driven by the runner, which knows which pragmas were used.
        return iter(())

    def stale_finding(
        self, module: SourceModule, line: int, code: str, file_wide: bool
    ) -> Finding:
        """The finding for one unused pragma entry."""
        scope = "file-wide pragma" if file_wide else "pragma"
        return self.finding(
            module,
            line,
            0,
            f"stale suppression: {scope} for {code!r} no longer "
            "suppresses any finding; remove it",
        )
