"""R801 — logging hygiene: library code neither prints nor logs globally.

Library modules (everything under ``repro/`` except the presentation
layer) communicate diagnostics through the package logger so that
applications — the CLI, the test suite, a notebook — decide whether and
where messages appear.  A bare ``print()`` writes to whatever stdout
happens to be, corrupting piped CSV output and CI artifact capture; a
root-logger call (``logging.info(...)``, ``logging.basicConfig(...)``,
argless ``logging.getLogger()``) reaches past the package logger and
mutates or spams process-global logging state that the library does not
own.

The presentation layer is exempt: the CLI (``repro/cli.py``,
``repro/__main__.py``) and the reporters whose *product* is rendered
text (``repro/analysis/reporters.py``, ``repro/experiments/report.py``).
The package logger policy itself lives in ``repro/__init__.py`` (a
``NullHandler``) and ``repro.cli._configure_logging`` (the CLI handler).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["LoggingHygiene"]

#: ``logging.<fn>`` module-level calls that emit through the root logger
#: or mutate global logging configuration.
_ROOT_LOGGER_CALLS = frozenset(
    {
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "critical",
        "exception",
        "log",
        "basicConfig",
        "disable",
    }
)

#: Presentation-layer modules where stdout *is* the product.
_EXEMPT_SUFFIXES = (
    ("repro", "cli.py"),
    ("repro", "__main__.py"),
    ("repro", "analysis", "reporters.py"),
    ("repro", "experiments", "report.py"),
)


def _is_exempt(module: SourceModule) -> bool:
    pieces = Path(module.path).parts
    return any(
        len(pieces) >= len(suffix) and pieces[-len(suffix) :] == suffix
        for suffix in _EXEMPT_SUFFIXES
    )


def _logging_aliases(tree: ast.AST) -> tuple[set[str], set[str]]:
    """Names bound to the ``logging`` module and to its emit functions.

    Returns ``(module_aliases, function_aliases)`` covering both
    ``import logging as log`` and ``from logging import info``.
    """
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "logging":
                    modules.add(alias.asname or "logging")
        elif isinstance(node, ast.ImportFrom) and node.module == "logging":
            for alias in node.names:
                if alias.name in _ROOT_LOGGER_CALLS:
                    functions.add(alias.asname or alias.name)
    return modules, functions


@register
class LoggingHygiene(Rule):
    """Flag ``print()`` and root-logger calls in library modules."""

    code = "R801"
    name = "logging-hygiene"
    description = (
        "print() or root-logger call in library code; log through "
        "logging.getLogger(__name__) and let the application attach handlers"
    )

    rationale = (
        'print() writes to stdout unconditionally — it corrupts\n'
        'machine-readable CLI output (JSON reports, SARIF) and cannot be\n'
        'filtered or redirected by the embedding application.  Root-logger\n'
        'calls (logging.info) implicitly configure the root and double-log\n'
        'once the CLI attaches handlers.  Library code logs through its\n'
        'module logger; only the CLI layer owns stdout.'
    )
    example = (
        'print(f"sweep {name} done")             # R801: owns stdout\n'
        '\n'
        '_LOG = logging.getLogger(__name__)\n'
        '_LOG.info("sweep %s done", name)        # app controls routing\n'
    )
    remediation = (
        'Use logging.getLogger(__name__) at module scope.  User-facing\n'
        'CLI output belongs in the cli module, which is exempt.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if not module.in_package("repro") or _is_exempt(module):
            return
        module_aliases, function_aliases = _logging_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "print":
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "print() in library code; use the module logger "
                        "(logging.getLogger(__name__)) so callers control output",
                    )
                elif func.id in function_aliases:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"{func.id}() imported from logging emits through the "
                        "root logger; use a module logger instead",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            ):
                if func.attr in _ROOT_LOGGER_CALLS:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"logging.{func.attr}() emits through the root logger "
                        "or mutates global logging state; use a module logger",
                    )
                elif func.attr == "getLogger" and not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        "logging.getLogger() without a name returns the root "
                        "logger; pass __name__",
                    )
