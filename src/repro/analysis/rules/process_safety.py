"""Process-safety rules: R1101 (worker-shared state), R1201 (raw writes).

The sweep executor fans work out to pool workers.  Whatever those
workers are — forked, spawned, or threads — module-level mutable state
is a trap: a forked worker inherits a *copy* (mutations diverge
silently), a spawned worker re-imports the module (mutations are
simply lost), and threads race.  R1101 walks the call graph from every
resolvably-submitted task function and reports any reachable function
that mutates module-level state, with the chain that reaches it.  It
also flags ``lambda`` submissions directly: they cannot be pickled by
a spawn-based pool at all.

R1201 is the durability half: a raw ``open(path, "w")`` or
``Path.write_text`` truncates in place, so a crash mid-write leaves a
torn file that poisons resume logic.  ``repro.resilience.atomic_write``
(write-temp, fsync, rename) is the sanctioned way to land an artifact;
the ``repro/resilience`` package itself is exempt because it *is* that
implementation (and its append-mode journal is a deliberate,
crash-analyzed contract).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import (
    CallSiteResolver,
    ProjectCallGraph,
    cached_callgraph,
    module_name,
)
from repro.analysis.effects import GlobalMutation, collect_artifact_writes
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import ProjectRule, Rule, register
from repro.analysis.source import SourceModule

__all__ = ["WorkerSharedState", "RawArtifactWrite"]


def _chain(path: list[str]) -> str:
    return " -> ".join(path)


@register
class WorkerSharedState(ProjectRule):
    """R1101: worker-reachable mutation of module-level mutable state."""

    code = "R1101"
    name = "worker-shared-state"
    description = (
        "function reachable from a pool-submitted task mutates "
        "module-level state, which forked/spawned workers do not share"
    )

    rationale = (
        'Sweep tasks run in pool workers.  Module-level mutable state is\n'
        'a per-process illusion there: forked workers inherit a copy and\n'
        'diverge, spawned workers re-import and start empty, threads\n'
        "race.  A mutation anywhere in a task's call tree means worker\n"
        'behavior silently depends on pool scheduling.  The rule resolves\n'
        'every run_sweep/submit task function and walks its transitive\n'
        'callees for global rebinds (including if-None lazy init, which\n'
        'is additionally fork-unsafe mid-initialization), container\n'
        'mutations, and deletes.  Lambda submissions are flagged\n'
        'directly: a spawn-based pool cannot pickle them.'
    )
    example = (
        '_CACHE: dict[str, Data] = {}\n'
        '\n'
        'def _evaluate_point(spec):          # submitted to run_sweep\n'
        '    if spec.name not in _CACHE:\n'
        '        _CACHE[spec.name] = load(spec)   # R1101: each worker\n'
        '    return _CACHE[spec.name]             # fills a private copy\n'
    )
    remediation = (
        'Pass state into the task explicitly, recompute it worker-locally\n'
        "from the task's arguments, or document the per-process contract\n"
        'and suppress with a justification (as executor.memoized does —\n'
        'correctness there never depends on cross-process sharing).'
    )

    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        graph = cached_callgraph(modules, context)
        roots: dict[str, tuple[SourceModule, int]] = {}
        for module in modules:
            modname = module_name(module.path)
            resolver = CallSiteResolver(graph, module)
            for key in sorted(graph.nodes):
                node = graph.nodes[key]
                if not key.startswith(modname + ".") or node.module is not module:
                    continue
                for task in node.effects.submitted_tasks:
                    if isinstance(task.node, ast.Lambda):
                        yield self.finding(
                            module,
                            task.line,
                            task.col,
                            "lambda submitted as a pool task cannot be "
                            "pickled by a spawn-based pool; submit a "
                            "module-level function instead",
                        )
                        continue
                    if task.callee is None:
                        continue
                    target = resolver.resolve(
                        task.callee, node.effects.qualname
                    )
                    if target is not None and target not in roots:
                        roots[target] = (module, task.line)

        reported: set[str] = set()
        for root in sorted(roots):
            submit_module, submit_line = roots[root]
            for key in self._reachable(graph, root):
                node = graph.nodes.get(key)
                if node is None or key in reported:
                    continue
                mutations = node.effects.global_mutations
                if not mutations:
                    continue
                reported.add(key)
                names = self._grouped(mutations)
                path = [root] if key == root else (
                    graph.find_path(root, {key}) or [root, key]
                )
                yield self.finding(
                    node.module,
                    node.effects.node.lineno,
                    node.effects.node.col_offset,
                    f"{key} {names} and is reachable from worker task "
                    f"{root} (submitted at {submit_module.path}:"
                    f"{submit_line}, chain {_chain(path)}); worker "
                    "processes do not share module state — pass state "
                    "explicitly or keep it worker-local",
                )

    @staticmethod
    def _reachable(graph: ProjectCallGraph, root: str) -> list[str]:
        """Root plus every function transitively callable from it."""
        seen = {root}
        frontier = [root]
        while frontier:
            key = frontier.pop()
            for callee in graph.edges.get(key, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return sorted(seen)

    @staticmethod
    def _grouped(mutations: list[GlobalMutation]) -> str:
        """One readable clause covering every mutated module-level name."""
        by_name: dict[str, GlobalMutation] = {}
        for mutation in mutations:
            by_name.setdefault(mutation.name, mutation)
        parts = [
            f"'{name}' ({by_name[name].detail}, line {by_name[name].line})"
            for name in sorted(by_name)
        ]
        return "mutates module-level " + ", ".join(parts)


@register
class RawArtifactWrite(Rule):
    """R1201: truncating writes that bypass ``atomic_write``."""

    code = "R1201"
    name = "raw-artifact-write"
    description = (
        'raw open(..., "w")/Path.write_* truncates in place; a crash '
        "mid-write leaves a torn artifact — use resilience.atomic_write"
    )

    rationale = (
        'open(path, "w") truncates the old file before the new bytes are\n'
        'durable, so a crash mid-write destroys both versions — and the\n'
        'crash-safe sweep machinery then resumes from a torn checkpoint\n'
        'or half-written result.  atomic_write lands bytes in a temp\n'
        'file, fsyncs, and renames: readers see the old complete file or\n'
        'the new complete file, never a prefix.  Append-mode opens are\n'
        "exempt (the journal's crash contract is built on appends), as is\n"
        'repro/resilience itself — it implements the primitive.'
    )
    example = (
        'Path(path).write_text(json.dumps(records))   # R1201: torn on\n'
        '                                             # crash mid-write\n'
        '\n'
        'from repro.resilience import atomic_write\n'
        'atomic_write(path, json.dumps(records))      # old or new, never\n'
        '                                             # a prefix\n'
    )
    remediation = (
        'Serialize in memory and land the payload with atomic_write.\n'
        'For numpy arrays, save into a BytesIO and atomic_write the\n'
        'buffer (see repro.data.io.save_column).'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if module.in_package("repro", "resilience"):
            return  # the atomic/journal implementation layer itself
        for write in collect_artifact_writes(module.tree):
            yield self.finding(
                module,
                write.line,
                write.col,
                f"{write.description}; route the write through "
                "repro.resilience.atomic_write so a mid-write crash "
                "cannot leave a torn file",
            )
