"""Numeric-safety rules: unguarded division, unsafe log/sqrt, float equality.

Why these three, specifically: every estimator in this library is a pure
function of sample quantities (``r``, ``d``, the ``f_i``) that can all be
zero on legitimate inputs, and the error *measurements* the paper's
guarantee is judged by are ratios of such quantities.  A ``ZeroDivision``
or ``math domain error`` on a rare profile silently truncates an
experiment sweep; a float ``==`` flips a hybrid's branch on one platform
and not another.  Empirical studies of these estimators (Deolalikar &
Laffitte 2016; the q-error literature) attribute exactly this class of
bug to corrupted error curves.

R101 and R102 are scoped to the estimator stack (``repro/core``,
``repro/estimators``, ``repro/frequency``, ``repro/sketches``,
``repro/sampling``) where the contract applies; R201 runs tree-wide.

Since the dataflow engine landed, both rules first ask the interval
prover (:mod:`repro.analysis.dataflow`) whether the expression is safe at
its program point — ``proves_nonzero`` for divisors, ``proves_positive``
(``proves_nonnegative`` for ``sqrt``) for log arguments.  A proof
discharges the finding outright, so validation guards like ``if n < 1:
raise`` make the pragma at the use site unnecessary (R701 then flags the
leftover pragma as stale).  The PR 1 textual heuristics remain as the
fallback layer for expressions the lattice cannot bound.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import ModuleIntervals, module_intervals
from repro.analysis.findings import Finding
from repro.analysis.guards import (
    CONTRACT_POSITIVE,
    ScopeFacts,
    iter_scopes,
    module_positive_constants,
    walk_within_scope,
)
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["UnguardedDivision", "UnsafeLogSqrt", "FloatEquality"]

#: Packages the estimator contract (and therefore R101/R102) covers.
ESTIMATOR_STACK = (
    ("repro", "core"),
    ("repro", "estimators"),
    ("repro", "frequency"),
    ("repro", "sketches"),
    ("repro", "sampling"),
)


def _in_estimator_stack(module: SourceModule) -> bool:
    return any(module.in_package(*parts) for parts in ESTIMATOR_STACK)


class _ScopedNumericRule(Rule):
    """Shared scope-walking machinery for R101/R102."""

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if not _in_estimator_stack(module):
            return
        intervals = module_intervals(module)
        module_facts = ScopeFacts(module.tree)
        positive = CONTRACT_POSITIVE | module_positive_constants(module_facts)
        for scope, _statements in iter_scopes(module.tree):
            facts = ScopeFacts(scope, contract_positive=positive)
            for node in self._scope_nodes(scope):
                yield from self._check_node(module, node, facts, intervals)

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        return walk_within_scope(scope)

    def _check_node(
        self,
        module: SourceModule,
        node: ast.AST,
        facts: ScopeFacts,
        intervals: ModuleIntervals,
    ) -> Iterator[Finding]:
        raise NotImplementedError


@register
class UnguardedDivision(_ScopedNumericRule):
    """R101: division by a quantity that may be zero.

    A divisor must be provably positive (literal, contract quantity, or
    positivity-preserving arithmetic) or *guarded* — mentioned in a
    comparison or branch test of the same scope, evidence the author
    considered the zero case.
    """

    code = "R101"
    name = "unguarded-division"
    description = (
        "division by a possibly-zero sample quantity without a guard "
        "(estimator stack only)"
    )

    rationale = (
        'The estimators divide by sample quantities — sample sizes, hash\n'
        'minima, frequency counts — that legitimately hit zero on small or\n'
        'degenerate inputs.  An unguarded division is a ZeroDivisionError\n'
        '(or a silent inf under numpy) at sweep point 4173 of 5000.  The\n'
        'interval engine proves most divisors positive from guards and\n'
        'contracts; only unprovable sites are reported.'
    )
    example = (
        'def ratio(hits: int, n: int) -> float:\n'
        '    return hits / n        # R101: n may be zero\n'
        '\n'
        'def ratio(hits: int, n: int) -> float:\n'
        '    if n < 1:\n'
        '        raise InvalidParameterError("n must be positive")\n'
        '    return hits / n        # proven: n >= 1\n'
    )
    remediation = (
        'Guard the divisor before dividing (raise or early-return), or\n'
        'declare the invariant with @requires so the prover sees it.  If\n'
        'positivity is structurally guaranteed but unprovable, suppress\n'
        'with a justification.'
    )

    def _check_node(
        self,
        module: SourceModule,
        node: ast.AST,
        facts: ScopeFacts,
        intervals: ModuleIntervals,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Div, ast.FloorDiv, ast.Mod)
        ):
            divisor = node.right
            if intervals.proves_nonzero(divisor):
                return
            if not facts.is_safe_divisor(divisor):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"divisor {ast.unparse(divisor)!r} may be zero; guard it "
                    "(compare/early-return) or derive it from contract-"
                    "positive quantities",
                )


@register
class UnsafeLogSqrt(_ScopedNumericRule):
    """R102: ``math.log``/``math.sqrt`` on a possibly-nonpositive argument.

    ``math.log(0)`` and ``math.sqrt(-eps)`` raise ``ValueError`` at the
    exact profiles (all-singleton samples, empty tails) where estimator
    behaviour matters most; the argument must be provably positive or
    guarded in scope.
    """

    code = "R102"
    name = "unsafe-log-sqrt"
    description = (
        "math.log/math.sqrt argument may be nonpositive (estimator stack only)"
    )

    rationale = (
        "math.log raises on zero and numpy's quietly returns -inf/nan,\n"
        'which then poisons every downstream statistic without a\n'
        'traceback.  GEE-style estimators take logs and roots of\n'
        'frequencies and ratios that degenerate exactly when the data\n'
        'does, so these sites deserve proofs, not hope.'
    )
    example = (
        'scale = math.log(n / k)    # R102: n/k may be <= 0 when k > n\n'
        '\n'
        'if k > n:\n'
        '    raise InvalidParameterError("k cannot exceed n")\n'
        'scale = math.log(n / k)    # proven: argument >= 1\n'
    )
    remediation = (
        'Establish positivity with a guard or @requires contract before\n'
        'the call, or restructure so the argument is structurally\n'
        'positive (e.g. 1 + x with x >= 0).'
    )

    _FUNCTIONS = ("log", "log2", "log10", "sqrt")

    def _check_node(
        self,
        module: SourceModule,
        node: ast.AST,
        facts: ScopeFacts,
        intervals: ModuleIntervals,
    ) -> Iterator[Finding]:
        if not (isinstance(node, ast.Call) and node.args):
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in self._FUNCTIONS
            and isinstance(func.value, ast.Name)
            and func.value.id == "math"
        ):
            return
        argument = node.args[0]
        proved = (
            intervals.proves_nonnegative(argument)
            if func.attr == "sqrt"
            else intervals.proves_positive(argument)
        )
        if proved:
            return
        if not facts.is_safe_log_argument(argument, allow_zero=func.attr == "sqrt"):
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"math.{func.attr} argument {ast.unparse(argument)!r} may be "
                "nonpositive; guard it or build it from positive quantities",
            )


@register
class FloatEquality(Rule):
    """R201: ``==``/``!=`` against a float literal.

    Exact float comparison encodes an assumption about rounding that the
    next refactor silently breaks — ``q == 1.0`` misses ``q =
    0.9999999999999999`` from ``r/n`` and takes the wrong estimator
    branch.  Compare with an inequality that covers the boundary, or use
    ``math.isclose`` when equality truly is the intent.
    """

    code = "R201"
    name = "float-equality"
    description = "equality comparison against a float literal"

    rationale = (
        'Floating-point equality holds for exactly one bit pattern, and\n'
        'accumulated rounding differs across platforms, BLAS builds, and\n'
        'summation orders.  An == against a float literal is a latent\n'
        'flaky branch: correct today, wrong after any benign numeric\n'
        'refactor.'
    )
    example = (
        'if coverage == 0.95:       # R201: one exact bit pattern\n'
        '    ...\n'
        '\n'
        'if abs(coverage - 0.95) < 1e-12:\n'
        '    ...\n'
    )
    remediation = (
        'Compare with an explicit tolerance (abs(x - c) < eps or\n'
        'math.isclose), or compare integers (counts) instead of derived\n'
        'floats.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operators = node.ops
            operands = [node.left, *node.comparators]
            for index, op in enumerate(operators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                if any(self._is_float_literal(operand) for operand in pair):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"float literal compared with {symbol!r}; use an "
                        "inequality covering the boundary or math.isclose",
                    )

    @staticmethod
    def _is_float_literal(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
            return True
        return (
            isinstance(expr, ast.UnaryOp)
            and isinstance(expr.op, (ast.USub, ast.UAdd))
            and isinstance(expr.operand, ast.Constant)
            and isinstance(expr.operand.value, float)
        )
