"""Contract checking (R702): ``@requires``/``@ensures`` vs. the prover.

The estimator entry points declare the paper's preconditions as
machine-readable clauses (:mod:`repro.contracts`).  The dataflow engine
parses every clause into its interval domain and classifies it:

``proved``
    every return path satisfies the clause — nothing to do at runtime;
``runtime``
    the lattice cannot decide; the optional runtime assert
    (``REPRO_CONTRACTS=1``) is the safety net;
``violated``
    some return expression provably lies *outside* the clause — the
    contract and the code disagree, and one of them is wrong.

Only ``violated`` is a finding (R702): it is the one verdict that cannot
be fixed by running more tests, because the disagreement holds on every
execution the abstract semantics covers.  The full verdict table — the
``proved`` wins included — is what ``repro lint --prove`` prints.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.dataflow import module_intervals
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["ContractViolation", "module_has_contracts"]


def module_has_contracts(module: SourceModule) -> bool:
    """Cheap textual pre-filter before running the dataflow engine."""
    return "requires(" in module.text or "ensures(" in module.text


@register
class ContractViolation(Rule):
    """R702: a contract clause the interval prover shows to be false."""

    code = "R702"
    name = "contract-violation"
    description = (
        "@requires/@ensures clause provably violated by the function body"
    )

    rationale = (
        'Contracts are only checked at runtime under REPRO_CONTRACTS=1,\n'
        'which CI enables but production callers may not.  When the\n'
        'interval engine can *prove* a body violates its own declared\n'
        'clause, waiting for a runtime trip is pointless — either the\n'
        'contract is wrong or the code is, and both are bugs now.'
    )
    example = (
        '@ensures("result >= 1")\n'
        'def estimate(self, profile):\n'
        '    return 0.5 * profile.d_sample   # R702: provably < 1 when\n'
        '                                    # d_sample == 1\n'
    )
    remediation = (
        'Fix whichever side is wrong: tighten the body (clamp, guard) or\n'
        'correct the clause to the invariant the code actually keeps.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if not module_has_contracts(module):
            return
        for verdict in module_intervals(module).contract_verdicts():
            if verdict.verdict != "violated":
                continue
            yield self.finding(
                module,
                verdict.lineno,
                0,
                f"@{verdict.kind}({verdict.clause!r}) on "
                f"{verdict.qualname} is provably violated: a return path "
                "lies outside the clause on every execution",
            )
