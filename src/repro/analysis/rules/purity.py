"""R401 — estimator purity: estimators are read-only functions of the profile.

The paper's guarantee framework treats an estimator as a pure map from a
frequency profile (f_1 … f_n, r, n) to an estimate; every experiment in
this repo relies on being able to evaluate many estimators against the
*same* :class:`~repro.frequency.profile.FrequencyProfile` object and on
``estimate()`` being idempotent.  An estimator that mutates its input,
writes module globals, or bypasses :func:`repro.core.base.clamp_estimate`
invalidates those comparisons silently — the second estimator in the loop
sees a different profile than the first.

Concretely, inside any class the project context identifies as a
``DistinctValueEstimator`` subclass, this rule flags:

* assignment / augmented assignment / deletion through ``self.<attr>`` or
  the profile parameter anywhere in estimation methods (construction-time
  configuration in ``__init__`` stays legal);
* known mutating method calls on the profile (``update``, ``pop`` …)
  and ``object.__setattr__`` on self or the profile;
* ``global`` / ``nonlocal`` statements in any method;
* an ``estimate`` override whose body never calls ``clamp_estimate`` —
  overriding is allowed, un-clamped results are not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.guards import walk_within_scope
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["ESTIMATION_METHODS", "EstimatorPurity"]

#: Methods that constitute the estimation path (read-only by contract).
#: Shared with the transitive-purity rule (R402 in ``rules.flow``).
ESTIMATION_METHODS = frozenset(
    {"estimate", "_estimate_raw", "_interval", "__call__"}
)
_ESTIMATION_METHODS = ESTIMATION_METHODS

#: Mutating container/dataclass methods we recognise by name.
_MUTATING_METHODS = frozenset(
    {
        "update",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "append",
        "extend",
        "insert",
        "remove",
        "sort",
        "add",
        "discard",
    }
)


def _root_name(expr: ast.expr) -> str | None:
    """Leftmost ``Name`` of an attribute/subscript chain, if any."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _profile_parameter(method: ast.FunctionDef) -> str | None:
    """Name of the profile argument: first parameter after ``self``."""
    args = method.args.posonlyargs + method.args.args
    if args and args[0].arg == "self" and len(args) > 1:
        return args[1].arg
    return None


@register
class EstimatorPurity(Rule):
    """Flag profile/self/global mutation inside estimator classes."""

    code = "R401"
    name = "estimator-purity"
    description = (
        "estimator mutates its profile, instance state, or module globals "
        "during estimation, or overrides estimate() without clamping"
    )

    rationale = (
        'Estimation must be a pure function of the frequency profile:\n'
        'the same profile asked twice must yield the same estimate, and\n'
        'estimating one column must not perturb another.  Mutating the\n'
        'profile, self, or module globals during estimate() breaks\n'
        'repeat-query invariance; skipping the [d_sample, n] clamp breaks\n'
        "the paper's error guarantee at the boundaries."
    )
    example = (
        'def _estimate_raw(self, profile):\n'
        '    self._last = profile          # R401: estimation writes state\n'
        '    profile.counts.sort()         # R401: mutates the profile\n'
        '    return d_hat\n'
    )
    remediation = (
        'Compute into locals; anything cached must be write-once outside\n'
        'the estimation path.  Override _estimate_raw (the clamped\n'
        'template hook) rather than estimate() itself.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in context.estimator_classes:
                continue
            yield from self._check_class(module, node)

    # ------------------------------------------------------------------
    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for statement in cls.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method = statement
            yield from self._check_globals(module, cls, method)
            if method.name not in _ESTIMATION_METHODS:
                continue
            tainted = {"self"}
            profile = _profile_parameter(method)  # type: ignore[arg-type]
            if profile is not None:
                tainted.add(profile)
            yield from self._check_mutations(module, cls, method, tainted)
            if method.name == "estimate":
                yield from self._check_clamp(module, cls, method)

    def _check_globals(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for node in walk_within_scope(method):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"estimator {cls.name}.{method.name} declares "
                    f"{keyword} {', '.join(node.names)}; estimators must not "
                    "write shared state",
                )

    def _check_mutations(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        tainted: set[str],
    ) -> Iterator[Finding]:
        where = f"{cls.name}.{method.name}"
        for node in walk_within_scope(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if root in tainted:
                        yield self.finding(
                            module,
                            target.lineno,
                            target.col_offset,
                            f"{where} writes {ast.unparse(target)!r}; "
                            "estimation must not mutate the estimator or "
                            "its profile",
                        )
            if isinstance(node, ast.Call):
                yield from self._check_call(module, where, node, tainted)

    def _check_call(
        self,
        module: SourceModule,
        where: str,
        call: ast.Call,
        tainted: set[str],
    ) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute):
            # profile.counts.update(...), self._cache.pop(...), ...
            if func.attr in _MUTATING_METHODS:
                root = _root_name(func.value)
                if root in tainted:
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"{where} calls {ast.unparse(func)!r}; "
                        f"'{func.attr}' mutates state reachable from "
                        "the estimator or its profile",
                    )
            # object.__setattr__(self/profile, ...) defeats frozen dataclasses.
            if (
                func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
                and call.args
            ):
                root = _root_name(call.args[0])
                if root in tainted:
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"{where} uses object.__setattr__ on "
                        f"{ast.unparse(call.args[0])!r}; frozen inputs must "
                        "stay frozen during estimation",
                    )

    def _check_clamp(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name == "clamp_estimate":
                    return
                # Deferring to the base implementation keeps the clamp.
                if isinstance(func, ast.Attribute) and func.attr == "estimate":
                    root = func.value
                    if isinstance(root, ast.Call) and isinstance(
                        root.func, ast.Name
                    ) and root.func.id == "super":
                        return
        yield self.finding(
            module,
            method.lineno,
            method.col_offset,
            f"{cls.name}.estimate override never calls clamp_estimate (or "
            "super().estimate); raw estimates must be clamped to [d, n]",
        )
