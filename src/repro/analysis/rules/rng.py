"""R301 — RNG discipline: no global-state randomness outside the generators.

The estimator contract says estimators "take no randomness of their own"
(:mod:`repro.core.base`): reproducibility of every experiment in the
paper reproduction depends on *all* randomness flowing through
explicitly seeded ``numpy.random.Generator`` objects handed down from
the entry point.  A single ``np.random.shuffle`` or ``random.random()``
call reads hidden process-global state, which breaks replay, breaks
sharding (workers share the global stream), and invalidates variance
measurements.

Only the data-generation package (``repro/data``) is exempt — and even
there the shipped code plumbs explicit generators; the exemption simply
scopes the *rule* to where the contract's reproducibility argument
applies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["GlobalRandomState"]

#: ``np.random.<name>`` attributes that do *not* touch global state:
#: constructors for explicit generators and bit generators.
_NUMPY_ALLOWED = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # constructing a *local* legacy state is explicit
    }
)


def _is_numpy_random(value: ast.expr, numpy_aliases: set[str]) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute roots."""
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in numpy_aliases
    )


@register
class GlobalRandomState(Rule):
    """Flag stdlib ``random`` usage and ``np.random.*`` global-state calls."""

    code = "R301"
    name = "global-random-state"
    description = (
        "global-state RNG call (stdlib random or np.random.<fn>); plumb an "
        "explicit numpy Generator instead"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if module.in_package("repro", "data"):
            return
        random_aliases: set[str] = set()
        from_random_names: set[str] = set()
        numpy_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        from_random_names.add(alias.asname or alias.name)
                        yield self.finding(
                            module,
                            node.lineno,
                            node.col_offset,
                            f"'from random import {alias.name}' pulls in the "
                            "process-global RNG; use an explicit "
                            "numpy.random.Generator",
                        )
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if node.module == "numpy" and alias.name == "random":
                            numpy_aliases.add("")  # handled via attribute form
                        elif (
                            node.module == "numpy.random"
                            and alias.name not in _NUMPY_ALLOWED
                        ):
                            yield self.finding(
                                module,
                                node.lineno,
                                node.col_offset,
                                f"'from numpy.random import {alias.name}' is a "
                                "global-state function; construct a Generator "
                                "with default_rng and pass it down",
                            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                root = func.value
                if isinstance(root, ast.Name) and root.id in random_aliases:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"random.{func.attr}() uses the process-global RNG; "
                        "plumb an explicit numpy.random.Generator",
                    )
                elif _is_numpy_random(root, numpy_aliases) and (
                    func.attr not in _NUMPY_ALLOWED
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"np.random.{func.attr}() mutates numpy's global RNG "
                        "state; use a seeded Generator from default_rng",
                    )
            elif isinstance(func, ast.Name) and func.id in from_random_names:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{func.id}() comes from the stdlib random module (global "
                    "state); use an explicit numpy.random.Generator",
                )
