"""R301 — RNG discipline: no global-state randomness outside the generators.

The estimator contract says estimators "take no randomness of their own"
(:mod:`repro.core.base`): reproducibility of every experiment in the
paper reproduction depends on *all* randomness flowing through
explicitly seeded ``numpy.random.Generator`` objects handed down from
the entry point.  A single ``np.random.shuffle`` or ``random.random()``
call reads hidden process-global state, which breaks replay, breaks
sharding (workers share the global stream), and invalidates variance
measurements.

Only the data-generation package (``repro/data``) is exempt — and even
there the shipped code plumbs explicit generators; the exemption simply
scopes the *rule* to where the contract's reproducibility argument
applies.  (R302 in :mod:`repro.analysis.rules.flow` closes the gap the
exemption opens: non-exempt code *calling into* an exempt RNG user.)

The detection itself lives in :mod:`repro.analysis.effects` so the
cross-module flow rules can reuse it; this rule renders each collected
use site as a finding.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.effects import collect_rng_uses
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["GlobalRandomState"]


@register
class GlobalRandomState(Rule):
    """Flag stdlib ``random`` usage and ``np.random.*`` global-state calls."""

    code = "R301"
    name = "global-random-state"
    description = (
        "global-state RNG call (stdlib random or np.random.<fn>); plumb an "
        "explicit numpy Generator instead"
    )

    rationale = (
        'random.random() and np.random.rand() draw from hidden\n'
        'process-global state: any import or library call that also\n'
        'touches it silently reorders every later draw, so runs are only\n'
        "reproducible by accident.  The paper's experiments demand that\n"
        "each trial's randomness be a pure function of its seed, which\n"
        'only explicitly-passed Generators deliver.'
    )
    example = (
        'noise = np.random.normal(size=n)        # R301: global state\n'
        '\n'
        'def trial(rng: np.random.Generator) -> np.ndarray:\n'
        '    return rng.normal(size=n)           # caller owns the seed\n'
    )
    remediation = (
        'Construct a Generator at the experiment boundary\n'
        '(default_rng(seed) or SeedSequence.spawn) and pass it through\n'
        'every function that needs randomness.  repro/data generators are\n'
        'exempt only when driven by seed-owning entry points.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if module.in_package("repro", "data"):
            return
        for use in collect_rng_uses(module.tree):
            yield self.finding(module, use.line, use.col, use.message)
