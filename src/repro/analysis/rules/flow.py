"""Cross-module flow rules: R302 (transitive RNG) and R402 (transitive purity).

R301 and R401 check one function body at a time, which leaves two
transitive gaps the reproducibility argument cannot afford:

* the ``repro/data`` RNG exemption is scoped to *data generators being
  called from experiment entry points that own the seed*.  Non-exempt
  code that calls **into** an exempt global-RNG user inherits hidden
  global state with no local trace — R302 follows the call graph and
  reports the chain;
* the estimator contract makes estimation a pure map from the frequency
  profile.  An estimation method that calls an impure project helper
  (one using the global RNG or writing ``global`` state) is impure by
  composition even though its own body is clean — R402 reports that
  chain.

Both rules use the conservative call graph of
:mod:`repro.analysis.callgraph`: unresolvable calls add no edge, so a
reported path is always a real, readable chain of project functions.
Both are project rules (their truth spans files) and both hold at zero
findings on this tree — they exist to stay at zero.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import ProjectCallGraph, cached_callgraph
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import ProjectRule, register
from repro.analysis.rules.purity import ESTIMATION_METHODS
from repro.analysis.source import SourceModule

__all__ = ["TransitiveGlobalRng", "TransitiveImpurity"]


def _chain(path: list[str]) -> str:
    return " -> ".join(path)


@register
class TransitiveGlobalRng(ProjectRule):
    """R302: non-exempt code reaching a global-RNG use in exempt modules."""

    code = "R302"
    name = "transitive-global-rng"
    description = (
        "function outside repro/data transitively calls an exempt "
        "global-RNG user; plumb an explicit Generator through the chain"
    )

    rationale = (
        "R301's repro/data exemption covers data generators *called by\n"
        'seed-owning entry points*.  Code elsewhere that calls into an\n'
        'exempt global-RNG user inherits hidden global state with no\n'
        'local trace — the violation is only visible on the call graph,\n'
        'which is exactly where this rule looks.'
    )
    example = (
        '# repro/data/synthetic.py (exempt)\n'
        'def draw_zipf(n):\n'
        '    return np.random.zipf(1.2, n)       # allowed here\n'
        '\n'
        '# repro/experiments/ad_hoc.py\n'
        'def quick_check():\n'
        '    return draw_zipf(100)               # R302: inherits the\n'
        '                                        # global state transitively\n'
    )
    remediation = (
        'Pass an explicit numpy Generator down the chain (the exempt\n'
        'callees all accept one), or hoist the call behind a seed-owning\n'
        'entry point.'
    )

    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        graph = cached_callgraph(modules, context)
        targets = {
            key
            for key, node in graph.nodes.items()
            if node.effects.rng_use is not None
            and node.module.in_package("repro", "data")
        }
        if not targets:
            return
        paths: dict[str, list[str]] = {}
        for key in sorted(graph.nodes):
            node = graph.nodes[key]
            if node.module.in_package("repro", "data"):
                continue  # exempt callers are R301's concern, not ours
            path = graph.find_path(key, targets)
            if path is not None:
                paths[key] = path
        # Report only chain *heads*: one finding at the outermost entry,
        # carrying the full chain, instead of one per intermediate link.
        downstream = {
            callee for key in paths for callee in graph.edges.get(key, ())
        }
        for key in sorted(set(paths) - downstream):
            node = graph.nodes[key]
            path = paths[key]
            yield self.finding(
                node.module,
                node.effects.node.lineno,
                node.effects.node.col_offset,
                f"{key} reaches global-RNG state via {_chain(path)}; "
                "the callee is exempt from R301 but this caller is not — "
                "pass an explicit numpy.random.Generator down the chain",
            )


@register
class TransitiveImpurity(ProjectRule):
    """R402: an estimation method transitively calling an impure helper."""

    code = "R402"
    name = "transitive-impurity"
    description = (
        "estimator estimation method transitively calls a function that "
        "uses the global RNG or writes global state"
    )

    rationale = (
        'The estimator contract makes estimation a pure map from the\n'
        'frequency profile.  A clean-looking estimate() that calls an\n'
        'impure project helper is impure by composition: repeated calls\n'
        'can disagree, and parallel sweeps lose repeatability.  Purity\n'
        'must hold over the whole call tree, not one body.'
    )
    example = (
        'class Gee(DistinctValueEstimator):\n'
        '    def _estimate_raw(self, profile):\n'
        '        return _helper(profile)         # R402 if _helper uses\n'
        '                                        # random.random() inside\n'
    )
    remediation = (
        'Make the helper pure (thread state through parameters) or move\n'
        'the impure work out of the estimation path entirely.'
    )

    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        graph = cached_callgraph(modules, context)
        targets = {
            key for key, node in graph.nodes.items() if node.effects.impure
        }
        if not targets:
            return
        for key in sorted(graph.nodes):
            node = graph.nodes[key]
            if not self._is_estimation_method(key, node, context):
                continue
            path = graph.find_path(key, targets)
            if path is None:
                continue
            tail = graph.nodes[path[-1]].effects
            cause = (
                "uses the global RNG"
                if tail.rng_use is not None
                else "writes global state"
            )
            yield self.finding(
                node.module,
                node.effects.node.lineno,
                node.effects.node.col_offset,
                f"{key} is an estimation method but {_chain(path)} "
                f"{cause}; estimation must stay a pure function of the "
                "profile",
            )

    @staticmethod
    def _is_estimation_method(
        key: str, node: object, context: ProjectContext
    ) -> bool:
        parts = key.split(".")
        if len(parts) < 2 or "<locals>" in parts:
            return False
        class_name, method = parts[-2], parts[-1]
        return (
            method in ESTIMATION_METHODS
            and class_name in context.estimator_classes
        )
