"""Float-domain hazard rules: R1301–R1304.

Where R101/R102 guard against *exceptions* (``ZeroDivisionError``,
``math domain error``), this family guards against the silent failure
modes of IEEE-754 float arithmetic: divisions and domain violations
that produce ``inf``/``nan`` without a traceback, overflows in
``exp``-family calls, and NaN values propagating into results and
artifacts.  All four lean on the interval prover — now interprocedural
through :mod:`repro.analysis.dataflow.boundsflow` — so a site whose
safety *can* be proved (from guards, contracts, or inferred callee
summaries) is never reported.

Scopes are deliberate:

* R1301 audits functions that declare a ``@requires``/``@ensures``
  contract, anywhere in the tree: a contracted function advertises
  machine-checked behaviour, so every division inside it must rest on
  a *proof*, not a hunch — otherwise the guarantee silently narrows.
* R1302/R1303 audit the estimator stack (the same packages as R101),
  where a silent ``nan``/``inf`` corrupts an error curve instead of
  crashing.
* R1304 is whole-program: NaN producers flowing into the same sinks
  the determinism rule R1001 protects (estimation results, artifact
  payload writes).
"""

from __future__ import annotations

import ast
import math
from typing import Iterator

from repro.analysis.dataflow import ModuleIntervals, module_intervals
from repro.analysis.dataflow.boundsflow import (
    nan_producer_reason,
    project_bounds,
)
from repro.analysis.effects import _callee_key
from repro.analysis.findings import Finding
from repro.analysis.guards import walk_within_scope
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import ProjectRule, Rule, register
from repro.analysis.rules.determinism import _payload_argument
from repro.analysis.rules.numeric import _in_estimator_stack
from repro.analysis.rules.purity import ESTIMATION_METHODS
from repro.analysis.source import SourceModule

__all__ = [
    "UnprovenNonzeroDivision",
    "FloatDomainViolation",
    "ExpOverflowHazard",
    "NanToSink",
]

#: ``math.exp`` overflows (and ``np.exp`` saturates to ``inf``) once the
#: argument exceeds ``log(sys.float_info.max)`` ~ 709.78.
_EXP_LIMIT = math.log(1.7976931348623157e308)

#: Exp-family callables audited by R1303, with their overflow threshold
#: (``exp2`` overflows at 1024, the others at ``_EXP_LIMIT``).
_EXP_CALLS: dict[str, float] = {
    "exp": _EXP_LIMIT,
    "expm1": _EXP_LIMIT,
    "exp2": 1024.0,
}

#: Receivers whose ``exp``/``log`` attributes we recognise.
_NUMERIC_RECEIVERS = frozenset({"math", "np", "numpy"})

#: Log-family callables audited by R1302 (argument must be positive).
_LOG_CALLS = frozenset({"log", "log2", "log10"})


def _numeric_call(node: ast.Call) -> tuple[str, str] | None:
    """``(receiver, name)`` for ``math.f(x)`` / ``np.f(x)`` calls."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMERIC_RECEIVERS
        and node.args
    ):
        return func.value.id, func.attr
    return None


@register
class UnprovenNonzeroDivision(Rule):
    """R1301: a division inside a contracted function lacks a nonzero proof.

    Contracted functions are the proved surface of the library — their
    ``@ensures`` clauses are discharged statically and re-checked at
    runtime.  A division whose divisor the prover cannot bound away
    from zero is a hole in that surface: under numpy semantics it
    yields ``inf``/``nan`` silently, under scalar semantics it raises
    on exactly the degenerate profiles the contracts exist to pin down.
    """

    code = "R1301"
    name = "unproven-nonzero-division"
    description = (
        "division inside a @requires/@ensures-contracted function whose "
        "divisor the prover cannot show nonzero"
    )

    rationale = (
        'A function that declares a contract advertises machine-checked\n'
        'behaviour; repro lint --prove certifies its ensures clauses.\n'
        'But a proof built on a division that can produce inf/nan (or\n'
        'raise) on degenerate input is vacuous exactly where it matters\n'
        '— the all-singleton and empty-tail profiles.  Unlike R101, a\n'
        'syntactic guard is not enough here: the divisor must be\n'
        '*proved* nonzero, locally or through an interprocedural\n'
        'summary.'
    )
    example = (
        '@ensures("result >= 0.0")\n'
        'def coverage(f1: int, r: int) -> float:\n'
        '    return 1.0 - f1 / r    # R1301: r unproven nonzero\n'
        '\n'
        '@requires("r >= 1")\n'
        '@ensures("result >= 0.0")   # divisor now proved: r >= 1\n'
        '...'
    )
    remediation = (
        'Add the missing @requires clause (callers are checked under\n'
        'REPRO_CONTRACTS=1), guard with an early return the prover can\n'
        'refine on, or derive the divisor from proved-positive\n'
        'quantities.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        intervals = module_intervals(module)
        for analysis in intervals.function_analyses():
            if not analysis.contract:
                continue
            for node in walk_within_scope(analysis.node):
                if not (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod))
                ):
                    continue
                if intervals.proves_nonzero(node.right):
                    continue
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"divisor {ast.unparse(node.right)!r} in contracted "
                    f"function {analysis.qualname!r} is not provably "
                    "nonzero; add a @requires clause or a refinable guard",
                )


@register
class FloatDomainViolation(Rule):
    """R1302: log/sqrt/fractional-pow argument outside the proved domain.

    Covers the numpy spellings R102 deliberately leaves out —
    ``np.log``/``np.log2``/``np.log10``/``np.sqrt`` return
    ``-inf``/``nan`` *silently* — plus fractional constant powers
    (``x ** 0.5`` is a domain error for negative ``x``).
    """

    code = "R1302"
    name = "float-domain-violation"
    description = (
        "np.log/np.sqrt/fractional-power argument not provably inside "
        "its domain (estimator stack only)"
    )

    rationale = (
        'math.log(0) at least raises; np.log(0) quietly emits -inf and\n'
        'a RuntimeWarning nobody reads, and the -inf then rides through\n'
        'every downstream mean and ratio.  Estimator code takes logs\n'
        'and roots of frequencies and probabilities that degenerate\n'
        'exactly when the data does, so each such argument must be\n'
        'provably positive (log), non-negative (sqrt and fractional\n'
        'powers), or clamped.'
    )
    example = (
        'log_p = np.log(p)                      # R1302: p may be 0\n'
        '\n'
        'log_p = np.log(np.maximum(p, 1e-300))  # proved: arg >= 1e-300\n'
    )
    remediation = (
        'Clamp with np.maximum(x, tiny) when zero is a rounding\n'
        'artifact, guard the degenerate case explicitly, or establish\n'
        'positivity via @requires so the prover discharges the site.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if not _in_estimator_stack(module):
            return
        intervals = module_intervals(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, intervals)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
                yield from self._check_pow(module, node, intervals)

    def _check_call(
        self, module: SourceModule, node: ast.Call, intervals: ModuleIntervals
    ) -> Iterator[Finding]:
        spec = _numeric_call(node)
        if spec is None:
            return
        receiver, name = spec
        if receiver == "math":
            return  # R102's territory
        if name not in _LOG_CALLS and name != "sqrt":
            return
        argument = node.args[0]
        proved = (
            intervals.proves_nonnegative(argument)
            if name == "sqrt"
            else intervals.proves_positive(argument)
        )
        if proved:
            return
        domain = ">= 0" if name == "sqrt" else "> 0"
        yield self.finding(
            module,
            node.lineno,
            node.col_offset,
            f"{receiver}.{name} argument {ast.unparse(argument)!r} is not "
            f"provably {domain}; numpy would emit nan/-inf silently — "
            "clamp or guard it",
        )

    def _check_pow(
        self, module: SourceModule, node: ast.BinOp, intervals: ModuleIntervals
    ) -> Iterator[Finding]:
        exponent = node.right
        if not (
            isinstance(exponent, ast.Constant)
            and isinstance(exponent.value, float)
            and not float(exponent.value).is_integer()
        ):
            return
        if intervals.proves_nonnegative(node.left):
            return
        yield self.finding(
            module,
            node.lineno,
            node.col_offset,
            f"base {ast.unparse(node.left)!r} of fractional power "
            f"** {exponent.value!r} is not provably >= 0; a negative "
            "base is a domain error — prove or guard it",
        )


@register
class ExpOverflowHazard(Rule):
    """R1303: exp-family call whose argument is not provably bounded above.

    ``math.exp(710)`` raises ``OverflowError``; ``np.exp(710)``
    saturates to ``inf`` silently.  Estimator code exponentiates
    ``i * log(1-q)``-style terms where ``i`` ranges over observed
    frequencies — unbounded in the data — so each call must either
    prove an upper bound below the overflow threshold or clamp the
    argument (the log-space terms are all mathematically ``<= 0``, so
    ``min(0.0, x)`` is an exact no-op that doubles as the proof).
    """

    code = "R1303"
    name = "exp-overflow-hazard"
    description = (
        "math.exp/np.exp-family argument not provably below the overflow "
        "threshold (estimator stack only)"
    )

    rationale = (
        'Frequencies are unbounded in the input, and exp(i * c) crosses\n'
        'the float ceiling at i*c ~ 709.78.  math.exp then aborts the\n'
        'sweep with OverflowError; np.exp silently floods the estimate\n'
        'with inf.  Every exp on the estimator path is a log-space\n'
        'probability term that is mathematically nonpositive — clamping\n'
        'with min(0.0, .) costs nothing, changes nothing, and makes the\n'
        'bound machine-checkable.'
    )
    example = (
        'term = math.exp(i * log_one_minus_q)            # R1303\n'
        '\n'
        'term = math.exp(min(0.0, i * log_one_minus_q))  # proved: <= 0\n'
    )
    remediation = (
        'Clamp the argument with min(0.0, x) (exact for log-space\n'
        'terms), or bound it via a guard/@requires the prover can see.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if not _in_estimator_stack(module):
            return
        intervals = module_intervals(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            spec = _numeric_call(node)
            if spec is None:
                continue
            _receiver, name = spec
            limit = _EXP_CALLS.get(name)
            if limit is None:
                continue
            argument = node.args[0]
            if intervals.interval_of(argument).hi <= limit:
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"{_receiver}.{name} argument {ast.unparse(argument)!r} "
                f"has no proved upper bound below {limit:.0f}; overflow "
                "is silent inf under numpy — clamp with min(0.0, ...) "
                "or bound it",
            )


@register
class NanToSink(ProjectRule):
    """R1304: a NaN-producing value reaches a result or artifact sink.

    Reuses R1001's sink definitions — estimation-method returns and
    artifact payload writes — with NaN producers in place of
    nondeterminism sources: ``float("nan")``/``np.nan`` literals,
    ``0/0``-shaped divisions, and calls to project functions whose
    inferred bounds summary carries the NaN flag.  Expressions passed
    through ``np.nan_to_num``/``isnan``/``isfinite`` checks in the
    same scope are treated as sanitized.
    """

    code = "R1304"
    name = "nan-to-sink"
    description = (
        "NaN-producing expression flows into an estimation result or "
        "artifact write"
    )

    rationale = (
        'A NaN in an estimate or a results file is worse than a crash:\n'
        'every comparison against it is False, so sanity clamps pass it\n'
        'through, aggregations turn entire sweeps into NaN, and the\n'
        'corruption is only noticed at plot time.  Producers are few\n'
        'and syntactically recognisable — nan literals, 0/0 shapes,\n'
        'and calls whose interprocedural summary says "may be NaN" —\n'
        'so the flow to a sink is worth a hard error.'
    )
    example = (
        'def _estimate_raw(self, profile, n):\n'
        '    return float("nan"), {}        # R1304: NaN into a result\n'
        '\n'
        '    return float("inf"), {}        # inf is clamped by the\n'
        '                                   # sanity bounds; NaN is not\n'
    )
    remediation = (
        'Return float("inf") (the sanity bounds clamp it) or raise for\n'
        'genuinely undefined estimates; sanitize array payloads with\n'
        'np.nan_to_num or an explicit isnan/isfinite check before\n'
        'writing.'
    )

    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        bounds = project_bounds(modules, context)
        for key in sorted(bounds.summaries):
            summary = bounds.summaries[key]
            if not summary.may_nan:
                continue
            if not self._is_result_sink(key, context):
                continue
            chain = "; ".join(bounds.evidence(key)) or "see return sites"
            yield self.finding(
                summary.module,
                summary.node.lineno,
                summary.node.col_offset,
                f"{key} is an estimation method but may return NaN "
                f"({chain}); return inf or raise instead",
            )
        for module in modules:
            yield from self._payload_sinks(module, bounds)

    @staticmethod
    def _is_result_sink(key: str, context: ProjectContext) -> bool:
        parts = key.split(".")
        if len(parts) < 2 or "<locals>" in parts:
            return False
        class_name, method = parts[-2], parts[-1]
        return (
            method in ESTIMATION_METHODS
            and class_name in context.estimator_classes
        )

    def _payload_sinks(
        self, module: SourceModule, bounds: object
    ) -> Iterator[Finding]:
        intervals = module_intervals(module)
        for analysis in intervals.function_analyses():
            sanitized = self._sanitized_names(analysis.node)
            for node in walk_within_scope(analysis.node):
                if not isinstance(node, ast.Call):
                    continue
                payload = _payload_argument(node)
                if payload is None:
                    continue
                if self._roots(payload) & sanitized:
                    continue
                reason = nan_producer_reason(payload, analysis.defs)
                if reason is None:
                    continue
                target = _callee_key(node.func) or "write"
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"{analysis.qualname} writes a possibly-NaN payload "
                    f"({reason}) to an artifact via {target}(); sanitize "
                    "it first",
                )

    @staticmethod
    def _sanitized_names(func: ast.AST) -> set[str]:
        """Names mentioned inside a NaN check/sanitizer call in scope."""
        names: set[str] = set()
        for node in walk_within_scope(func):
            if not isinstance(node, ast.Call):
                continue
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else getattr(node.func, "id", None)
            )
            if attr in ("isnan", "isfinite", "nan_to_num", "isclose"):
                for arg in node.args:
                    for inner in ast.walk(arg):
                        if isinstance(inner, ast.Name):
                            names.add(inner.id)
        return names

    @staticmethod
    def _roots(expr: ast.expr) -> set[str]:
        return {
            node.id for node in ast.walk(expr) if isinstance(node, ast.Name)
        }
