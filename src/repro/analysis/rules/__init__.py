"""reprolint rule set.

Importing this package registers every built-in rule.  Rule modules are
grouped by concern: numeric safety (R1xx/R2xx), RNG discipline (R3xx),
estimator purity (R4xx), registry completeness (R5xx), public-API
drift (R6xx), analyzer hygiene (R7xx: stale suppressions,
provably-violated contracts), logging hygiene (R8xx: no print or
root-logger calls in library code), exception hygiene (R9xx: no
bare or silently-swallowed exception handlers), whole-program
determinism (R10xx: taint from nondeterminism sources reaching results
or artifacts), process safety (R11xx/R12xx: worker-shared module
state, non-atomic artifact writes), and float-domain hazards (R13xx:
unproven divisions in contracted functions, silent nan/inf domains,
exp overflow, NaN flow to sinks).
"""

from __future__ import annotations

from repro.analysis.rules.base import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
    resolve_rules,
)

# Importing for side effect: each module registers its rules.
from repro.analysis.rules import contracts as _contracts
from repro.analysis.rules import determinism as _determinism
from repro.analysis.rules import exceptions as _exceptions
from repro.analysis.rules import exports as _exports
from repro.analysis.rules import float_domain as _float_domain
from repro.analysis.rules import flow as _flow
from repro.analysis.rules import logging_hygiene as _logging_hygiene
from repro.analysis.rules import numeric as _numeric
from repro.analysis.rules import process_safety as _process_safety
from repro.analysis.rules import purity as _purity
from repro.analysis.rules import registry_sync as _registry_sync
from repro.analysis.rules import rng as _rng
from repro.analysis.rules import suppressions as _suppressions

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "resolve_rules",
]

del (
    _contracts,
    _determinism,
    _exceptions,
    _exports,
    _float_domain,
    _flow,
    _logging_hygiene,
    _numeric,
    _process_safety,
    _purity,
    _registry_sync,
    _rng,
    _suppressions,
)
