"""R601 — public-API drift: ``__all__`` must exist, be sound, and be complete.

The repo ships ``py.typed`` and promises a stable import surface per
module.  Drift between what a module *defines* and what it *declares*
shows up as broken ``from repro.x import *`` in notebooks and as
docs/reference pages that miss new estimators.  Three checks:

* a module defining public functions or classes must declare ``__all__``
  as a literal list/tuple of strings at top level;
* every name in ``__all__`` must actually be bound at top level
  (definition, assignment, or import);
* every *public* top-level function/class must appear in ``__all__``
  (constants are advisory and exempt — re-exported values and data
  tables routinely stay out of ``__all__``);
* dynamic mutation (``__all__.append`` / ``+=``) is flagged: the whole
  point of the declaration is that tools can read it statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["ExportsDrift"]


def _literal_names(value: ast.expr) -> list[str] | None:
    """String elements of a list/tuple literal, or None if not literal."""
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    names: list[str] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append(element.value)
        else:
            return None
    return names


@register
class ExportsDrift(Rule):
    """Flag missing, unsound, incomplete, or dynamic ``__all__``."""

    code = "R601"
    name = "exports-drift"
    description = (
        "__all__ missing, lists an unbound name, omits a public def/class, "
        "or is mutated dynamically"
    )

    rationale = (
        "__all__ is the module's public-API contract: star-imports,\n"
        'docs, and the API-stability tests all read it.  An omitted\n'
        'public def is an accidental private; a listed-but-unbound name\n'
        'breaks import *; dynamic mutation makes the contract unknowable\n'
        'statically.'
    )
    example = (
        '__all__ = ["hash64"]\n'
        '\n'
        'def hash64(values, seed=0): ...\n'
        'def stable_mix(values): ...        # R601: public but not exported\n'
    )
    remediation = (
        'List every public top-level def/class in a literal __all__\n'
        '(or prefix genuinely internal names with an underscore).'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        tree = module.tree
        declared: list[str] | None = None
        declared_line = 0
        bound: set[str] = set()
        public_defs: dict[str, ast.stmt] = {}

        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(statement.name)
                if not statement.name.startswith("_"):
                    public_defs[statement.name] = statement
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            declared = _literal_names(statement.value)
                            declared_line = statement.lineno
                            if declared is None:
                                yield self.finding(
                                    module,
                                    statement.lineno,
                                    statement.col_offset,
                                    "__all__ must be a literal list/tuple of "
                                    "strings so tools can read it statically",
                                )
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                bound.add(element.id)
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    bound.add(statement.target.id)
            elif isinstance(statement, (ast.Import, ast.ImportFrom)):
                for alias in statement.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.AugAssign):
                if (
                    isinstance(statement.target, ast.Name)
                    and statement.target.id == "__all__"
                ):
                    yield self.finding(
                        module,
                        statement.lineno,
                        statement.col_offset,
                        "__all__ += ... defeats static readers; fold the "
                        "names into the literal declaration",
                    )
            elif isinstance(statement, (ast.If, ast.Try)):
                # Conditional imports (typing gates, optional deps) bind
                # names too; walk one level for Import/ImportFrom/defs.
                for node in ast.walk(statement):
                    if isinstance(node, (ast.Import, ast.ImportFrom)):
                        for alias in node.names:
                            if alias.name != "*":
                                bound.add(
                                    alias.asname or alias.name.split(".")[0]
                                )
                    elif isinstance(
                        node,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        bound.add(node.name)
                    elif isinstance(node, ast.Assign):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                bound.add(target.id)

        # Dynamic mutation via method call anywhere at top level.
        for statement in tree.body:
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Call
            ):
                func = statement.value.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "__all__"
                ):
                    yield self.finding(
                        module,
                        statement.lineno,
                        statement.col_offset,
                        f"__all__.{func.attr}(...) defeats static readers; "
                        "fold the names into the literal declaration",
                    )

        if declared is None:
            if public_defs:
                first = min(public_defs.values(), key=lambda s: s.lineno)
                yield self.finding(
                    module,
                    first.lineno,
                    first.col_offset,
                    f"module defines public names "
                    f"({', '.join(sorted(public_defs))}) but declares no "
                    "__all__",
                )
            return

        for name in declared:
            if name not in bound:
                yield self.finding(
                    module,
                    declared_line,
                    0,
                    f"__all__ lists {name!r} but the module never binds it",
                )
        declared_set = set(declared)
        for name, statement in sorted(public_defs.items()):
            if name not in declared_set:
                yield self.finding(
                    module,
                    statement.lineno,
                    statement.col_offset,
                    f"public name {name!r} is missing from __all__",
                )
