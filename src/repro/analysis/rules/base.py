"""Rule base classes and the rule registry.

A rule is a small object with a stable ``code`` (``R101`` …), a
kebab-case ``name``, and a ``check`` method yielding
:class:`~repro.analysis.findings.Finding` records.  Most rules examine
one module at a time (:class:`Rule`); rules whose truth spans files —
registry completeness, for example — subclass :class:`ProjectRule` and
receive every scanned module plus the shared
:class:`~repro.analysis.project.ProjectContext`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.source import SourceModule
from repro.errors import InvalidParameterError

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "resolve_rules",
]

_REGISTRY: dict[str, type["Rule"]] = {}


class Rule(ABC):
    """One lint rule checking a single module at a time."""

    #: Stable finding code, e.g. ``"R101"``.
    code: str = ""

    #: Kebab-case human name, e.g. ``"unguarded-division"``.
    name: str = ""

    #: One-line description shown by ``repro lint --list-rules``.
    description: str = ""

    #: Why the rule exists — the failure mode it prevents.  Shown by
    #: ``repro lint --explain CODE`` and compiled into ``docs/rules.md``.
    rationale: str = ""

    #: A minimal violating snippet (with the fixed form where useful).
    example: str = ""

    #: How to make a finding go away legitimately.
    remediation: str = ""

    @abstractmethod
    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield findings for one module."""

    def finding(
        self, module: SourceModule, line: int, col: int, message: str
    ) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(
            path=module.path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            rule=self.name,
        )


class ProjectRule(Rule):
    """A rule whose findings depend on the whole scanned tree."""

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        """Project rules run once via :meth:`check_project`."""
        return iter(())

    @abstractmethod
    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        """Yield findings after seeing every module."""


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.code or not rule_class.name:
        raise InvalidParameterError(
            f"rule {rule_class.__name__} must define both code and name"
        )
    existing = _REGISTRY.get(rule_class.code)
    if existing is not None and existing is not rule_class:
        raise InvalidParameterError(
            f"duplicate rule code {rule_class.code!r}: "
            f"{existing.__name__} vs {rule_class.__name__}"
        )
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules keyed by code, in code order."""
    return dict(sorted(_REGISTRY.items()))


def get_rule(code: str) -> type[Rule]:
    """Look up one rule class by its code."""
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown rule code {code!r}; known rules: {known}"
        ) from None


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate the requested rules (all by default, minus ignores)."""
    codes = list(all_rules())
    if select is not None:
        wanted = list(select)
        for code in wanted:
            get_rule(code)  # validate early with a helpful error
        codes = [code for code in codes if code in set(wanted)]
    if ignore is not None:
        dropped = set(ignore)
        for code in dropped:
            get_rule(code)
        codes = [code for code in codes if code not in dropped]
    return [_REGISTRY[code]() for code in codes]
