"""R901 — exception hygiene: no bare or silently-swallowed handlers.

A reproduction's credibility rests on failures being *visible*: a
``except: pass`` around a sampler or a journal write converts a wrong
answer into a quiet one.  Library code under ``repro/`` therefore must
not:

* use a bare ``except:`` — it catches ``SystemExit`` and
  ``KeyboardInterrupt``, so a Ctrl-C (or a supervised worker's
  termination) can be swallowed by accident;
* catch ``Exception`` / ``BaseException`` (alone or in a tuple) and then
  neither re-raise nor log — the classic swallowed exception.  A broad
  handler is legitimate exactly when the failure stays observable: a
  ``raise`` (even of a translated error) or a logging call in the
  handler body satisfies the rule.

Narrow handlers (``except ImportError:``, ``except ReproError:``) are
out of scope — catching a *specific* expected failure and substituting a
fallback is ordinary control flow.  Sites that must swallow broadly by
design (a fault-injection shim, a CLI top-level guard) use the standard
suppression pragma (``# reprolint: disable=R901 - reason``), which keeps
each exemption visible and individually justified.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import Rule, register
from repro.analysis.source import SourceModule

__all__ = ["ExceptionHygiene"]

#: Names whose capture makes a handler "broad": everything (and worse).
_BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Method names that count as logging the failure.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log", "warn"}
)


def _broad_name(annotation: ast.expr | None) -> str | None:
    """The broad exception name a handler catches, or None when narrow.

    Handles ``except Exception:``, ``except (ValueError, Exception):``,
    and dotted spellings like ``builtins.Exception``.
    """
    if annotation is None:
        return None
    candidates: list[ast.expr] = (
        list(annotation.elts) if isinstance(annotation, ast.Tuple) else [annotation]
    )
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD_NAMES:
            return candidate.id
        if isinstance(candidate, ast.Attribute) and candidate.attr in _BROAD_NAMES:
            return candidate.attr
    return None


def _keeps_failure_visible(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or logs the failure."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
                return True
    return False


@register
class ExceptionHygiene(Rule):
    """Flag bare ``except:`` and silently-swallowed broad handlers."""

    code = "R901"
    name = "exception-hygiene"
    description = (
        "bare except:, or a broad except Exception handler that neither "
        "re-raises nor logs; failures in library code must stay visible"
    )

    rationale = (
        'In an estimation pipeline a swallowed exception does not crash —\n'
        'it ships a wrong number.  A bare except even catches\n'
        'KeyboardInterrupt/SystemExit, making runs unkillable.  Broad\n'
        'handlers that neither re-raise nor log convert every future bug\n'
        'in the protected block into silent data corruption.'
    )
    example = (
        'try:\n'
        '    stats = analyze(column)\n'
        'except Exception:\n'
        '    stats = None                    # R901: the failure vanishes\n'
        '\n'
        'except Exception:\n'
        '    _LOG.exception("analyze failed for %s", column.name)\n'
        '    raise                           # visible and attributable\n'
    )
    remediation = (
        'Catch the narrowest exception the block can actually raise, and\n'
        'either re-raise (possibly wrapped in a project error) or log at\n'
        'warning+ with context before a *documented* fallback.'
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    "bare except: also catches SystemExit and "
                    "KeyboardInterrupt; catch Exception or narrower",
                )
                continue
            broad = _broad_name(node.type)
            if broad is not None and not _keeps_failure_visible(node):
                yield self.finding(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"except {broad} swallows the failure silently; "
                    "re-raise, narrow the exception type, or log what "
                    "was suppressed",
                )
