"""Whole-program determinism rules: R1001 (value taint), R1002 (order taint).

The local rules pin down *direct* hazards (R301: global RNG, R801:
float accumulation patterns).  These two close the transitive gap for
nondeterminism generally: a clock read, an unseeded RNG, an environment
variable, ``id()``/``hash()``, or a set iteration anywhere in the tree
must not *flow into* the quantities the paper's claims are about.  Both
rules consume the interprocedural taint summaries of
:mod:`repro.analysis.dataflow.taintflow` and differ only in which label
family they consider and what the remediation is.

The sinks — where tainted data becomes a correctness problem — are:

* **estimator-stack and ``repro/db`` returns**: any function defined
  under the estimator stack (core/estimators/frequency/sketches/
  sampling) or the results database returns tainted data;
* **estimation methods anywhere**: ``estimate``/``_estimate_raw``/
  ``_interval``/``__call__`` on a known estimator class;
* **worker task functions**: anything resolvably submitted to
  ``run_sweep``/pool ``submit`` — its return value is a recorded
  result;
* **artifact payloads**: the data argument of ``atomic_write``,
  ``save_column``, ``Path.write_text``/``write_bytes``, and numpy
  savers, in any module — what lands on disk must be reproducible.

``repro/obs`` is exempt from R1001: telemetry records wall-clock spans
and environment fingerprints *by design*, and its separation from
results is enforced dynamically (manifest comparison in CI) rather
than statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallSiteResolver, module_name
from repro.analysis.dataflow.taint import (
    ORDER_LABELS,
    VALUE_LABELS,
    Taint,
)
from repro.analysis.dataflow.taintflow import ProjectTaint, project_taint
from repro.analysis.effects import _callee_key
from repro.analysis.findings import Finding
from repro.analysis.guards import walk_within_scope
from repro.analysis.project import ProjectContext
from repro.analysis.rules.base import ProjectRule, register
from repro.analysis.rules.numeric import _in_estimator_stack
from repro.analysis.rules.purity import ESTIMATION_METHODS
from repro.analysis.source import SourceModule

__all__ = ["NondetTaint", "OrderSensitivity"]

#: Call targets (by last dotted component) whose listed argument is an
#: artifact payload; taint reaching it lands on disk.
_ARTIFACT_DATA_ARGS: dict[str, tuple[int, str | None]] = {
    "atomic_write": (1, "data"),
    "save_column": (0, "values"),
    "write_text": (0, "data"),
    "write_bytes": (0, "data"),
    "save": (1, "arr"),
    "savetxt": (1, "X"),
}

#: ``save``/``savetxt`` only count when called on a numpy alias —
#: matching every ``.save()`` method would drown the rule in noise.
_NUMPY_ONLY = frozenset({"save", "savetxt"})


def _is_sink_module(module: SourceModule) -> bool:
    return _in_estimator_stack(module) or module.in_package("repro", "db")


def _is_estimation_method(key: str, context: ProjectContext) -> bool:
    parts = key.split(".")
    if len(parts) < 2 or "<locals>" in parts:
        return False
    class_name, method = parts[-2], parts[-1]
    return (
        method in ESTIMATION_METHODS
        and class_name in context.estimator_classes
    )


def _task_roots(
    taint: ProjectTaint, modules: list[SourceModule]
) -> dict[str, str]:
    """Resolved worker-task functions → the submission site describing them."""
    roots: dict[str, str] = {}
    for module in modules:
        modname = module_name(module.path)
        resolver = CallSiteResolver(taint.graph, module)
        for key, node in taint.graph.nodes.items():
            if not key.startswith(modname + ".") or node.module is not module:
                continue
            for task in node.effects.submitted_tasks:
                if task.callee is None:
                    continue
                target = resolver.resolve(task.callee, node.effects.qualname)
                if target is not None and target not in roots:
                    roots[target] = (
                        f"submitted as a worker task at "
                        f"{module.path}:{task.line}"
                    )
    return roots


class _TaintRule(ProjectRule):
    """Shared sink enumeration for the two taint-label families."""

    #: Label family this rule reports on (set by subclasses).
    labels: frozenset[str] = frozenset()
    #: Remediation tail appended to every message.
    advice: str = ""
    #: Module subtrees exempt from this family.
    exempt_packages: tuple[tuple[str, ...], ...] = ()

    def check_project(
        self, modules: list[SourceModule], context: ProjectContext
    ) -> Iterator[Finding]:
        taint = project_taint(modules, context)
        roots = _task_roots(taint, modules)
        reported: set[tuple[str, int]] = set()

        for key in sorted(taint.summaries):
            summary = taint.summaries[key]
            if "<locals>" in key or self._exempt(summary.module):
                continue
            why: str | None = None
            if _is_sink_module(summary.module):
                why = "is in the estimator/results stack"
            elif _is_estimation_method(key, context):
                why = "is an estimation method"
            elif key in roots:
                why = roots[key]
            if why is None:
                continue
            hit = summary.return_taint.restricted(self.labels)
            if hit.is_clean:
                continue
            marker = (summary.module.path, summary.node.lineno)
            if marker in reported:
                continue
            reported.add(marker)
            yield self.finding(
                summary.module,
                summary.node.lineno,
                summary.node.col_offset,
                f"{key} {why} but returns {hit.describe()}-tainted data "
                f"({self._evidence(taint, key, hit)}); {self.advice}",
            )

        yield from self._artifact_payloads(taint, modules, reported)

    # -- artifact payload sinks ---------------------------------------
    def _artifact_payloads(
        self,
        taint: ProjectTaint,
        modules: list[SourceModule],
        reported: set[tuple[str, int]],
    ) -> Iterator[Finding]:
        for module in modules:
            if self._exempt(module):
                continue
            modname = module_name(module.path)
            for key, node in sorted(taint.graph.nodes.items()):
                if not key.startswith(modname + ".") or node.module is not module:
                    continue
                for call in walk_within_scope(node.effects.node):
                    if not isinstance(call, ast.Call):
                        continue
                    payload = _payload_argument(call)
                    if payload is None:
                        continue
                    hit = taint.eval_argument(key, payload).restricted(
                        self.labels
                    )
                    if hit.is_clean:
                        continue
                    marker = (module.path, call.lineno)
                    if marker in reported:
                        continue
                    reported.add(marker)
                    target = _callee_key(call.func) or "write"
                    yield self.finding(
                        module,
                        call.lineno,
                        call.col_offset,
                        f"{key} writes {hit.describe()}-tainted data to an "
                        f"artifact via {target}(); {self.advice}",
                    )

    # -- helpers -------------------------------------------------------
    def _exempt(self, module: SourceModule) -> bool:
        return any(
            module.in_package(*parts) for parts in self.exempt_packages
        )

    def _evidence(self, taint: ProjectTaint, key: str, hit: Taint) -> str:
        sites = taint.evidence(key, hit.labels)
        if not sites:
            return "via a called project function"
        return "; ".join(sites)


def _payload_argument(call: ast.Call) -> ast.expr | None:
    """The artifact-payload expression of a write call, if this is one."""
    dotted = _callee_key(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    last = parts[-1]
    spec = _ARTIFACT_DATA_ARGS.get(last)
    if spec is None:
        return None
    if last in _NUMPY_ONLY and parts[0] not in ("np", "numpy"):
        return None
    index, keyword_name = spec
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg == keyword_name:
            return keyword.value
    if index < len(call.args):
        arg = call.args[index]
        return None if isinstance(arg, ast.Starred) else arg
    return None


@register
class NondetTaint(_TaintRule):
    """R1001: nondeterministic values reaching results or artifacts."""

    code = "R1001"
    name = "nondeterminism-taint"
    description = (
        "unseeded RNG, clock, environment, or id()/hash() data flows "
        "into an estimator result or written artifact"
    )

    rationale = (
        'A result is only reproducible if it is a function of the data\n'
        'and the experiment seed.  This rule taints every nondeterminism\n'
        'source — OS-entropy RNG construction, clock reads, os.environ,\n'
        'id()/builtin hash() — and follows the data interprocedurally\n'
        'through the call graph.  It fires when taint reaches a sink:\n'
        'an estimator-stack or results-db return value, an estimation\n'
        "method, a pool-submitted task's result, or the payload of an\n"
        'artifact write.  Seeded construction (default_rng(seed),\n'
        'SeedSequence(entropy=...)) is the sanctioned sanitizer and is\n'
        'never a source.  repro/obs is exempt: telemetry records clocks\n'
        'and environment fingerprints by design, and its separation from\n'
        'results is enforced dynamically in CI.'
    )
    example = (
        'def hash64(values):\n'
        '    return np.fromiter((hash(v) for v in values), np.uint64)\n'
        '    # R1001: builtin hash() is salted by PYTHONHASHSEED, so the\n'
        '    # sketch contents differ across worker processes\n'
        '\n'
        'def fresh_rng():\n'
        '    return np.random.default_rng()      # R1001 at its callers:\n'
        '                                        # OS-entropy randomness\n'
    )
    remediation = (
        "Derive every random stream from the experiment's SeedSequence,\n"
        'replace builtin hash() with a keyed digest (see\n'
        'repro.sketches.hashing), and keep clock/env values in telemetry\n'
        '(repro/obs), never in result payloads.'
    )
    labels = VALUE_LABELS
    advice = (
        "results must be a function of the data and the experiment seed "
        "alone — derive randomness from the run's SeedSequence and keep "
        "clock/env/identity values out of result payloads"
    )
    exempt_packages = (("repro", "obs"),)


@register
class OrderSensitivity(_TaintRule):
    """R1002: set/dict iteration order reaching a result or artifact."""

    code = "R1002"
    name = "order-sensitivity"
    description = (
        "set iteration or filesystem-enumeration order flows into a "
        "result or artifact (float reduction order changes the value)"
    )

    rationale = (
        'Iterating a set (or an OS directory listing) yields a\n'
        'deterministic *collection* in an arbitrary *order*.  The moment\n'
        'that order meets a non-commutative reduction — float summation,\n'
        'first-wins dict construction, truncation — it becomes a value\n'
        'difference between two runs of the same seed.  The taint engine\n'
        'tracks order-taint separately from value-taint; sorted(), min/\n'
        'max/len/any/all erase it (their results are order-independent),\n'
        'while sum() deliberately does not, because float addition is not\n'
        'associative.'
    )
    example = (
        'def total_weight(weights: set[float]) -> float:\n'
        '    return sum(weights)        # R1002: float sum order varies\n'
        '\n'
        'def total_weight(weights: set[float]) -> float:\n'
        '    return sum(sorted(weights))    # fixed reduction order\n'
    )
    remediation = (
        'Sort before reducing or serializing (sorted() is the sanctioned\n'
        'sanitizer), or keep the data in an ordered container from the\n'
        'start.'
    )
    labels = ORDER_LABELS
    advice = (
        "iteration order of sets and directory listings is not stable "
        "across processes — sort before reducing or serializing"
    )
