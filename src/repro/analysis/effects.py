"""Per-function effect summaries: global-RNG use, global writes, call sites.

R301 detects *direct* global-RNG use from one module's AST.  The
cross-module flow rules (R302/R402 in :mod:`repro.analysis.rules.flow`)
need the same detection as a reusable summary — "which functions of this
module touch hidden global state, and whom do they call" — so the
collector lives here and both consumers share it.  The detection logic
and message strings are exactly R301's; the rule now delegates to
:func:`collect_rng_uses`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.guards import walk_within_scope
from repro.analysis.source import SourceModule

__all__ = [
    "FunctionEffects",
    "RngUse",
    "collect_rng_uses",
    "iter_defined_functions",
    "module_effects",
]

#: ``np.random.<name>`` attributes that do *not* touch global state:
#: constructors for explicit generators and bit generators.
_NUMPY_ALLOWED = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # constructing a *local* legacy state is explicit
    }
)


@dataclass(frozen=True)
class RngUse:
    """One global-RNG use site (import or call) with its R301 message."""

    line: int
    col: int
    message: str


@dataclass
class _RngAliases:
    """Module-level names bound to the stdlib/numpy random machinery."""

    random_aliases: set[str] = field(default_factory=set)
    from_random_names: set[str] = field(default_factory=set)
    numpy_aliases: set[str] = field(default_factory=set)


def _is_numpy_random(value: ast.expr, numpy_aliases: set[str]) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute roots."""
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in numpy_aliases
    )


def _collect_aliases(tree: ast.AST) -> tuple[_RngAliases, list[RngUse]]:
    """Gather RNG-related import aliases plus findings for bad imports."""
    aliases = _RngAliases()
    uses: list[RngUse] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.random_aliases.add(alias.asname or "random")
                if alias.name == "numpy":
                    aliases.numpy_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    aliases.from_random_names.add(alias.asname or alias.name)
                    uses.append(
                        RngUse(
                            node.lineno,
                            node.col_offset,
                            f"'from random import {alias.name}' pulls in the "
                            "process-global RNG; use an explicit "
                            "numpy.random.Generator",
                        )
                    )
            elif node.module in ("numpy.random", "numpy"):
                for alias in node.names:
                    if node.module == "numpy" and alias.name == "random":
                        aliases.numpy_aliases.add("")  # attribute form
                    elif (
                        node.module == "numpy.random"
                        and alias.name not in _NUMPY_ALLOWED
                    ):
                        uses.append(
                            RngUse(
                                node.lineno,
                                node.col_offset,
                                f"'from numpy.random import {alias.name}' is a "
                                "global-state function; construct a Generator "
                                "with default_rng and pass it down",
                            )
                        )
    return aliases, uses


def _call_use(node: ast.AST, aliases: _RngAliases) -> RngUse | None:
    """The global-RNG use a call expresses, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        root = func.value
        if isinstance(root, ast.Name) and root.id in aliases.random_aliases:
            return RngUse(
                node.lineno,
                node.col_offset,
                f"random.{func.attr}() uses the process-global RNG; "
                "plumb an explicit numpy.random.Generator",
            )
        if _is_numpy_random(root, aliases.numpy_aliases) and (
            func.attr not in _NUMPY_ALLOWED
        ):
            return RngUse(
                node.lineno,
                node.col_offset,
                f"np.random.{func.attr}() mutates numpy's global RNG "
                "state; use a seeded Generator from default_rng",
            )
    elif isinstance(func, ast.Name) and func.id in aliases.from_random_names:
        return RngUse(
            node.lineno,
            node.col_offset,
            f"{func.id}() comes from the stdlib random module (global "
            "state); use an explicit numpy.random.Generator",
        )
    return None


def collect_rng_uses(tree: ast.AST) -> list[RngUse]:
    """Every global-RNG use in one module, import sites first.

    This is R301's full detection pass; the rule turns each
    :class:`RngUse` into a finding verbatim.
    """
    aliases, uses = _collect_aliases(tree)
    for node in ast.walk(tree):
        use = _call_use(node, aliases)
        if use is not None:
            uses.append(use)
    return uses


def iter_defined_functions(
    tree: ast.AST,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """``(qualname, node)`` for every function/method defined in a module."""

    def walk(
        node: ast.AST, prefix: str
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


def _callee_key(func: ast.expr) -> str | None:
    """Dotted textual form of a call target (``f``, ``self.f``, ``m.sub.f``)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionEffects:
    """What one function touches directly, plus whom it calls."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: First direct global-RNG use inside the body, if any.
    rng_use: RngUse | None = None
    #: The body contains a ``global``/``nonlocal`` declaration.
    declares_global: bool = False
    #: Call targets as written in source (``f``, ``self.f``, ``mod.f``).
    calls: set[str] = field(default_factory=set)

    @property
    def impure(self) -> bool:
        """Directly touches state the estimator contract forbids."""
        return self.rng_use is not None or self.declares_global


def module_effects(module: SourceModule) -> dict[str, FunctionEffects]:
    """Effect summary for every function defined in ``module``.

    Nested defs get their own entries (``outer.<locals>.inner``); each
    summary covers only its own scope, so effects of an inner function
    are not attributed to the outer one — the call edge carries them.
    """
    aliases, _import_uses = _collect_aliases(module.tree)
    effects: dict[str, FunctionEffects] = {}
    for qualname, func in iter_defined_functions(module.tree):
        summary = FunctionEffects(qualname=qualname, node=func)
        for node in walk_within_scope(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                summary.declares_global = True
            use = _call_use(node, aliases)
            if use is not None and summary.rng_use is None:
                summary.rng_use = use
            if isinstance(node, ast.Call):
                key = _callee_key(node.func)
                if key is not None:
                    summary.calls.add(key)
        effects[qualname] = summary
    return effects
