"""Per-function effect summaries: global-RNG use, global writes, call sites.

R301 detects *direct* global-RNG use from one module's AST.  The
cross-module flow rules (R302/R402 in :mod:`repro.analysis.rules.flow`)
need the same detection as a reusable summary — "which functions of this
module touch hidden global state, and whom do they call" — so the
collector lives here and both consumers share it.  The detection logic
and message strings are exactly R301's; the rule now delegates to
:func:`collect_rng_uses`.

The determinism/process-safety rule family (R1001–R1201) extends the
same summaries with three more observation kinds, all alias-aware and
purely syntactic:

* :class:`NondetSources` classifies calls/expressions that *introduce*
  nondeterminism — OS-entropy RNG construction, clock reads,
  ``os.environ``, ``id()``/``hash()``, set literals — into taint labels
  (:mod:`repro.analysis.dataflow.taint`).  Seeded construction
  (``default_rng(seed)``, ``SeedSequence(entropy)``) is deliberately
  *not* a source: an explicit seed is the sanctioned sanitizer.
* :func:`collect_artifact_writes` finds raw artifact writes —
  ``open(..., "w")``, ``Path.write_text`` — that bypass
  ``repro.resilience.atomic_write`` (rule R1201's evidence).
* :class:`FunctionEffects.global_mutations` / ``submitted_tasks`` record
  mutations of module-level mutable state and task submissions to
  ``run_sweep``/pool ``submit`` (rule R1101's evidence).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow.taint import (
    CLOCK,
    ENV,
    IDENTITY,
    RNG,
    SET_ORDER,
)
from repro.analysis.guards import walk_within_scope
from repro.analysis.source import SourceModule

__all__ = [
    "FunctionEffects",
    "RngUse",
    "TaintSource",
    "NondetSources",
    "ArtifactWrite",
    "GlobalMutation",
    "SubmittedTask",
    "collect_rng_uses",
    "collect_artifact_writes",
    "iter_defined_functions",
    "module_effects",
    "module_mutable_globals",
]

#: ``np.random.<name>`` attributes that do *not* touch global state:
#: constructors for explicit generators and bit generators.
_NUMPY_ALLOWED = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # constructing a *local* legacy state is explicit
    }
)


@dataclass(frozen=True)
class RngUse:
    """One global-RNG use site (import or call) with its R301 message."""

    line: int
    col: int
    message: str


@dataclass
class _RngAliases:
    """Module-level names bound to the stdlib/numpy random machinery."""

    random_aliases: set[str] = field(default_factory=set)
    from_random_names: set[str] = field(default_factory=set)
    numpy_aliases: set[str] = field(default_factory=set)


def _is_numpy_random(value: ast.expr, numpy_aliases: set[str]) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute roots."""
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in numpy_aliases
    )


def _collect_aliases(tree: ast.AST) -> tuple[_RngAliases, list[RngUse]]:
    """Gather RNG-related import aliases plus findings for bad imports."""
    aliases = _RngAliases()
    uses: list[RngUse] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.random_aliases.add(alias.asname or "random")
                if alias.name == "numpy":
                    aliases.numpy_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    aliases.from_random_names.add(alias.asname or alias.name)
                    uses.append(
                        RngUse(
                            node.lineno,
                            node.col_offset,
                            f"'from random import {alias.name}' pulls in the "
                            "process-global RNG; use an explicit "
                            "numpy.random.Generator",
                        )
                    )
            elif node.module in ("numpy.random", "numpy"):
                for alias in node.names:
                    if node.module == "numpy" and alias.name == "random":
                        aliases.numpy_aliases.add("")  # attribute form
                    elif (
                        node.module == "numpy.random"
                        and alias.name not in _NUMPY_ALLOWED
                    ):
                        uses.append(
                            RngUse(
                                node.lineno,
                                node.col_offset,
                                f"'from numpy.random import {alias.name}' is a "
                                "global-state function; construct a Generator "
                                "with default_rng and pass it down",
                            )
                        )
    return aliases, uses


def _call_use(node: ast.AST, aliases: _RngAliases) -> RngUse | None:
    """The global-RNG use a call expresses, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        root = func.value
        if isinstance(root, ast.Name) and root.id in aliases.random_aliases:
            return RngUse(
                node.lineno,
                node.col_offset,
                f"random.{func.attr}() uses the process-global RNG; "
                "plumb an explicit numpy.random.Generator",
            )
        if _is_numpy_random(root, aliases.numpy_aliases) and (
            func.attr not in _NUMPY_ALLOWED
        ):
            return RngUse(
                node.lineno,
                node.col_offset,
                f"np.random.{func.attr}() mutates numpy's global RNG "
                "state; use a seeded Generator from default_rng",
            )
    elif isinstance(func, ast.Name) and func.id in aliases.from_random_names:
        return RngUse(
            node.lineno,
            node.col_offset,
            f"{func.id}() comes from the stdlib random module (global "
            "state); use an explicit numpy.random.Generator",
        )
    return None


def collect_rng_uses(tree: ast.AST) -> list[RngUse]:
    """Every global-RNG use in one module, import sites first.

    This is R301's full detection pass; the rule turns each
    :class:`RngUse` into a finding verbatim.
    """
    aliases, uses = _collect_aliases(tree)
    for node in ast.walk(tree):
        use = _call_use(node, aliases)
        if use is not None:
            uses.append(use)
    return uses


def iter_defined_functions(
    tree: ast.AST,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """``(qualname, node)`` for every function/method defined in a module."""

    def walk(
        node: ast.AST, prefix: str
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child
                yield from walk(child, f"{qualname}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


def _callee_key(func: ast.expr) -> str | None:
    """Dotted textual form of a call target (``f``, ``self.f``, ``m.sub.f``)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class FunctionEffects:
    """What one function touches directly, plus whom it calls."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: First direct global-RNG use inside the body, if any.
    rng_use: RngUse | None = None
    #: The body contains a ``global``/``nonlocal`` declaration.
    declares_global: bool = False
    #: Call targets as written in source (``f``, ``self.f``, ``mod.f``).
    calls: set[str] = field(default_factory=set)
    #: Mutations of module-level mutable state (R1101 evidence).
    global_mutations: list["GlobalMutation"] = field(default_factory=list)
    #: Task functions handed to ``run_sweep``/pool ``submit`` here.
    submitted_tasks: list["SubmittedTask"] = field(default_factory=list)

    @property
    def impure(self) -> bool:
        """Directly touches state the estimator contract forbids."""
        return self.rng_use is not None or self.declares_global


def module_effects(module: SourceModule) -> dict[str, FunctionEffects]:
    """Effect summary for every function defined in ``module``.

    Nested defs get their own entries (``outer.<locals>.inner``); each
    summary covers only its own scope, so effects of an inner function
    are not attributed to the outer one — the call edge carries them.
    """
    aliases, _import_uses = _collect_aliases(module.tree)
    mutable_globals = module_mutable_globals(module.tree)
    effects: dict[str, FunctionEffects] = {}
    for qualname, func in iter_defined_functions(module.tree):
        summary = FunctionEffects(qualname=qualname, node=func)
        for node in walk_within_scope(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                summary.declares_global = True
            use = _call_use(node, aliases)
            if use is not None and summary.rng_use is None:
                summary.rng_use = use
            if isinstance(node, ast.Call):
                key = _callee_key(node.func)
                if key is not None:
                    summary.calls.add(key)
                task = _submitted_task(node)
                if task is not None:
                    summary.submitted_tasks.append(task)
        summary.global_mutations = _collect_global_mutations(
            func, mutable_globals
        )
        effects[qualname] = summary
    return effects


# ----------------------------------------------------------------------
# Nondeterminism sources (taint labels for R1001/R1002)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaintSource:
    """One syntactic nondeterminism source with its taint label."""

    line: int
    col: int
    label: str
    reason: str


#: ``time.<fn>`` reads of some process clock.
_CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: RNG constructors that fall back to OS entropy when called with no
#: seed/entropy argument (the *seeded* forms are the sanctioned
#: sanitizer and are not sources).
_ENTROPY_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",
    }
)

#: Callables that are OS-entropy sources regardless of arguments.
_ENTROPY_CALLS = frozenset({"uuid1", "uuid4", "urandom", "token_bytes", "token_hex", "randbits"})

#: Filesystem enumeration whose order the OS does not define.
_FS_ORDER_CALLS = frozenset({"listdir", "scandir", "iterdir"})


class NondetSources:
    """Alias-aware classifier of nondeterminism sources in one module.

    ``classify_call``/``classify_expr`` return a :class:`TaintSource`
    when the node *introduces* nondeterminism, and ``None`` otherwise.
    Recognition is deliberately conservative in the miss direction —
    an unrecognized call is simply not a source — mirroring the call
    graph's philosophy: every report traces to a real source site.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._time_aliases: set[str] = set()
        self._from_time: set[str] = set()
        self._datetime_aliases: set[str] = set()
        self._from_datetime: set[str] = set()
        self._os_aliases: set[str] = set()
        self._from_os: set[str] = set()
        self._entropy_module_aliases: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    if alias.name == "time":
                        self._time_aliases.add(local)
                    elif alias.name == "datetime":
                        self._datetime_aliases.add(local)
                    elif alias.name == "os":
                        self._os_aliases.add(local)
                    elif alias.name in ("uuid", "secrets"):
                        self._entropy_module_aliases.add(local)
            elif isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "time":
                        self._from_time.add(local)
                    elif node.module == "datetime":
                        self._from_datetime.add(local)
                    elif node.module == "os":
                        self._from_os.add(local)

    # -- expressions --------------------------------------------------
    def classify_expr(self, node: ast.expr) -> TaintSource | None:
        """Non-call expression sources: ``os.environ`` and set displays."""
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id in self._os_aliases
        ) or (
            isinstance(node, ast.Name) and node.id in self._from_os
            and node.id == "environ"
        ):
            return TaintSource(
                node.lineno, node.col_offset, ENV,
                "os.environ read (value differs across environments)",
            )
        if isinstance(node, (ast.Set, ast.SetComp)):
            return TaintSource(
                node.lineno, node.col_offset, SET_ORDER,
                "set display (iteration order is hash-dependent)",
            )
        return None

    # -- calls --------------------------------------------------------
    def classify_call(self, node: ast.Call) -> TaintSource | None:
        """The taint a call introduces, if any."""
        func = node.func
        dotted = _callee_key(func)
        last = dotted.rsplit(".", 1)[-1] if dotted else None
        root = dotted.split(".", 1)[0] if dotted else None

        # Clock reads: time.<fn>() or a from-imported clock function.
        if isinstance(func, ast.Attribute) and func.attr in _CLOCK_FUNCTIONS:
            if isinstance(func.value, ast.Name) and func.value.id in self._time_aliases:
                return self._clock(node, f"time.{func.attr}()")
        if (
            isinstance(func, ast.Name)
            and func.id in _CLOCK_FUNCTIONS
            and func.id in self._from_time
        ):
            return self._clock(node, f"{func.id}()")

        # datetime.now()/utcnow()/today() through any recognized spelling.
        if isinstance(func, ast.Attribute) and func.attr in _DATETIME_NOW:
            value = func.value
            if isinstance(value, ast.Name) and (
                value.id in self._from_datetime
                or value.id in self._datetime_aliases
            ):
                return self._clock(node, f"{value.id}.{func.attr}()")
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in self._datetime_aliases
            ):
                return self._clock(
                    node, f"{value.value.id}.{value.attr}.{func.attr}()"
                )

        # Environment reads via os.getenv / getenv.
        if last == "getenv" and (
            root in self._os_aliases or "getenv" in self._from_os
        ):
            return TaintSource(
                node.lineno, node.col_offset, ENV,
                "os.getenv() read (value differs across environments)",
            )

        # OS-entropy RNG: unseeded constructors and always-entropy calls.
        if last in _ENTROPY_CONSTRUCTORS and _lacks_seed(node):
            return TaintSource(
                node.lineno, node.col_offset, RNG,
                f"{last}() without entropy seeds from the OS; derive the "
                "stream from an explicit seed or SeedSequence",
            )
        if last in _ENTROPY_CALLS and (
            root in self._os_aliases
            or root in self._entropy_module_aliases
            or root == last
        ):
            return TaintSource(
                node.lineno, node.col_offset, RNG,
                f"{dotted}() draws OS entropy",
            )

        # Per-process identity: id() and builtin hash().
        if isinstance(func, ast.Name) and func.id == "id" and node.args:
            return TaintSource(
                node.lineno, node.col_offset, IDENTITY,
                "id() is a per-process address",
            )
        if isinstance(func, ast.Name) and func.id == "hash" and node.args:
            return TaintSource(
                node.lineno, node.col_offset, IDENTITY,
                "builtin hash() is salted by PYTHONHASHSEED for "
                "str/bytes and varies across processes",
            )

        # Filesystem enumeration order.
        if last in _FS_ORDER_CALLS or dotted in ("glob.glob", "glob.iglob"):
            return TaintSource(
                node.lineno, node.col_offset, SET_ORDER,
                f"{last}() enumerates the filesystem in OS-defined order; "
                "sort the result",
            )
        return None

    @staticmethod
    def _clock(node: ast.Call, spelling: str) -> TaintSource:
        return TaintSource(
            node.lineno, node.col_offset, CLOCK,
            f"{spelling} reads a process clock",
        )


def _lacks_seed(node: ast.Call) -> bool:
    """True when an RNG constructor call provides no entropy/seed."""
    meaningful_args = [
        arg for arg in node.args
        if not (isinstance(arg, ast.Constant) and arg.value is None)
    ]
    if meaningful_args:
        return False
    for keyword in node.keywords:
        if keyword.arg in (None, "entropy", "seed"):
            if not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            ):
                return False
    return True


# ----------------------------------------------------------------------
# Raw artifact writes (R1201 evidence)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArtifactWrite:
    """One raw (non-atomic) artifact write site."""

    line: int
    col: int
    description: str


#: ``numpy`` savers that truncate-and-write in place.
_NUMPY_SAVERS = frozenset(
    {"np.save", "np.savetxt", "np.savez", "numpy.save", "numpy.savetxt", "numpy.savez"}
)


def collect_artifact_writes(tree: ast.AST) -> list[ArtifactWrite]:
    """Every raw truncating write in a module, in source order.

    Flags ``open(path, "w"/"x"...)`` (truncate/create modes only —
    append mode is the journal's deliberate, documented contract),
    ``<path>.write_text(...)`` / ``<path>.write_bytes(...)``, and numpy
    savers.  All of them leave a torn file behind a mid-write crash;
    ``repro.resilience.atomic_write`` (tmp + fsync + rename) is the
    sanctioned replacement.

    Numpy savers targeting a name bound to an in-memory buffer
    (``BytesIO``/``StringIO``) anywhere in the module are skipped:
    serializing to memory and landing via ``atomic_write`` is exactly
    the sanctioned pattern, not a violation of it.
    """
    buffers = _buffer_names(tree)
    writes: list[ArtifactWrite] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_mode(node)
            if mode is not None and mode[:1] in ("w", "x"):
                writes.append(
                    ArtifactWrite(
                        node.lineno, node.col_offset,
                        f'open(..., "{mode}") truncates in place',
                    )
                )
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            writes.append(
                ArtifactWrite(
                    node.lineno, node.col_offset,
                    f"Path.{func.attr}() truncates in place",
                )
            )
        elif isinstance(func, ast.Attribute):
            dotted = _callee_key(func)
            if dotted in _NUMPY_SAVERS and not (
                node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in buffers
            ):
                writes.append(
                    ArtifactWrite(
                        node.lineno, node.col_offset,
                        f"{dotted}() truncates in place",
                    )
                )
    writes.sort(key=lambda write: (write.line, write.col))
    return writes


def _buffer_names(tree: ast.AST) -> set[str]:
    """Names bound to ``BytesIO``/``StringIO`` calls anywhere in a module."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        func = node.value.func
        constructor = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        if constructor not in ("BytesIO", "StringIO"):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode string of an ``open()`` call, if present."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


# ----------------------------------------------------------------------
# Module-state mutations and task submissions (R1101 evidence)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GlobalMutation:
    """One mutation of module-level state inside a function body."""

    line: int
    col: int
    name: str
    detail: str


@dataclass(frozen=True)
class SubmittedTask:
    """One task-function argument handed to ``run_sweep``/``submit``."""

    line: int
    col: int
    #: The task-function expression as passed (for picklability checks).
    node: ast.expr
    #: Dotted textual form of the task when it is a name/attribute.
    callee: str | None


#: Constructors whose module-level result is shared mutable state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: Method names that mutate a container in place.
_CONTAINER_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "extend",
        "insert",
        "remove",
        "discard",
        "sort",
        "appendleft",
        "extendleft",
    }
)


def module_mutable_globals(tree: ast.Module) -> set[str]:
    """Module-level names bound to mutable containers at import time."""
    names: set[str] = set()
    for statement in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _submitted_task(node: ast.Call) -> SubmittedTask | None:
    """The task argument of a ``run_sweep``/pool-``submit`` call, if any."""
    dotted = _callee_key(node.func)
    if dotted is None or not node.args:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if last not in ("run_sweep", "submit"):
        return None
    task = node.args[0]
    return SubmittedTask(
        line=task.lineno,
        col=task.col_offset,
        node=task,
        callee=_callee_key(task),
    )


def _root_of(expr: ast.expr) -> ast.expr:
    """Leftmost node of an attribute/subscript chain."""
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _collect_global_mutations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    mutable_globals: set[str],
) -> list[GlobalMutation]:
    """Mutations of module-level state within one function's own scope."""
    declared_global: set[str] = set()
    local_bound: set[str] = set()
    for node in walk_within_scope(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    local_bound.add(target.id)

    lazy_guarded = _lazy_guarded_names(func)
    mutations: list[GlobalMutation] = []

    def container_target(name: str) -> bool:
        if name not in mutable_globals:
            return False
        # A plain local rebind shadows the module global (unless the
        # function *declared* it global, in which case writes go up).
        return name in declared_global or name not in local_bound

    for node in walk_within_scope(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    detail = (
                        "lazy-initializes the module global (fork-unsafe: "
                        "a worker forked mid-init inherits torn state, a "
                        "spawned worker re-initializes independently)"
                        if target.id in lazy_guarded
                        else "rebinds the module global"
                    )
                    mutations.append(
                        GlobalMutation(
                            node.lineno, node.col_offset, target.id, detail
                        )
                    )
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_of(target)
                    if isinstance(root, ast.Name) and container_target(root.id):
                        mutations.append(
                            GlobalMutation(
                                node.lineno,
                                node.col_offset,
                                root.id,
                                "writes into the module-level container",
                            )
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = _root_of(target)
                if isinstance(root, ast.Name) and container_target(root.id):
                    mutations.append(
                        GlobalMutation(
                            node.lineno,
                            node.col_offset,
                            root.id,
                            "deletes from the module-level container",
                        )
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _CONTAINER_MUTATORS:
                root = _root_of(node.func.value)
                if isinstance(root, ast.Name) and container_target(root.id):
                    mutations.append(
                        GlobalMutation(
                            node.lineno,
                            node.col_offset,
                            root.id,
                            f".{node.func.attr}() mutates the module-level "
                            "container",
                        )
                    )
    mutations.sort(key=lambda mutation: (mutation.line, mutation.col))
    return mutations


def _lazy_guarded_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names assigned under an ``if NAME is None`` guard (lazy init)."""
    guarded: set[str] = set()
    for node in walk_within_scope(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            guarded.add(test.left.id)
    return guarded
