"""Taint lattice: which nondeterminism sources may reach a value.

The interval lattice (:mod:`repro.analysis.dataflow.intervals`) answers
"what numbers can this expression be"; this lattice answers "which
*nondeterminism sources* may have influenced it".  An abstract value is
a finite set of labels — the powerset of :data:`ALL_LABELS` ordered by
inclusion — so joins are unions, bottom is the empty set ("provably
deterministic data flow"), and every chain is finite, which makes the
interprocedural fixpoint in :mod:`repro.analysis.dataflow.taintflow`
terminate unconditionally.

Labels come in two families:

* **value labels** — the bytes of the value itself depend on something
  outside the program's seeds: an OS-entropy RNG (:data:`RNG`), a clock
  read (:data:`CLOCK`), an environment variable (:data:`ENV`), or
  per-process object identity / ``PYTHONHASHSEED`` (:data:`IDENTITY`).
  These feed rule R1001.
* **order labels** — the value's *element order* is arbitrary even
  though its contents are deterministic: anything iterated out of a
  ``set``/``frozenset`` (:data:`SET_ORDER`).  Order-sensitive reductions
  (float summation, first-wins dict construction) turn that into a
  value-level difference, which is rule R1002's business.  Sorting is
  the canonical sanitizer: ``sorted(s)`` erases :data:`SET_ORDER`
  because the result no longer depends on iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "RNG",
    "CLOCK",
    "ENV",
    "IDENTITY",
    "SET_ORDER",
    "ALL_LABELS",
    "VALUE_LABELS",
    "ORDER_LABELS",
    "Taint",
    "CLEAN",
    "PARAM_PREFIX",
    "param_label",
    "split_params",
]

#: OS-entropy randomness: ``default_rng()`` / ``SeedSequence()`` without
#: entropy, ``uuid4()``, ``os.urandom``, the ``secrets`` module.
RNG = "rng"

#: Wall/monotonic clock reads: ``time.time()``, ``datetime.now()`` ….
CLOCK = "clock"

#: Environment reads: ``os.environ[...]`` / ``os.getenv(...)``.
ENV = "env"

#: Per-process identity: ``id()``, builtin ``hash()`` (PYTHONHASHSEED).
IDENTITY = "identity"

#: Arbitrary element order from ``set``/``frozenset`` iteration.
SET_ORDER = "set-order"

#: Every label, in severity-then-alphabetical display order.
ALL_LABELS = frozenset({RNG, CLOCK, ENV, IDENTITY, SET_ORDER})

#: Labels that make the value's *bytes* nondeterministic (R1001).
VALUE_LABELS = frozenset({RNG, CLOCK, ENV, IDENTITY})

#: Labels that make only the *element order* nondeterministic (R1002).
ORDER_LABELS = frozenset({SET_ORDER})


#: Prefix for the synthetic per-parameter labels the interprocedural
#: engine threads through a function body to learn which parameters may
#: flow into the return value.  They never escape a summary.
PARAM_PREFIX = "param:"


def param_label(name: str) -> str:
    """The synthetic label tracking flow from parameter ``name``."""
    return PARAM_PREFIX + name


def _param_labels(labels: frozenset[str]) -> frozenset[str]:
    return frozenset(
        label for label in labels if label.startswith(PARAM_PREFIX)
    )


@dataclass(frozen=True)
class Taint:
    """An element of the label-powerset lattice (immutable)."""

    labels: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        unknown = self.labels - ALL_LABELS - _param_labels(self.labels)
        if unknown:
            raise ValueError(f"unknown taint labels: {sorted(unknown)!r}")

    # -- lattice operations ------------------------------------------
    @staticmethod
    def of(*labels: str) -> "Taint":
        """The taint carrying exactly ``labels``."""
        return Taint(frozenset(labels))

    def join(self, other: "Taint") -> "Taint":
        """Least upper bound: the union of both label sets."""
        if not other.labels:
            return self
        if not self.labels:
            return other
        return Taint(self.labels | other.labels)

    def without(self, *labels: str) -> "Taint":
        """Sanitize: drop ``labels`` (no-op for labels not present)."""
        dropped = frozenset(labels)
        if not (self.labels & dropped):
            return self
        return Taint(self.labels - dropped)

    def restricted(self, allowed: Iterable[str]) -> "Taint":
        """Keep only the labels in ``allowed``."""
        return Taint(self.labels & frozenset(allowed))

    def __le__(self, other: "Taint") -> bool:
        """Lattice order: subset of labels."""
        return self.labels <= other.labels

    def __or__(self, other: "Taint") -> "Taint":
        return self.join(other)

    # -- predicates / rendering --------------------------------------
    @property
    def is_clean(self) -> bool:
        """Bottom: no nondeterminism source may reach this value."""
        return not self.labels

    def __contains__(self, label: str) -> bool:
        return label in self.labels

    def describe(self) -> str:
        """Stable human rendering, e.g. ``"clock+env"``."""
        return "+".join(sorted(self.labels)) if self.labels else "clean"

    def __bool__(self) -> bool:
        return bool(self.labels)


#: The bottom element, shared (Taint is immutable).
CLEAN = Taint()


def split_params(taint: Taint) -> tuple[Taint, frozenset[str]]:
    """Separate real labels from synthetic parameter labels.

    Returns ``(real_taint, parameter_names)`` — the building blocks of a
    function summary: concrete sources that reach the return value, plus
    the names of parameters whose taint would flow through.
    """
    params = _param_labels(taint.labels)
    real = Taint(taint.labels - params)
    names = frozenset(label[len(PARAM_PREFIX):] for label in params)
    return real, names
