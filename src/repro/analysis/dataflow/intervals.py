"""The interval lattice: closed real intervals plus a ``nonzero`` bit.

Every abstract value is an :class:`Interval` ``[lo, hi]`` over the
extended reals, optionally tagged ``nonzero``.  The tag is what makes
the domain precise *at zero* without tracking open bounds everywhere:
all the questions the numeric rules ask (is a divisor nonzero? is a
``log`` argument positive? a ``sqrt`` argument nonnegative?) only care
about strictness at the origin, so ``x > 0`` is ``[0, inf]`` +
``nonzero`` and ``x >= 0`` is ``[0, inf]`` alone.

Arithmetic is interpreted over the reals: ``positive / positive`` is
positive even though floats can underflow to ``0.0``.  This matches the
PR 1 guardedness heuristics and is recorded as a soundness caveat in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Interval", "TOP", "WIDEN_THRESHOLDS"]

_INF = math.inf

#: Bounds that widening snaps to before giving up and going to infinity.
#: Keeping 0 and 1 preserves the sign facts the numeric rules need even
#: when a loop makes a variable grow without a static bound.
WIDEN_THRESHOLDS = (0.0, 1.0)


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` over the extended reals, with a provably-``nonzero`` bit."""

    lo: float = -_INF
    hi: float = _INF
    nonzero: bool = False

    def __post_init__(self) -> None:
        # Normalize: an interval strictly on one side of zero is nonzero.
        if not self.nonzero and (self.lo > 0.0 or self.hi < 0.0):
            object.__setattr__(self, "nonzero", True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const(value: float) -> "Interval":
        value = float(value)
        return Interval(value, value, value != 0)

    @staticmethod
    def at_least(lo: float, nonzero: bool = False) -> "Interval":
        return Interval(float(lo), _INF, nonzero)

    @staticmethod
    def at_most(hi: float, nonzero: bool = False) -> "Interval":
        return Interval(-_INF, float(hi), nonzero)

    @staticmethod
    def positive() -> "Interval":
        return Interval(0.0, _INF, True)

    @staticmethod
    def nonnegative() -> "Interval":
        return Interval(0.0, _INF, False)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF and not self.nonzero

    @property
    def is_positive(self) -> bool:
        """Provably ``> 0``."""
        return self.lo > 0.0 or (self.lo >= 0.0 and self.nonzero)

    @property
    def is_nonnegative(self) -> bool:
        """Provably ``>= 0``."""
        return self.lo >= 0.0

    @property
    def is_negative(self) -> bool:
        return self.hi < 0.0 or (self.hi <= 0.0 and self.nonzero)

    @property
    def is_nonzero(self) -> bool:
        """Provably ``!= 0``."""
        return self.nonzero or self.lo > 0.0 or self.hi < 0.0

    def contains(self, value: float) -> bool:
        """True when ``value`` may be a member of this interval."""
        if value == 0 and self.nonzero:
            return False
        return self.lo <= value <= self.hi

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (set union, over-approximated)."""
        return Interval(
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.nonzero and other.nonzero,
        )

    def meet(self, other: "Interval") -> "Interval | None":
        """Greatest lower bound (intersection); ``None`` when empty."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        nonzero = self.nonzero or other.nonzero
        if nonzero and lo == 0 and hi == 0:
            return None
        return Interval(lo, hi, nonzero)

    def widen(self, newer: "Interval") -> "Interval":
        """Classic threshold widening: unstable bounds jump to the nearest
        threshold in :data:`WIDEN_THRESHOLDS`, then to infinity."""
        lo = self.lo
        if newer.lo < self.lo:
            candidates = [t for t in WIDEN_THRESHOLDS if t <= newer.lo]
            lo = max(candidates) if candidates else -_INF
        hi = self.hi
        if newer.hi > self.hi:
            candidates = [t for t in WIDEN_THRESHOLDS if t >= newer.hi]
            hi = min(candidates) if candidates else _INF
        return Interval(lo, hi, self.nonzero and newer.nonzero)

    # ------------------------------------------------------------------
    # Arithmetic transfer functions
    # ------------------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        """``self + other``."""
        return Interval(_ext_add(self.lo, other.lo), _ext_add(self.hi, other.hi))

    def sub(self, other: "Interval") -> "Interval":
        """``self - other``."""
        return Interval(_ext_add(self.lo, -other.hi), _ext_add(self.hi, -other.lo))

    def neg(self) -> "Interval":
        """``-self``."""
        return Interval(-self.hi, -self.lo, self.nonzero)

    def mul(self, other: "Interval") -> "Interval":
        """``self * other`` (extreme-product rule)."""
        products = [
            _ext_mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(
            min(products), max(products), self.is_nonzero and other.is_nonzero
        )

    def div(self, other: "Interval") -> "Interval":
        """True division.  Divisors that may be zero yield TOP."""
        if not other.is_nonzero:
            return TOP
        if other.is_positive:
            if self.is_nonnegative:
                # lo/hi-extreme quotients of nonnegative by positive.
                lo = _ext_div(self.lo, other.hi)
                hi = _ext_div(self.hi, other.lo)
                return Interval(lo, hi, self.is_nonzero)
            quotients = [
                _ext_div(a, b)
                for a in (self.lo, self.hi)
                for b in (other.lo, other.hi)
                if b != 0
            ]
            return Interval(min(quotients), max(quotients), self.is_nonzero)
        if other.is_negative:
            return self.neg().div(other.neg())
        # Nonzero divisor of unknown sign: magnitude unbounded either way.
        return Interval(-_INF, _INF, False)

    def floordiv(self, other: "Interval") -> "Interval":
        """``self // other``: true division then floor."""
        quotient = self.div(other)
        if quotient.is_top:
            return TOP
        # Floor can lower the bound by up to 1 and clear strictness at 0.
        lo = quotient.lo if quotient.lo == -_INF else math.floor(quotient.lo)
        hi = quotient.hi if quotient.hi == _INF else math.floor(quotient.hi)
        return Interval(lo, hi, lo > 0.0 or hi < 0.0)

    def mod(self, other: "Interval") -> "Interval":
        """``self % other`` under Python sign semantics."""
        # Python semantics: for b > 0 the result lies in [0, b).
        if other.is_positive:
            return Interval(0.0, other.hi)
        if other.is_negative:
            return Interval(other.lo, 0.0)
        return TOP

    def pow(self, exponent: "Interval") -> "Interval":
        """``self ** exponent``; precise for constant exponents and for
        nonnegative bases with nonnegative exponents (monotone regime)."""
        if exponent.lo == exponent.hi and float(exponent.lo).is_integer():
            k = int(exponent.lo)
            return self._pow_const_int(k)
        if exponent.lo == exponent.hi and exponent.lo > 0.0 and self.is_nonnegative:
            # Constant fractional exponent (e.g. ``x ** 0.5``): monotone
            # on the nonnegative reals.
            e = exponent.lo
            return Interval(_ext_pow(self.lo, e), _ext_pow(self.hi, e), self.is_nonzero)
        if self.lo >= 1.0 and exponent.is_nonnegative:
            # base >= 1 with a nonnegative exponent: monotone in both,
            # so the extremes are attained at the corner points.
            return Interval(
                _ext_pow(self.lo, exponent.lo), _ext_pow(self.hi, exponent.hi), True
            )
        if self.is_positive:
            return Interval.positive()
        if self.is_nonnegative:
            return Interval.nonnegative()
        return TOP

    def _pow_const_int(self, k: int) -> "Interval":
        if k == 0:
            return Interval.const(1.0)
        if k > 0 and k % 2 == 0:
            magnitudes = [abs(self.lo), abs(self.hi)]
            hi = _ext_pow(max(magnitudes), k)
            if self.lo >= 0.0:
                lo = _ext_pow(self.lo, k)
            elif self.hi <= 0.0:
                lo = _ext_pow(abs(self.hi), k)
            else:
                lo = 0.0
            return Interval(lo, hi, self.is_nonzero)
        if k > 0:  # odd positive exponent: monotone
            return Interval(
                _ext_pow(self.lo, k), _ext_pow(self.hi, k), self.is_nonzero
            )
        # Negative exponent: 1 / self**(-k).
        return Interval.const(1.0).div(self._pow_const_int(-k))

    def lshift(self, other: "Interval") -> "Interval":
        """``self << other`` for nonnegative integer operands."""
        if not (self.is_nonnegative and other.is_nonnegative):
            return TOP
        lo = _ext_mul(self.lo, _ext_pow(2.0, other.lo))
        hi = _ext_mul(self.hi, _ext_pow(2.0, other.hi))
        return Interval(lo, hi, self.is_nonzero)

    # ------------------------------------------------------------------
    # Function transfer helpers (math builtins)
    # ------------------------------------------------------------------
    def abs(self) -> "Interval":
        """``abs(self)``."""
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return self.neg()
        return Interval(0.0, max(abs(self.lo), self.hi), self.nonzero)

    def sqrt(self) -> "Interval":
        """``sqrt(self)``; non-provably-nonnegative inputs widen to ``[0, inf]``."""
        if not self.is_nonnegative:
            return Interval.nonnegative()
        lo = math.sqrt(self.lo) if self.lo != _INF else _INF
        hi = math.sqrt(self.hi) if self.hi != _INF else _INF
        return Interval(lo, hi, self.is_nonzero)

    def exp(self) -> "Interval":
        """``exp(self)`` — always positive; finite bounds past ~709
        saturate to ``inf`` (``math.exp`` raises where IEEE would)."""

        def _exp(bound: float) -> float:
            if bound == -_INF:
                return 0.0
            if bound == _INF:
                return _INF
            try:
                return math.exp(bound)
            except OverflowError:
                return _INF

        return Interval(_exp(self.lo), _exp(self.hi), True)

    def log(self, base: float = math.e) -> "Interval":
        """``log(self)``; only informative when provably positive."""
        if not self.is_positive:
            return TOP
        lo = -_INF if self.lo <= 0.0 else math.log(self.lo, base)
        hi = _INF if self.hi == _INF else math.log(self.hi, base)
        return Interval(lo, hi)

    def to_int(self) -> "Interval":
        """``int(x)``: truncation toward zero."""
        lo = self.lo if self.lo == -_INF else float(math.floor(self.lo))
        hi = self.hi if self.hi == _INF else float(math.ceil(self.hi))
        return Interval(lo, hi, self.lo >= 1.0 or self.hi <= -1.0)

    def floor(self) -> "Interval":
        """``math.floor(x)`` elementwise on the bounds."""
        lo = self.lo if self.lo == -_INF else float(math.floor(self.lo))
        hi = self.hi if self.hi == _INF else float(math.floor(self.hi))
        return Interval(lo, hi, lo > 0.0 or hi < 0.0)

    def ceil(self) -> "Interval":
        """``math.ceil(x)``; positive inputs stay ``>= 1``."""
        lo = self.lo if self.lo == -_INF else float(math.ceil(self.lo))
        hi = self.hi if self.hi == _INF else float(math.ceil(self.hi))
        if self.is_positive:
            lo = max(lo, 1.0)
        return Interval(lo, hi, self.is_positive or lo > 0.0 or hi < 0.0)

    def maximum(self, other: "Interval") -> "Interval":
        """Pointwise ``max(self, other)`` (``np.maximum`` / binary ``max``)."""
        lo = max(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        nonzero = lo > 0.0 or hi < 0.0 or self.is_positive or other.is_positive
        return Interval(lo, hi, nonzero)

    def minimum(self, other: "Interval") -> "Interval":
        """Pointwise ``min(self, other)`` (``np.minimum`` / binary ``min``)."""
        lo = min(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        nonzero = (
            lo > 0.0
            or hi < 0.0
            or (self.is_positive and other.is_positive)
            or self.is_negative
            or other.is_negative
        )
        return Interval(lo, hi, nonzero)

    def clip(self, lower: "Interval | None", upper: "Interval | None") -> "Interval":
        """``np.clip(self, lower, upper)``; ``None`` means that side is open."""
        clipped = self
        if lower is not None:
            clipped = clipped.maximum(lower)
        if upper is not None:
            clipped = clipped.minimum(upper)
        return clipped

    # ------------------------------------------------------------------
    # Comparison refinement
    # ------------------------------------------------------------------
    def assume_lt(self, bound: "Interval") -> "Interval | None":
        """Refine under the assumption ``self < bound``."""
        refined = self.meet(Interval.at_most(bound.hi))
        if refined is not None and bound.hi == 0:
            # Strictness at zero: x < 0 makes x nonzero — unless the
            # remaining set was exactly {0}, which is now empty.
            if refined.lo == 0 and refined.hi == 0:
                return None
            refined = Interval(refined.lo, refined.hi, True)
        return refined

    def assume_le(self, bound: "Interval") -> "Interval | None":
        """Refine under ``self <= bound``."""
        return self.meet(Interval.at_most(bound.hi))

    def assume_gt(self, bound: "Interval") -> "Interval | None":
        """Refine under ``self > bound``."""
        refined = self.meet(Interval.at_least(bound.lo))
        if refined is not None and bound.lo == 0:
            if refined.lo == 0 and refined.hi == 0:
                return None
            refined = Interval(refined.lo, refined.hi, True)
        return refined

    def assume_ge(self, bound: "Interval") -> "Interval | None":
        """Refine under ``self >= bound``."""
        return self.meet(Interval.at_least(bound.lo))

    def assume_eq(self, bound: "Interval") -> "Interval | None":
        """Refine under ``self == bound`` (plain intersection)."""
        return self.meet(bound)

    def assume_ne(self, bound: "Interval") -> "Interval | None":
        """Only ``!= 0`` carries usable information in this domain."""
        if bound.lo == 0 and bound.hi == 0:
            return self.meet(Interval(-_INF, _INF, True))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = ", nonzero" if self.nonzero else ""
        return f"Interval([{self.lo}, {self.hi}]{tag})"


#: The unknown value: any real, possibly zero.
TOP = Interval()


def _ext_add(a: float, b: float) -> float:
    """Extended-real addition; opposing infinities collapse to the
    conservative side of whichever bound is being computed, so map to 0."""
    if math.isinf(a) and math.isinf(b) and (a > 0) != (b > 0):
        return 0.0
    return a + b


def _ext_mul(a: float, b: float) -> float:
    """Extended-real multiplication with the interval convention 0 * inf = 0."""
    if a == 0 or b == 0:
        return 0.0
    return a * b


def _ext_div(a: float, b: float) -> float:
    if b == 0:
        return _INF if a >= 0.0 else -_INF
    if math.isinf(a) and math.isinf(b):
        return 0.0
    if math.isinf(b):
        return 0.0
    return a / b


def _ext_pow(base: float, k: float) -> float:
    if math.isinf(base):
        return _INF if base > 0 or (isinstance(k, int) and k % 2 == 0) else -_INF
    try:
        return float(base) ** k
    except OverflowError:  # pragma: no cover - huge finite bases
        return _INF if base > 0 else -_INF
