"""Worklist abstract interpretation over per-function CFGs.

:class:`ModuleIntervals` is the facade the rules use: build it once per
:class:`~repro.analysis.source.SourceModule` (via
:func:`module_intervals`, which caches on the module object) and ask
``proves_nonzero(expr)`` / ``proves_positive(expr)`` /
``proves_nonnegative(expr)`` about any expression node of the tree.
Internally it:

* analyzes every function with a worklist fixpoint over its CFG,
  refining intervals along guarded edges (``if n < 1: raise`` leaves
  ``n >= 1`` on the fall-through path) and widening at loop heads;
* derives ``self.<attr>`` facts per class in two passes — pass one
  collects the join of every assignment to the attribute across the
  class and its in-module relatives, pass two re-analyzes methods with
  those facts seeded at entry;
* seeds parameters from ``@requires`` contract clauses and binds call
  results from the callee's ``@ensures`` clauses (including the
  ``result[i]`` form for tuple-unpacked returns);
* verifies each function's own ``@ensures`` clauses at every return
  site, classifying them ``proved`` / ``runtime`` / ``violated``.

Environments are plain dicts mapping variable keys (``"n"``,
``"self.bits"``, ``"column.size"``) to :class:`Interval`; a missing key
means TOP.  Anything the interpreter does not model stays TOP, so the
worst failure mode is a missed proof, never a wrong one — modulo the
documented real-arithmetic and encapsulation caveats.
"""

from __future__ import annotations

import ast
import copy
import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.dataflow.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow.intervals import TOP, Interval
from repro.analysis.source import SourceModule

__all__ = [
    "ClauseVerdict",
    "FunctionAnalysis",
    "FunctionContract",
    "ModuleIntervals",
    "RemoteCallee",
    "key_of",
    "module_intervals",
]

Env = dict[str, Interval]

_ZERO = Interval.const(0.0)

#: Safety valve: a function whose fixpoint has not stabilized after this
#: many block visits is abandoned (all queries answer TOP).
_MAX_VISITS = 2000

#: Module-level constants every file can rely on.
_WELL_KNOWN = {
    "math.pi": Interval.const(3.141592653589793),
    "math.e": Interval.const(2.718281828459045),
    "math.tau": Interval.const(6.283185307179586),
    "math.inf": Interval.at_least(1.0),
    "np.pi": Interval.const(3.141592653589793),
    "np.e": Interval.const(2.718281828459045),
    "numpy.pi": Interval.const(3.141592653589793),
    "numpy.e": Interval.const(2.718281828459045),
}

_ASSUME = {
    ast.Lt: Interval.assume_lt,
    ast.LtE: Interval.assume_le,
    ast.Gt: Interval.assume_gt,
    ast.GtE: Interval.assume_ge,
    ast.Eq: Interval.assume_eq,
    ast.NotEq: Interval.assume_ne,
}

#: Comparison seen from the right operand's side.
_MIRROR = {
    ast.Lt: ast.Gt,
    ast.LtE: ast.GtE,
    ast.Gt: ast.Lt,
    ast.GtE: ast.LtE,
    ast.Eq: ast.Eq,
    ast.NotEq: ast.NotEq,
}

#: ``not (a OP b)`` for the total order on reals.
_NEGATE = {
    ast.Lt: ast.GtE,
    ast.LtE: ast.Gt,
    ast.Gt: ast.LtE,
    ast.GtE: ast.Lt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}

_CONTRACT_DECORATORS = ("requires", "ensures")


def key_of(expr: ast.AST) -> str | None:
    """Dotted tracking key for a Name / attribute chain, if trackable.

    ``result[i]`` (constant integer index on the name ``result``) is also
    a key — contract clauses use it for tuple-returning functions.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = key_of(expr.value)
        if base is not None and "[" not in base:
            return f"{base}.{expr.attr}"
        return None
    if (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "result"
        and isinstance(expr.slice, ast.Constant)
        and isinstance(expr.slice.value, int)
    ):
        return f"result[{expr.slice.value}]"
    return None


@dataclass
class FunctionContract:
    """``@requires``/``@ensures`` clauses read off a function's decorators."""

    requires: list[str] = field(default_factory=list)
    ensures: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.requires or self.ensures)


@dataclass
class ClauseVerdict:
    """Static status of one contract clause."""

    qualname: str
    kind: str  # "requires" | "ensures"
    clause: str
    lineno: int
    #: ``assumed`` (requires), ``proved``, ``runtime``, or ``violated``.
    verdict: str
    #: Provenance of a ``proved`` verdict: ``contract`` when only explicit
    #: contracts and local reasoning were needed, ``summary`` when an
    #: inferred interprocedural summary contributed to the proof.
    via: str = "contract"


@dataclass(frozen=True)
class RemoteCallee:
    """A cross-module callee handed to the engine by a summary oracle.

    ``contract`` carries the callee's explicit ``@requires``/``@ensures``
    clauses (these always win); ``summary``/``summary_elements`` carry the
    inferred return interval for uncontracted functions.
    """

    qualname: str
    param_names: tuple[str, ...]
    contract: FunctionContract
    self_attrs: dict[str, Interval] = field(default_factory=dict)
    summary: Interval | None = None
    summary_elements: dict[int, Interval] = field(default_factory=dict)


@dataclass
class FunctionAnalysis:
    """Fixpoint results for one function definition."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    class_name: str | None
    contract: FunctionContract
    cfg: ControlFlowGraph | None = None
    #: env *before* each recorded statement, keyed by ``id(stmt)``.
    env_at: dict[int, Env] = field(default_factory=dict)
    #: ``(return_stmt, env_before)`` for every reachable ``return``.
    returns: list[tuple[ast.Return, Env]] = field(default_factory=list)
    param_names: set[str] = field(default_factory=set)
    assigned_names: set[str] = field(default_factory=set)
    poisoned: set[str] = field(default_factory=set)
    abandoned: bool = False
    #: Store-site counts per name (function scope, nested scopes excluded).
    store_counts: dict[str, int] = field(default_factory=dict)
    #: Single-assignment definitions: ``name`` (and ``name.field`` for
    #: constructor keyword arguments) -> defining expression.
    defs: dict[str, ast.expr] = field(default_factory=dict)
    #: Relational ``@requires`` facts: ``(left_key, op, right_key)``.
    relational_facts: list[tuple[str, type[ast.cmpop], str]] = field(
        default_factory=list
    )
    #: True when an inferred (non-contract) summary fed this analysis.
    used_summary: bool = False

    @property
    def locals(self) -> set[str]:
        return self.param_names | self.assigned_names


def _contract_of(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionContract:
    contract = FunctionContract()
    for decorator in func.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = decorator.func
        attr = name.attr if isinstance(name, ast.Attribute) else getattr(name, "id", None)
        if attr not in _CONTRACT_DECORATORS:
            continue
        clauses = [
            arg.value
            for arg in decorator.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        ]
        if attr == "requires":
            contract.requires.extend(clauses)
        else:
            contract.ensures.extend(clauses)
    return contract


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _parse_clause(clause: str) -> ast.expr | None:
    try:
        return ast.parse(clause, mode="eval").body
    except SyntaxError:
        return None


def _peel_cast(expr: ast.expr) -> ast.expr:
    """Strip ``float(...)`` / ``int(...)`` wrappers for symbolic reasoning.

    ``float`` is value-preserving; ``int`` is treated as such too, which is
    exact whenever the operand is integral (every size-like quantity in
    this codebase) — the residual truncation caveat is documented in
    ``docs/static_analysis.md``.
    """
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("float", "int")
        and len(expr.args) == 1
        and not expr.keywords
        and not isinstance(expr.args[0], ast.Starred)
    ):
        expr = expr.args[0]
    return expr


def _scoped_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every node of ``func``'s body, excluding nested scopes' bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_RELATIONAL_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq)


def _collect_defs(
    func: ast.FunctionDef | ast.AsyncFunctionDef, analysis: FunctionAnalysis
) -> None:
    """Populate store counts, single-assignment defs, and relational facts."""
    scoped = list(_scoped_nodes(func))
    for node in scoped:
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            analysis.store_counts[node.id] = analysis.store_counts.get(node.id, 0) + 1
    # A single textual store site inside a loop still means many dynamic
    # bindings; such names are not usable as single-assignment defs.
    loop_nested: set[int] = set()
    for node in scoped:
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for inner in ast.walk(node):
                loop_nested.add(id(inner))
    for node in scoped:
        if (
            isinstance(node, ast.Assign)
            and id(node) not in loop_nested
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            name = node.targets[0].id
            if (
                analysis.store_counts.get(name) != 1
                or name in analysis.poisoned
                or name in analysis.param_names
            ):
                continue
            analysis.defs[name] = node.value
            value = _peel_cast(node.value)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id[:1].isupper()
            ):
                # Constructor keyword fields: dataclass-style classes store
                # keyword arguments verbatim, so ``name.field`` is defined
                # by the keyword's expression.
                for keyword in value.keywords:
                    if keyword.arg is not None:
                        analysis.defs[f"{name}.{keyword.arg}"] = keyword.value
    for clause in analysis.contract.requires:
        clause_ast = _parse_clause(clause)
        if not isinstance(clause_ast, ast.Compare):
            continue
        operands = [clause_ast.left, *clause_ast.comparators]
        for position, op in enumerate(clause_ast.ops):
            if not isinstance(op, _RELATIONAL_OPS):
                continue
            left_key = key_of(operands[position])
            right_key = key_of(operands[position + 1])
            if left_key is not None and right_key is not None:
                analysis.relational_facts.append((left_key, type(op), right_key))


def _walrus_names(stmt: ast.stmt) -> set[str]:
    """Names bound by ``:=`` anywhere in the statement (dropped to TOP)."""
    names: set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _join_envs(a: Env, b: Env) -> Env:
    out: Env = {}
    for key, value in a.items():
        other = b.get(key)
        if other is None:
            continue
        joined = value.join(other)
        if not joined.is_top:
            out[key] = joined
    return out


def _widen_envs(old: Env, new: Env) -> Env:
    out: Env = {}
    for key, value in old.items():
        other = new.get(key)
        if other is None:
            continue
        widened = value.widen(other)
        if not widened.is_top:
            out[key] = widened
    return out


class ModuleIntervals:
    """Interval facts for every function of one source module."""

    def __init__(self, module: SourceModule, oracle: object | None = None) -> None:
        self.module = module
        #: Optional interprocedural summary oracle (duck-typed): an object
        #: with ``lookup(module, call) -> RemoteCallee | None`` resolving
        #: calls the local module cannot.  Installed by
        #: ``repro.analysis.dataflow.boundsflow.ProjectBounds``.
        self.oracle = oracle
        self.module_env: Env = dict(_WELL_KNOWN)
        self._functions: list[FunctionAnalysis] = []
        self._by_name: dict[str, FunctionAnalysis] = {}
        self._methods: dict[tuple[str, str], FunctionAnalysis] = {}
        self._class_bases: dict[str, tuple[str, ...]] = {}
        self._attr_facts: dict[str, dict[str, Interval]] = {}
        #: ``id(expr)`` -> (analysis, enclosing stmt, comprehension mask).
        self._node_map: dict[int, tuple[FunctionAnalysis, ast.stmt, frozenset[str]]] = {}
        self._ensures_stack: set[str] = set()
        self._build()

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def interval_of(self, expr: ast.AST) -> Interval:
        """Abstract value of an expression node of this module's tree."""
        entry = self._node_map.get(id(expr))
        if entry is None:
            return TOP
        analysis, stmt, mask = entry
        if analysis.abandoned:
            return TOP
        env = analysis.env_at.get(id(stmt))
        if env is None:  # statically unreachable: nothing to prove
            return TOP
        if mask:
            env = {
                key: value
                for key, value in env.items()
                if key.split(".", 1)[0] not in mask
            }
        return self._eval(expr, env, analysis)

    def proves_nonzero(self, expr: ast.AST) -> bool:
        """True when the engine proved ``expr != 0`` at its use site."""
        return self.interval_of(expr).is_nonzero

    def proves_positive(self, expr: ast.AST) -> bool:
        """True when the engine proved ``expr > 0`` at its use site."""
        return self.interval_of(expr).is_positive

    def proves_nonnegative(self, expr: ast.AST) -> bool:
        """True when the engine proved ``expr >= 0`` at its use site."""
        return self.interval_of(expr).is_nonnegative

    def function_analyses(self) -> list[FunctionAnalysis]:
        """Every function analysis of this module, in definition order."""
        return list(self._functions)

    def class_attr_facts(self, class_name: str) -> dict[str, Interval]:
        """``self.<attr>`` intervals derived for one class (or empty)."""
        return dict(self._attr_facts.get(class_name, {}))

    def return_bounds(
        self, analysis: FunctionAnalysis
    ) -> tuple[Interval, dict[int, Interval]]:
        """Join of the return-value interval over all reachable returns.

        The scalar side runs through the symbolic evaluator (definition
        chasing, quotient rules, callee ``@ensures``), so a summary can
        be sharper than a plain interval walk; tuple elements keep only
        the positions every return site agrees on.
        """
        if analysis.abandoned:
            return TOP, {}
        result: Interval | None = None
        elements: dict[int, Interval] | None = None
        for return_stmt, env in analysis.returns:
            if return_stmt.value is None:
                return TOP, {}
            value = self._sym_eval(return_stmt.value, env, analysis, 0)
            _plain, parts = self._eval_with_elements(
                return_stmt.value, env, analysis
            )
            result = value if result is None else result.join(value)
            if elements is None:
                elements = dict(parts)
            else:
                elements = {
                    position: interval.join(parts[position])
                    for position, interval in elements.items()
                    if position in parts
                }
        if result is None:
            return TOP, {}
        return result, {
            position: interval
            for position, interval in (elements or {}).items()
            if not interval.is_top
        }

    def contract_verdicts(self) -> list[ClauseVerdict]:
        """Static status of every contract clause declared in this module."""
        verdicts: list[ClauseVerdict] = []
        for analysis in self._functions:
            contract = analysis.contract
            if not contract:
                continue
            lineno = analysis.node.lineno
            for clause in contract.requires:
                verdicts.append(
                    ClauseVerdict(analysis.qualname, "requires", clause, lineno, "assumed")
                )
            for clause in contract.ensures:
                verdict = self._ensures_verdict(analysis, clause)
                via = (
                    "summary"
                    if verdict == "proved" and analysis.used_summary
                    else "contract"
                )
                verdicts.append(
                    ClauseVerdict(
                        analysis.qualname, "ensures", clause, lineno, verdict, via
                    )
                )
        return verdicts

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        self._build_module_env()
        collected = list(self._collect_functions(self.module.tree))
        # Pass 1: analyze methods without attribute facts, then derive the
        # per-class ``self.<attr>`` joins from their recorded envs.
        draft: dict[tuple[str, str], FunctionAnalysis] = {}
        for func, qualname, class_name in collected:
            if class_name is not None:
                draft[(class_name, func.name)] = self._analyze(func, qualname, class_name)
        self._attr_facts = self._derive_attr_facts(draft)
        # Pass 2: the real analyses, with attribute facts seeded at entry.
        for func, qualname, class_name in collected:
            analysis = self._analyze(func, qualname, class_name)
            self._functions.append(analysis)
            if class_name is None:
                self._by_name.setdefault(func.name, analysis)
            else:
                self._methods.setdefault((class_name, func.name), analysis)
        for analysis in self._functions:
            self._map_function(analysis)

    def _build_module_env(self) -> None:
        """Fold straight-line top-level constant assignments into facts.

        Evaluation is sequential (later constants may reference earlier
        ones); a name assigned more than once keeps the join of all its
        values, since functions may read it at any program point.
        """
        reassigned: set[str] = set()
        for stmt in self.module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            interval = self._eval(value, self.module_env, None)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                folded = interval
                if name in reassigned:
                    folded = self.module_env.get(name, TOP).join(interval)
                reassigned.add(name)
                if folded.is_top:
                    self.module_env.pop(name, None)
                else:
                    self.module_env[name] = folded

    def _collect_functions(
        self, tree: ast.Module
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, str | None]]:
        def visit(node: ast.AST, class_name: str | None, prefix: str) -> Iterator[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, str | None]
        ]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    yield child, qualname, class_name
                    yield from visit(child, None, f"{qualname}.<locals>.")
                elif isinstance(child, ast.ClassDef):
                    self._class_bases[child.name] = tuple(
                        base.id if isinstance(base, ast.Name) else base.attr
                        for base in child.bases
                        if isinstance(base, (ast.Name, ast.Attribute))
                    )
                    yield from visit(child, child.name, f"{prefix}{child.name}.")
                else:
                    yield from visit(child, class_name, prefix)

        yield from visit(tree, None, "")

    def _class_relatives(self, class_name: str) -> set[str]:
        """``class_name`` plus every in-module class connected to it by
        inheritance edges (ancestors, descendants, and siblings through a
        shared in-module base) — any of them may be the runtime type of
        ``self`` in one of the class's methods."""
        relatives = {class_name}
        changed = True
        while changed:
            changed = False
            for name, bases in self._class_bases.items():
                in_module_bases = {base for base in bases if base in self._class_bases}
                connected = name in relatives or relatives & in_module_bases
                if connected:
                    for member in {name} | in_module_bases:
                        if member not in relatives:
                            relatives.add(member)
                            changed = True
        return relatives

    def _derive_attr_facts(
        self, draft: dict[tuple[str, str], FunctionAnalysis]
    ) -> dict[str, dict[str, Interval]]:
        per_class: dict[str, dict[str, Interval]] = {}
        poisoned: dict[str, set[str]] = {}
        for (class_name, _method), analysis in draft.items():
            facts = per_class.setdefault(class_name, {})
            bad = poisoned.setdefault(class_name, set())
            if analysis.cfg is None:
                continue
            for block in analysis.cfg.blocks:
                for stmt in block.statements:
                    self._collect_attr_stmt(stmt, analysis, facts, bad)
        # Join facts across in-module relatives: a method of C may run on
        # any subclass instance, and inherited __init__ code on C itself.
        merged: dict[str, dict[str, Interval]] = {}
        for class_name in per_class:
            relatives = self._class_relatives(class_name)
            facts: dict[str, Interval] = {}
            bad = set().union(*(poisoned.get(rel, set()) for rel in relatives))
            for relative in relatives:
                for attr, interval in per_class.get(relative, {}).items():
                    if attr in facts:
                        facts[attr] = facts[attr].join(interval)
                    else:
                        facts[attr] = interval
            merged[class_name] = {
                attr: interval
                for attr, interval in facts.items()
                if attr not in bad and not interval.is_top
            }
        return merged

    def _collect_attr_stmt(
        self,
        stmt: ast.stmt,
        analysis: FunctionAnalysis,
        facts: dict[str, Interval],
        poisoned: set[str],
    ) -> None:
        def self_attr(target: ast.expr) -> str | None:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target.attr
            return None

        def record(attr: str, interval: Interval) -> None:
            facts[attr] = facts[attr].join(interval) if attr in facts else interval

        env = analysis.env_at.get(id(stmt))
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = self_attr(target)
                if attr is not None:
                    value = (
                        self._eval(stmt.value, env, analysis)
                        if env is not None
                        else TOP
                    )
                    record(attr, value)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        sub = self_attr(element)
                        if sub is not None:
                            poisoned.add(sub)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            attr = self_attr(stmt.target)
            if attr is not None:
                value = (
                    self._eval(stmt.value, env, analysis) if env is not None else TOP
                )
                record(attr, value)
        elif isinstance(stmt, ast.AugAssign):
            attr = self_attr(stmt.target)
            if attr is not None:
                poisoned.add(attr)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            attr = self_attr(stmt.target)
            if attr is not None:
                poisoned.add(attr)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = self_attr(target)
                if attr is not None:
                    poisoned.add(attr)

    # ------------------------------------------------------------------
    # Per-function fixpoint
    # ------------------------------------------------------------------
    def _entry_env(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
    ) -> Env:
        env: Env = {}
        params = _param_names(func)
        if class_name is not None and params and params[0] == "self":
            for attr, interval in self._attr_facts.get(class_name, {}).items():
                env[f"self.{attr}"] = interval
        contract = _contract_of(func)
        scope_locals = set(params)
        for clause in contract.requires:
            clause_ast = _parse_clause(clause)
            if clause_ast is None:
                continue
            refined = self._refine(env, clause_ast, True, None, scope_locals)
            if refined is not None:
                env = refined
        return env

    def _analyze(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_name: str | None,
    ) -> FunctionAnalysis:
        analysis = FunctionAnalysis(
            node=func,
            qualname=qualname,
            class_name=class_name,
            contract=_contract_of(func),
        )
        analysis.param_names = set(_param_names(func))
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                analysis.assigned_names.add(node.id)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                analysis.poisoned.update(node.names)
        _collect_defs(func, analysis)
        cfg = build_cfg(func)
        analysis.cfg = cfg

        in_envs: dict[int, Env] = {cfg.entry: self._entry_env(func, class_name)}
        visits: dict[int, int] = {}
        worklist: list[int] = [cfg.entry]
        total_visits = 0
        while worklist:
            index = worklist.pop(0)
            total_visits += 1
            if total_visits > _MAX_VISITS:
                analysis.abandoned = True
                analysis.env_at = {}
                return analysis
            visits[index] = visits.get(index, 0) + 1
            block = cfg.blocks[index]
            env = dict(in_envs.get(index, {}))
            for stmt in block.statements:
                env = self._transfer(stmt, env, analysis, record=False)
            for edge in block.edges:
                out = env
                if edge.test is not None:
                    refined = self._refine(
                        dict(env), edge.test, edge.assume, analysis, None
                    )
                    if refined is None:
                        continue  # statically infeasible edge
                    out = refined
                old = in_envs.get(edge.dst)
                if old is None:
                    in_envs[edge.dst] = dict(out)
                    worklist.append(edge.dst)
                    continue
                joined = _join_envs(old, out)
                if edge.dst in cfg.loop_heads and visits.get(edge.dst, 0) >= 1:
                    joined = _widen_envs(old, joined)
                if joined != old:
                    in_envs[edge.dst] = joined
                    if edge.dst not in worklist:
                        worklist.append(edge.dst)

        # Recording pass over the stabilized envs.
        for block in cfg.blocks:
            env = dict(in_envs.get(block.index, {})) if block.index in in_envs else None
            for stmt in block.statements:
                if env is None:
                    continue  # unreachable block: leave env_at empty
                env = self._transfer(stmt, env, analysis, record=True)
        return analysis

    # ------------------------------------------------------------------
    # Statement transfer
    # ------------------------------------------------------------------
    def _kill(self, env: Env, root_key: str) -> None:
        env.pop(root_key, None)
        prefix = root_key + "."
        for key in [k for k in env if k.startswith(prefix)]:
            del env[key]

    def _set(self, env: Env, key: str, interval: Interval) -> None:
        self._kill(env, key)
        if not interval.is_top:
            env[key] = interval

    def _transfer(
        self, stmt: ast.stmt, env: Env, analysis: FunctionAnalysis, *, record: bool
    ) -> Env:
        walrus = _walrus_names(stmt)
        if walrus:
            for name in walrus:
                self._kill(env, name)
        if record:
            analysis.env_at[id(stmt)] = dict(env)

        if isinstance(stmt, ast.Assign):
            self._transfer_assign(stmt.targets, stmt.value, env, analysis)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._transfer_assign([stmt.target], stmt.value, env, analysis)
        elif isinstance(stmt, ast.AugAssign):
            key = key_of(stmt.target)
            if key is not None and "[" not in key and key.split(".", 1)[0] not in analysis.poisoned:
                current = self._lookup(key, env, analysis)
                amount = self._eval(stmt.value, env, analysis)
                self._set(env, key, self._binop(type(stmt.op), current, amount))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_for_target(stmt, env, analysis)
        elif isinstance(stmt, ast.Return):
            if record:
                analysis.returns.append((stmt, dict(env)))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    target_key = key_of(item.optional_vars)
                    if target_key is not None:
                        self._kill(env, target_key)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                target_key = key_of(target)
                if target_key is not None:
                    self._kill(env, target_key)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                self._kill(env, bound)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            self._kill(env, stmt.name)
        # If / While / Assert / Raise / Expr / Pass: no state change here —
        # branch effects live on the CFG edges.
        return env

    def _transfer_assign(
        self,
        targets: list[ast.expr],
        value: ast.expr,
        env: Env,
        analysis: FunctionAnalysis,
    ) -> None:
        interval, elements = self._eval_with_elements(value, env, analysis)
        for target in targets:
            key = key_of(target)
            if key is not None:
                if "[" in key or key.split(".", 1)[0] in analysis.poisoned:
                    self._kill(env, key)
                else:
                    self._set(env, key, interval)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for position, element in enumerate(target.elts):
                    sub_key = key_of(element)
                    if sub_key is None:
                        if isinstance(element, ast.Starred):
                            inner = key_of(element.value)
                            if inner is not None:
                                self._kill(env, inner)
                        continue
                    if "[" in sub_key or sub_key.split(".", 1)[0] in analysis.poisoned:
                        self._kill(env, sub_key)
                        continue
                    self._set(env, sub_key, elements.get(position, TOP))

    def _bind_for_target(
        self, stmt: ast.For | ast.AsyncFor, env: Env, analysis: FunctionAnalysis
    ) -> None:
        target = stmt.target
        element = self._iteration_element(stmt.iter, env, analysis)
        if isinstance(target, ast.Name):
            self._set(env, target.id, element)
            return
        keys: list[str] = []
        if isinstance(target, (ast.Tuple, ast.List)):
            for part in target.elts:
                part_key = key_of(part)
                if part_key is not None:
                    keys.append(part_key)
        for part_key in keys:
            self._kill(env, part_key)
        if (
            isinstance(target, (ast.Tuple, ast.List))
            and len(target.elts) == 2
            and isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "enumerate"
            and isinstance(target.elts[0], ast.Name)
        ):
            self._set(env, target.elts[0].id, Interval.nonnegative())

    def _iteration_element(
        self, iterable: ast.expr, env: Env, analysis: FunctionAnalysis
    ) -> Interval:
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Name):
            if iterable.func.id == "range" and iterable.args:
                args = [self._eval(a, env, analysis) for a in iterable.args]
                if len(args) == 1:
                    start, stop = Interval.const(0.0), args[0]
                    step_positive = True
                else:
                    start, stop = args[0], args[1]
                    step_positive = len(args) < 3 or args[2].is_positive
                if step_positive and start.lo <= stop.hi - 1.0:
                    # inf - 1 stays inf, so unbounded stops are handled.
                    return Interval(start.lo, stop.hi - 1.0)
                return TOP
        if isinstance(iterable, (ast.Tuple, ast.List)) and iterable.elts:
            joined = self._eval(iterable.elts[0], env, analysis)
            for element in iterable.elts[1:]:
                joined = joined.join(self._eval(element, env, analysis))
            return joined
        return TOP

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _lookup(
        self,
        key: str,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None = None,
    ) -> Interval:
        found = env.get(key)
        if found is not None:
            return found
        root = key.split(".", 1)[0]
        if analysis is not None:
            if root in analysis.poisoned:
                return TOP
            if root in analysis.locals:
                return TOP  # a local we know nothing about here
        if scope_locals is not None and root in scope_locals:
            return TOP
        return self.module_env.get(key, TOP)

    def _eval(
        self,
        expr: ast.AST,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None = None,
    ) -> Interval:
        interval, _elements = self._eval_with_elements(expr, env, analysis, scope_locals)
        return interval

    def _eval_with_elements(
        self,
        expr: ast.AST,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None = None,
    ) -> tuple[Interval, dict[int, Interval]]:
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool):
                return Interval.const(1.0 if value else 0.0), {}
            if isinstance(value, (int, float)):
                return Interval.const(float(value)), {}
            return TOP, {}
        key = key_of(expr)
        if key is not None:
            return self._lookup(key, env, analysis, scope_locals), {}
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env, analysis, scope_locals)
            right = self._eval(expr.right, env, analysis, scope_locals)
            return self._binop(type(expr.op), left, right), {}
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env, analysis, scope_locals)
            if isinstance(expr.op, ast.USub):
                return operand.neg(), {}
            if isinstance(expr.op, ast.UAdd):
                return operand, {}
            if isinstance(expr.op, ast.Not):
                return Interval(0.0, 1.0), {}
            return TOP, {}
        if isinstance(expr, ast.IfExp):
            return self._eval_ifexp(expr, env, analysis, scope_locals), {}
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, analysis, scope_locals)
        if isinstance(expr, (ast.Compare, ast.BoolOp)):
            return Interval(0.0, 1.0), {}
        if isinstance(expr, ast.Tuple):
            elements = {
                position: self._eval(element, env, analysis, scope_locals)
                for position, element in enumerate(expr.elts)
            }
            return TOP, elements
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, env, analysis, scope_locals), {}
        if isinstance(expr, ast.NamedExpr):
            return self._eval(expr.value, env, analysis, scope_locals), {}
        return TOP, {}

    def _eval_ifexp(
        self,
        expr: ast.IfExp,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> Interval:
        env_true = self._refine(dict(env), expr.test, True, analysis, scope_locals)
        env_false = self._refine(dict(env), expr.test, False, analysis, scope_locals)
        if env_true is None and env_false is None:
            return TOP
        if env_true is None:
            return self._eval(expr.orelse, env_false or env, analysis, scope_locals)
        if env_false is None:
            return self._eval(expr.body, env_true, analysis, scope_locals)
        body = self._eval(expr.body, env_true, analysis, scope_locals)
        orelse = self._eval(expr.orelse, env_false, analysis, scope_locals)
        return body.join(orelse)

    @staticmethod
    def _binop(op: type[ast.operator], left: Interval, right: Interval) -> Interval:
        if op is ast.Add:
            return left.add(right)
        if op is ast.Sub:
            return left.sub(right)
        if op is ast.Mult:
            return left.mul(right)
        if op is ast.Div:
            return left.div(right)
        if op is ast.FloorDiv:
            return left.floordiv(right)
        if op is ast.Mod:
            return left.mod(right)
        if op is ast.Pow:
            return left.pow(right)
        if op is ast.LShift:
            return left.lshift(right)
        return TOP

    def _eval_call(
        self,
        call: ast.Call,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> tuple[Interval, dict[int, Interval]]:
        func = call.func
        root: str | None = None
        name: str | None = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root, name = func.value.id, func.attr

        def arg(index: int) -> Interval:
            if index < len(call.args) and not isinstance(call.args[index], ast.Starred):
                return self._eval(call.args[index], env, analysis, scope_locals)
            return TOP

        has_args = bool(call.args) and not any(
            isinstance(a, ast.Starred) for a in call.args
        )
        if root is None and name is not None and not call.keywords:
            if name == "len":
                return Interval.nonnegative(), {}
            if name == "abs" and has_args:
                return arg(0).abs(), {}
            if name in ("max", "min") and len(call.args) >= 2 and has_args:
                values = [arg(i) for i in range(len(call.args))]
                if name == "max":
                    lo = max(v.lo for v in values)
                    hi = max(v.hi for v in values)
                    nonzero = lo > 0.0 or hi < 0.0 or any(v.is_positive for v in values)
                else:
                    lo = min(v.lo for v in values)
                    hi = min(v.hi for v in values)
                    nonzero = (
                        lo > 0.0
                        or hi < 0.0
                        or all(v.is_positive for v in values)
                        or any(v.is_negative for v in values)
                    )
                return Interval(lo, hi, nonzero), {}
            if name == "float" and has_args:
                literal = call.args[0]
                if isinstance(literal, ast.Constant) and isinstance(
                    literal.value, str
                ):
                    # Fold float("inf") / float("-inf"): extended-real
                    # endpoints the sanity-bound clauses compare against.
                    try:
                        folded = float(literal.value)
                    except ValueError:
                        return TOP, {}
                    if math.isnan(folded):
                        return TOP, {}
                    return Interval.const(folded), {}
                return arg(0), {}
            if name == "int" and has_args:
                return arg(0).to_int(), {}
            if name == "round" and len(call.args) == 1 and has_args:
                value = arg(0)
                return value.to_int().join(value), {}
            if name == "bool":
                return Interval(0.0, 1.0), {}
        if root in ("math", "np", "numpy") and name is not None:
            transferred = self._math_call(name, call, env, analysis, scope_locals)
            if transferred is not None:
                return transferred, {}
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and len(call.args) == 1
        ):
            dtype = call.args[0]
            dtype_name = (
                dtype.attr
                if isinstance(dtype, ast.Attribute)
                else getattr(dtype, "id", None)
            )
            value = self._eval(func.value, env, analysis, scope_locals)
            # Casts to signed/float dtypes preserve numeric bounds;
            # unsigned targets wrap negative values around, so only a
            # nonnegative source survives the cast with its bounds.
            if isinstance(dtype_name, str) and (
                not dtype_name.startswith("u") or value.is_nonnegative
            ):
                # join with to_int() so integer targets' truncation
                # stays covered; exact for float targets.
                return value.to_int().join(value), {}
            return TOP, {}
        return self._project_call(call, env, analysis, scope_locals)

    def _math_call(
        self,
        name: str,
        call: ast.Call,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> Interval | None:
        if not call.args or isinstance(call.args[0], ast.Starred):
            return None
        value = self._eval(call.args[0], env, analysis, scope_locals)
        if name == "sqrt":
            return value.sqrt()
        if name == "exp":
            return value.exp()
        if name == "exp2":
            return value.exp()  # 2**x: positive with the same shape caveats
        if name == "expm1":
            return value.exp().sub(Interval.const(1.0))
        if name in ("log", "log2", "log10"):
            return value.log()
        if name == "log1p":
            return value.add(Interval.const(1.0)).log()
        if name in ("fabs", "abs", "absolute"):
            return value.abs()
        if name == "floor":
            return value.floor()
        if name == "ceil":
            return value.ceil()
        if name == "pow" and len(call.args) >= 2:
            exponent = self._eval(call.args[1], env, analysis, scope_locals)
            return value.pow(exponent)
        if name in ("maximum", "fmax") and len(call.args) >= 2:
            other = self._eval(call.args[1], env, analysis, scope_locals)
            return value.maximum(other)
        if name in ("minimum", "fmin") and len(call.args) >= 2:
            other = self._eval(call.args[1], env, analysis, scope_locals)
            return value.minimum(other)
        if name == "clip" and len(call.args) >= 3:

            def clip_bound(index: int) -> Interval | None:
                node = call.args[index]
                if isinstance(node, ast.Constant) and node.value is None:
                    return None  # open side: np.clip(x, 0, None)
                return self._eval(node, env, analysis, scope_locals)

            return value.clip(clip_bound(1), clip_bound(2))
        if name == "where" and len(call.args) >= 3:
            branches = [
                self._eval(call.args[index], env, analysis, scope_locals)
                for index in (1, 2)
            ]
            return branches[0].join(branches[1])
        if name == "count_nonzero":
            return Interval.nonnegative()
        if name in ("int8", "int16", "int32", "int64", "uint8", "uint16", "uint32", "uint64"):
            if name.startswith("u") and not value.is_nonnegative:
                return TOP  # unsigned wrap-around of a negative value
            return value.to_int()
        if name in ("float16", "float32", "float64", "float128", "asarray", "array"):
            return value
        return None

    # ------------------------------------------------------------------
    # Project calls and @ensures binding
    # ------------------------------------------------------------------
    def _resolve_callee(
        self, func: ast.expr, analysis: FunctionAnalysis | None
    ) -> FunctionAnalysis | None:
        if isinstance(func, ast.Name):
            return self._by_name.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and analysis is not None
            and analysis.class_name is not None
        ):
            for relative in self._class_relatives(analysis.class_name):
                found = self._methods.get((relative, func.attr))
                if found is not None:
                    return found
        return None

    def _resolve_call_view(
        self, call: ast.Call, analysis: FunctionAnalysis | None
    ) -> RemoteCallee | None:
        """Local callee (contract-bearing) or oracle-resolved remote callee."""
        callee = self._resolve_callee(call.func, analysis)
        if callee is not None and callee.contract.ensures:
            attrs: dict[str, Interval] = {}
            if callee.class_name is not None:
                attrs = dict(self._attr_facts.get(callee.class_name, {}))
            return RemoteCallee(
                qualname=callee.qualname,
                param_names=tuple(_param_names(callee.node)),
                contract=callee.contract,
                self_attrs=attrs,
            )
        if self.oracle is not None:
            lookup = getattr(self.oracle, "lookup", None)
            if lookup is not None:
                remote = lookup(self.module, call)
                if remote is not None:
                    return remote
        return None

    def _project_call(
        self,
        call: ast.Call,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> tuple[Interval, dict[int, Interval]]:
        view = self._resolve_call_view(call, analysis)
        if view is None:
            return TOP, {}
        if view.contract.ensures:
            # Explicit contracts always win over inferred summaries.
            if view.qualname in self._ensures_stack:
                return TOP, {}
            self._ensures_stack.add(view.qualname)
            try:
                argenv = self._bind_arguments(call, view, env, analysis, scope_locals)
                result, elements = TOP, {}
                for clause in view.contract.ensures:
                    clause_ast = _parse_clause(clause)
                    if not isinstance(clause_ast, ast.Compare) or len(clause_ast.ops) != 1:
                        continue
                    left_key = key_of(clause_ast.left)
                    if left_key is None or not left_key.startswith("result"):
                        continue
                    op = type(clause_ast.ops[0])
                    assume = _ASSUME.get(op)
                    if assume is None:
                        continue
                    bound = self._eval(
                        clause_ast.comparators[0], argenv, None, set(view.param_names)
                    )
                    if left_key == "result":
                        refined = assume(result, bound)
                        if refined is not None:
                            result = refined
                    elif left_key.startswith("result["):
                        position = int(left_key[len("result[") : -1])
                        refined = assume(elements.get(position, TOP), bound)
                        if refined is not None:
                            elements[position] = refined
                return result, elements
            finally:
                self._ensures_stack.discard(view.qualname)
        if view.summary is not None:
            if analysis is not None and not (
                view.summary.is_top and not view.summary_elements
            ):
                analysis.used_summary = True
            return view.summary, dict(view.summary_elements)
        return TOP, {}

    def _bind_arguments(
        self,
        call: ast.Call,
        callee: RemoteCallee,
        env: Env,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> Env:
        params = list(callee.param_names)
        if params and params[0] in ("self", "cls"):
            # ``self.<attr>`` facts of the callee's class hold for the
            # receiver, so clauses over ``self.x`` stay evaluable.
            params = params[1:]
        argenv: Env = {}
        for attr, interval in callee.self_attrs.items():
            argenv[f"self.{attr}"] = interval
        for position, arg_node in enumerate(call.args):
            if isinstance(arg_node, ast.Starred) or position >= len(params):
                break
            value = self._eval(arg_node, env, analysis, scope_locals)
            if not value.is_top:
                argenv[params[position]] = value
            # Dotted facts about the argument expression transfer to the
            # parameter name: ``column.size >= 1`` at the call site lets a
            # ``column.size``-based clause evaluate in the callee frame.
            arg_key = key_of(arg_node)
            if arg_key is not None:
                prefix = arg_key + "."
                for caller_key, interval in env.items():
                    if caller_key.startswith(prefix):
                        argenv[params[position] + "." + caller_key[len(prefix):]] = interval
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                value = self._eval(keyword.value, env, analysis, scope_locals)
                if not value.is_top:
                    argenv[keyword.arg] = value
        # Preconditions refine the frame: calls are assumed to satisfy
        # @requires (violations surface at runtime under REPRO_CONTRACTS).
        callee_locals = set(callee.param_names)
        for clause in callee.contract.requires:
            clause_ast = _parse_clause(clause)
            if clause_ast is None:
                continue
            refined = self._refine(argenv, clause_ast, True, None, callee_locals)
            if refined is not None:
                argenv = refined
        return argenv

    # ------------------------------------------------------------------
    # Relational (symbolic-difference) reasoning
    # ------------------------------------------------------------------
    #: Recursion budget for the symbolic rules; contract clauses and
    #: estimator return expressions are small, so this is generous.
    _SYM_DEPTH = 12

    @staticmethod
    def _meet_best(current: Interval, candidate: Interval) -> Interval:
        """Tighten ``current`` by ``candidate``; both over-approximate the
        same value, so intersection is sound (kept as-is if the documented
        int-cast caveat ever makes them disagree)."""
        met = current.meet(candidate)
        return met if met is not None else current

    def _stable_root(self, key: str, analysis: FunctionAnalysis | None) -> bool:
        """A key whose value cannot differ between its binding and any use:
        the root name is never stored in this function (parameter, global)
        or is a non-parameter local with exactly one recorded definition."""
        if analysis is None:
            return False
        root = key.split(".", 1)[0]
        if root in analysis.poisoned:
            return False
        count = analysis.store_counts.get(root, 0)
        if count == 0:
            return True
        return (
            count == 1 and root not in analysis.param_names and root in analysis.defs
        )

    def _expr_stable(self, expr: ast.expr, analysis: FunctionAnalysis | None) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if not self._stable_root(node.id, analysis):
                    return False
        return True

    def _canon(self, key: str, analysis: FunctionAnalysis | None) -> str:
        """Canonical form of a key under single-assignment copy chasing:
        ``d = profile.distinct`` makes ``d`` canonically ``profile.distinct``."""
        if analysis is None:
            return key
        seen: set[str] = set()
        while key not in seen:
            seen.add(key)
            replaced = self._canon_step(key, analysis)
            if replaced is None:
                return key
            key = replaced
        return key

    def _canon_step(self, key: str, analysis: FunctionAnalysis) -> str | None:
        expr = analysis.defs.get(key)
        if expr is not None:
            target = key_of(_peel_cast(expr))
            if target is not None and self._stable_root(target, analysis):
                return target
        root, sep, rest = key.partition(".")
        if sep:
            expr = analysis.defs.get(root)
            if expr is not None:
                target = key_of(_peel_cast(expr))
                if target is not None and self._stable_root(target, analysis):
                    return f"{target}.{rest}"
        return None

    def _sym_norm(self, expr: ast.expr, analysis: FunctionAnalysis | None) -> ast.expr:
        """Structural normalization: peel casts, project constructor
        keyword fields (``Estimate(value=X, ...).value`` -> ``X``), and
        index literal tuples."""
        expr = _peel_cast(expr)
        if isinstance(expr, ast.Attribute):
            base = _peel_cast(expr.value)
            if (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Name)
                and base.func.id[:1].isupper()
            ):
                for keyword in base.keywords:
                    if keyword.arg == expr.attr:
                        return self._sym_norm(keyword.value, analysis)
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.slice, ast.Constant)
            and isinstance(expr.slice.value, int)
        ):
            base = _peel_cast(expr.value)
            index = expr.slice.value
            if isinstance(base, ast.Tuple) and 0 <= index < len(base.elts):
                return self._sym_norm(base.elts[index], analysis)
        return expr

    def _fact_diff(
        self, ca: str, cb: str, analysis: FunctionAnalysis | None
    ) -> Interval:
        """Interval of ``ca - cb`` implied by relational ``@requires`` facts."""
        if analysis is None:
            return TOP
        best = TOP
        for left_key, op, right_key in analysis.relational_facts:
            cl = self._canon(left_key, analysis)
            cr = self._canon(right_key, analysis)
            if not (
                self._stable_root(cl, analysis) and self._stable_root(cr, analysis)
            ):
                continue
            if (cl, cr) == (ca, cb):
                direct = True
            elif (cl, cr) == (cb, ca):
                direct = False
            else:
                continue
            if op is ast.Eq:
                candidate = Interval.const(0.0)
            elif (op is ast.GtE and direct) or (op is ast.LtE and not direct):
                candidate = Interval.nonnegative()
            elif (op is ast.Gt and direct) or (op is ast.Lt and not direct):
                candidate = Interval.positive()
            elif (op is ast.LtE and direct) or (op is ast.GtE and not direct):
                candidate = Interval.at_most(0.0)
            else:  # Lt direct / Gt mirrored
                candidate = Interval.at_most(0.0, nonzero=True)
            best = self._meet_best(best, candidate)
        return best

    def _sym_diff(
        self,
        a: ast.expr,
        b: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        """Interval of ``a - b``, sharpened by structural rules."""
        if depth > self._SYM_DEPTH:
            return TOP
        a = self._sym_norm(a, analysis)
        b = self._sym_norm(b, analysis)
        best = self._sym_eval(a, env, analysis, depth + 1).sub(
            self._sym_eval(b, env, analysis, depth + 1)
        )
        key_a = key_of(a)
        key_b = key_of(b)
        if key_a is not None and key_b is not None:
            canon_a = self._canon(key_a, analysis)
            canon_b = self._canon(key_b, analysis)
            if canon_a == canon_b and self._stable_root(canon_a, analysis):
                return Interval.const(0.0)
            best = self._meet_best(best, self._fact_diff(canon_a, canon_b, analysis))
        # Single-assignment definition chasing on either side.
        if key_a is not None and analysis is not None:
            defined = analysis.defs.get(key_a)
            if defined is not None and self._expr_stable(defined, analysis):
                best = self._meet_best(
                    best, self._sym_diff(defined, b, env, analysis, depth + 1)
                )
        if key_b is not None and analysis is not None:
            defined = analysis.defs.get(key_b)
            if defined is not None and self._expr_stable(defined, analysis):
                best = self._meet_best(
                    best, self._sym_diff(a, defined, env, analysis, depth + 1)
                )
        best = self._meet_best(best, self._sym_diff_binop(a, b, env, analysis, depth))
        best = self._meet_best(best, self._sym_diff_minmax(a, b, env, analysis, depth))
        bounds = self._sym_call_bounds(a, b, env, analysis, depth)
        best = self._meet_best(best, bounds)
        mirrored = self._sym_call_bounds(b, a, env, analysis, depth)
        best = self._meet_best(best, mirrored.neg())
        if isinstance(a, ast.IfExp):
            best = self._meet_best(
                best, self._sym_diff_ifexp(a, b, env, analysis, depth)
            )
        return best

    def _sym_diff_binop(
        self,
        a: ast.expr,
        b: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        best = TOP
        if isinstance(a, ast.BinOp) and isinstance(a.op, ast.Add):
            # (x + y) - b  =  (x - b) + y  =  (y - b) + x
            for part, other in ((a.left, a.right), (a.right, a.left)):
                candidate = self._sym_diff(part, b, env, analysis, depth + 1).add(
                    self._sym_eval(other, env, analysis, depth + 1)
                )
                best = self._meet_best(best, candidate)
        if isinstance(a, ast.BinOp) and isinstance(a.op, ast.Sub):
            # (x - y) - b  =  (x - b) - y
            candidate = self._sym_diff(a.left, b, env, analysis, depth + 1).sub(
                self._sym_eval(a.right, env, analysis, depth + 1)
            )
            best = self._meet_best(best, candidate)
        if isinstance(b, ast.BinOp) and isinstance(b.op, ast.Add):
            # a - (x + y)  =  (a - x) - y  =  (a - y) - x
            for part, other in ((b.left, b.right), (b.right, b.left)):
                candidate = self._sym_diff(a, part, env, analysis, depth + 1).sub(
                    self._sym_eval(other, env, analysis, depth + 1)
                )
                best = self._meet_best(best, candidate)
        if isinstance(b, ast.BinOp) and isinstance(b.op, ast.Sub):
            # a - (x - y)  =  (a - x) + y
            candidate = self._sym_diff(a, b.left, env, analysis, depth + 1).add(
                self._sym_eval(b.right, env, analysis, depth + 1)
            )
            best = self._meet_best(best, candidate)
        best = self._meet_best(best, self._sym_diff_div(a, b, env, analysis, depth))
        best = self._meet_best(best, self._sym_diff_mult(a, b, env, analysis, depth))
        return best

    def _sym_diff_div(
        self,
        a: ast.expr,
        b: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        best = TOP
        if isinstance(a, ast.BinOp) and isinstance(a.op, ast.Div):
            divisor = self._sym_eval(a.right, env, analysis, depth + 1)
            if divisor.is_positive:
                # N/D - b = (N - b*D) / D for D > 0.
                if isinstance(b, ast.Constant) and b.value in (1, 1.0):
                    numerator = self._sym_diff(a.left, a.right, env, analysis, depth + 1)
                else:
                    scaled = ast.BinOp(left=b, op=ast.Mult(), right=a.right)
                    numerator = self._sym_diff(a.left, scaled, env, analysis, depth + 1)
                best = self._meet_best(best, numerator.div(divisor))
        if isinstance(b, ast.BinOp) and isinstance(b.op, ast.Div):
            divisor = self._sym_eval(b.right, env, analysis, depth + 1)
            if divisor.is_positive:
                # a - N/D = (a*D - N) / D for D > 0.
                if isinstance(a, ast.Constant) and a.value in (1, 1.0):
                    numerator = self._sym_diff(b.right, b.left, env, analysis, depth + 1)
                else:
                    scaled = ast.BinOp(left=a, op=ast.Mult(), right=b.right)
                    numerator = self._sym_diff(scaled, b.left, env, analysis, depth + 1)
                best = self._meet_best(best, numerator.div(divisor))
        return best

    def _sym_diff_mult(
        self,
        a: ast.expr,
        b: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        """Common-factor products: ``X*A - X*B = X * (A - B)``."""

        def factors(expr: ast.expr) -> list[tuple[ast.expr, ast.expr | None]]:
            # (factor, cofactor); cofactor None means an implicit 1.
            pairs: list[tuple[ast.expr, ast.expr | None]] = [(expr, None)]
            if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Mult):
                pairs.append((expr.left, expr.right))
                pairs.append((expr.right, expr.left))
            return pairs

        best = TOP
        one = ast.Constant(value=1.0)
        for factor_a, cofactor_a in factors(a):
            key_fa = key_of(self._sym_norm(factor_a, analysis))
            if key_fa is None:
                continue
            canon_fa = self._canon(key_fa, analysis)
            if not self._stable_root(canon_fa, analysis):
                continue
            for factor_b, cofactor_b in factors(b):
                if cofactor_a is None and cofactor_b is None:
                    continue  # plain key-vs-key is handled upstream
                key_fb = key_of(self._sym_norm(factor_b, analysis))
                if key_fb is None or self._canon(key_fb, analysis) != canon_fa:
                    continue
                factor_iv = self._sym_eval(factor_a, env, analysis, depth + 1)
                inner = self._sym_diff(
                    cofactor_a if cofactor_a is not None else one,
                    cofactor_b if cofactor_b is not None else one,
                    env,
                    analysis,
                    depth + 1,
                )
                best = self._meet_best(best, factor_iv.mul(inner))
        return best

    def _sym_diff_minmax(
        self,
        a: ast.expr,
        b: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        """``min``/``max`` distribute over subtraction of a common term."""

        def minmax_args(expr: ast.expr) -> tuple[str, list[ast.expr]] | None:
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in ("min", "max")
                and len(expr.args) >= 2
                and not expr.keywords
                and not any(isinstance(arg, ast.Starred) for arg in expr.args)
            ):
                return expr.func.id, list(expr.args)
            return None

        best = TOP
        left_form = minmax_args(a)
        if left_form is not None:
            name, args = left_form
            diffs = [self._sym_diff(arg, b, env, analysis, depth + 1) for arg in args]
            if name == "max":
                candidate = Interval(max(d.lo for d in diffs), max(d.hi for d in diffs))
            else:
                candidate = Interval(min(d.lo for d in diffs), min(d.hi for d in diffs))
            best = self._meet_best(best, candidate)
        right_form = minmax_args(b)
        if right_form is not None:
            name, args = right_form
            diffs = [self._sym_diff(a, arg, env, analysis, depth + 1) for arg in args]
            if name == "max":
                # a - max(xs) = min(a - x)
                candidate = Interval(min(d.lo for d in diffs), min(d.hi for d in diffs))
            else:
                candidate = Interval(max(d.lo for d in diffs), max(d.hi for d in diffs))
            best = self._meet_best(best, candidate)
        return best

    def _sym_diff_ifexp(
        self,
        a: ast.IfExp,
        b: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        env_true = self._refine(dict(env), a.test, True, analysis, None)
        env_false = self._refine(dict(env), a.test, False, analysis, None)
        branches: list[Interval] = []
        if env_true is not None:
            branches.append(self._sym_diff(a.body, b, env_true, analysis, depth + 1))
        if env_false is not None:
            branches.append(self._sym_diff(a.orelse, b, env_false, analysis, depth + 1))
        if not branches:
            return TOP
        joined = branches[0]
        for branch in branches[1:]:
            joined = joined.join(branch)
        return joined

    def _sym_eval(
        self,
        expr: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        """Interval of ``expr``, sharpened beyond plain ``_eval`` by
        definition chasing, symbolic differences (``x - y`` and the
        ``N/D >= 1`` quotient rule), and callee ``@ensures`` bounds."""
        expr = self._sym_norm(expr, analysis)
        best = self._eval(expr, env, analysis, {"result"})
        if depth > self._SYM_DEPTH:
            return best
        key = key_of(expr)
        if key is not None and analysis is not None:
            defined = analysis.defs.get(key)
            if defined is not None and self._expr_stable(defined, analysis):
                best = self._meet_best(
                    best, self._sym_eval(defined, env, analysis, depth + 1)
                )
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Sub):
                best = self._meet_best(
                    best,
                    self._sym_diff(expr.left, expr.right, env, analysis, depth + 1),
                )
            elif isinstance(expr.op, (ast.Add, ast.Mult, ast.Div, ast.Pow)):
                left = self._sym_eval(expr.left, env, analysis, depth + 1)
                right = self._sym_eval(expr.right, env, analysis, depth + 1)
                best = self._meet_best(best, self._binop(type(expr.op), left, right))
                if isinstance(expr.op, ast.Div) and right.is_positive:
                    # N/D sits on the same side of 1 as N - D when D > 0.
                    numdiff = self._sym_diff(
                        expr.left, expr.right, env, analysis, depth + 1
                    )
                    if numdiff.is_nonnegative:
                        best = self._meet_best(best, Interval.at_least(1.0))
                    if numdiff.hi <= 0.0 and left.is_nonnegative:
                        best = self._meet_best(best, Interval(0.0, 1.0))
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            best = self._meet_best(
                best, self._sym_eval(expr.operand, env, analysis, depth + 1).neg()
            )
        bounds = self._sym_call_bounds(
            expr, ast.Constant(value=0.0), env, analysis, depth
        )
        return self._meet_best(best, bounds)

    def _sym_call_bounds(
        self,
        expr: ast.expr,
        other: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        depth: int,
    ) -> Interval:
        """Interval of ``expr - other`` from a callee's ``@ensures`` bounds
        with caller argument expressions substituted for parameters.

        Handles both plain calls (clauses over ``result``) and attribute
        projections of a call result (``inner.value`` where ``inner`` is
        single-assigned from a call: clauses over ``result.value``)."""
        attr: str | None = None
        target = _peel_cast(expr)
        if isinstance(target, ast.Attribute):
            attr = target.attr
            base = _peel_cast(target.value)
            base_key = key_of(base)
            if (
                base_key is not None
                and analysis is not None
                and base_key in analysis.defs
                and self._stable_root(base_key, analysis)
            ):
                base = _peel_cast(analysis.defs[base_key])
            target = base
        if not isinstance(target, ast.Call):
            return TOP
        view = self._resolve_call_view(target, analysis)
        if view is None or not view.contract.ensures:
            return TOP
        if view.qualname in self._ensures_stack:
            return TOP
        want_key = "result" if attr is None else f"result.{attr}"
        lo, hi = -float("inf"), float("inf")
        strict_lo = strict_hi = False
        self._ensures_stack.add(view.qualname)
        try:
            for clause in view.contract.ensures:
                clause_ast = _parse_clause(clause)
                if not isinstance(clause_ast, ast.Compare) or len(clause_ast.ops) != 1:
                    continue
                if key_of(clause_ast.left) != want_key:
                    continue
                op = type(clause_ast.ops[0])
                substituted = self._substitute_args(
                    clause_ast.comparators[0], target, view
                )
                if substituted is None:
                    continue
                diff = self._sym_diff(substituted, other, env, analysis, depth + 1)
                if op in (ast.GtE, ast.Gt):
                    if diff.lo > lo:
                        lo = diff.lo
                        strict_lo = op is ast.Gt
                elif op in (ast.LtE, ast.Lt):
                    if diff.hi < hi:
                        hi = diff.hi
                        strict_hi = op is ast.Lt
                elif op is ast.Eq:
                    lo, hi = max(lo, diff.lo), min(hi, diff.hi)
        finally:
            self._ensures_stack.discard(view.qualname)
        if lo > hi:
            return TOP  # inconsistent approximations: trust neither
        nonzero = (strict_lo and lo >= 0.0) or (strict_hi and hi <= 0.0)
        return Interval(lo, hi, nonzero)

    def _substitute_args(
        self, bound: ast.expr, call: ast.Call, view: RemoteCallee
    ) -> ast.expr | None:
        """Rewrite a callee ensures bound into the caller's frame; ``None``
        when any referenced parameter has no caller expression."""
        params = list(view.param_names)
        mapping: dict[str, ast.expr] = {}
        if params and params[0] in ("self", "cls"):
            receiver_name = params[0]
            params = params[1:]
            if isinstance(call.func, ast.Attribute):
                mapping[receiver_name] = call.func.value
                if receiver_name == "cls":
                    mapping.setdefault("self", call.func.value)
        for position, arg_node in enumerate(call.args):
            if isinstance(arg_node, ast.Starred) or position >= len(params):
                break
            mapping[params[position]] = arg_node
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in params:
                mapping[keyword.arg] = keyword.value
        referenced = {
            node.id
            for node in ast.walk(bound)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        needed = referenced & (set(view.param_names) | {"self", "cls"})
        if not needed <= set(mapping):
            return None
        if referenced - needed:
            # The clause references callee-module globals we cannot carry
            # into the caller's frame soundly.
            return None

        class _ParamSub(ast.NodeTransformer):
            def visit_Name(self, node: ast.Name) -> ast.AST:
                replacement = mapping.get(node.id)
                return replacement if replacement is not None else node

        return _ParamSub().visit(copy.deepcopy(bound))

    def _subst_result(
        self, clause_side: ast.expr, return_expr: ast.expr
    ) -> ast.expr | None:
        """Replace ``result`` / ``result[i]`` in a clause side with the
        actual return expression (or its tuple element)."""
        failed = False

        class _ResultSub(ast.NodeTransformer):
            def visit_Subscript(self, node: ast.Subscript) -> ast.AST:
                nonlocal failed
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "result"
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, int)
                ):
                    unwrapped = _peel_cast(return_expr)
                    index = node.slice.value
                    if isinstance(unwrapped, ast.Tuple) and 0 <= index < len(
                        unwrapped.elts
                    ):
                        return unwrapped.elts[index]
                    failed = True
                    return node
                return self.generic_visit(node)

            def visit_Name(self, node: ast.Name) -> ast.AST:
                if node.id == "result":
                    return return_expr
                return node

        substituted = _ResultSub().visit(copy.deepcopy(clause_side))
        if failed:
            return None
        return substituted

    # ------------------------------------------------------------------
    # Branch refinement
    # ------------------------------------------------------------------
    def _refine(
        self,
        env: Env,
        test: ast.expr,
        assume: bool,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> Env | None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._refine(env, test.operand, not assume, analysis, scope_locals)
        if isinstance(test, ast.BoolOp):
            conjunctive = (isinstance(test.op, ast.And) and assume) or (
                isinstance(test.op, ast.Or) and not assume
            )
            if not conjunctive:
                return env  # disjunctive branch information: keep TOP
            refined: Env | None = env
            for value in test.values:
                refined = self._refine(refined, value, assume, analysis, scope_locals)
                if refined is None:
                    return None
            return refined
        if isinstance(test, ast.Compare):
            return self._refine_compare(env, test, assume, analysis, scope_locals)
        if isinstance(test, ast.Constant):
            return env if bool(test.value) == assume else None
        test_key = key_of(test)
        if test_key is not None and "[" not in test_key:
            current = self._lookup(test_key, env, analysis, scope_locals)
            refined_iv = (
                current.assume_ne(_ZERO) if assume else current.meet(_ZERO)
            )
            if refined_iv is None:
                return None
            env[test_key] = refined_iv
        return env

    def _refine_compare(
        self,
        env: Env,
        test: ast.Compare,
        assume: bool,
        analysis: FunctionAnalysis | None,
        scope_locals: set[str] | None,
    ) -> Env | None:
        operands = [test.left, *test.comparators]
        ops = [type(op) for op in test.ops]
        if not assume:
            if len(ops) != 1:
                return env  # ¬(a < b < c) is a disjunction; no single fact
            negated = _NEGATE.get(ops[0])
            if negated is None:
                return env
            ops = [negated]
        for position, op in enumerate(ops):
            if op not in _ASSUME:
                continue
            left, right = operands[position], operands[position + 1]
            left_iv = self._eval(left, env, analysis, scope_locals)
            right_iv = self._eval(right, env, analysis, scope_locals)
            left_key = key_of(left)
            if left_key is not None and "[" not in left_key:
                refined = _ASSUME[op](left_iv, right_iv)
                if refined is None:
                    return None
                env[left_key] = refined
            right_key = key_of(right)
            if right_key is not None and "[" not in right_key:
                refined = _ASSUME[_MIRROR[op]](right_iv, left_iv)
                if refined is None:
                    return None
                env[right_key] = refined
        return env

    # ------------------------------------------------------------------
    # Contract clause verification (definition site)
    # ------------------------------------------------------------------
    def _ensures_verdict(self, analysis: FunctionAnalysis, clause: str) -> str:
        clause_ast = _parse_clause(clause)
        if clause_ast is None or analysis.abandoned:
            return "runtime"
        if not analysis.returns:
            return "runtime"
        statuses = []
        for return_stmt, env in analysis.returns:
            if return_stmt.value is None:
                statuses.append("unknown")
                continue
            cenv = dict(env)
            result, elements = self._eval_with_elements(
                return_stmt.value, env, analysis
            )
            if not result.is_top:
                cenv["result"] = result
            for position, interval in elements.items():
                if not interval.is_top:
                    cenv[f"result[{position}]"] = interval
            statuses.append(
                self._prove(clause_ast, cenv, analysis, return_stmt.value)
            )
        if any(status == "violated" for status in statuses):
            return "violated"
        if statuses and all(status == "proved" for status in statuses):
            return "proved"
        return "runtime"

    def _prove(
        self,
        clause: ast.expr,
        env: Env,
        analysis: FunctionAnalysis | None,
        return_expr: ast.expr | None = None,
    ) -> str:
        """``proved`` / ``violated`` / ``unknown`` for a clause in ``env``."""
        if isinstance(clause, ast.BoolOp) and isinstance(clause.op, ast.And):
            parts = [
                self._prove(value, env, analysis, return_expr)
                for value in clause.values
            ]
            if any(part == "violated" for part in parts):
                return "violated"
            if all(part == "proved" for part in parts):
                return "proved"
            return "unknown"
        if not isinstance(clause, ast.Compare) or len(clause.ops) != 1:
            return "unknown"
        locals_hint = {"result"}
        left = self._eval(clause.left, env, analysis, locals_hint)
        right = self._eval(clause.comparators[0], env, analysis, locals_hint)
        op = type(clause.ops[0])
        if op not in _ASSUME:
            return "unknown"
        if _compare_proved(op, left, right):
            return "proved"
        if _compare_proved(_NEGATE[op], left, right):
            return "violated"
        if return_expr is not None and self._prove_relational(
            clause, env, analysis, return_expr
        ):
            return "proved"
        return "unknown"

    def _prove_relational(
        self,
        clause: ast.Compare,
        env: Env,
        analysis: FunctionAnalysis | None,
        return_expr: ast.expr,
    ) -> bool:
        """Symbolic-difference proof of ``left OP right`` at a return site.

        Interval comparison fails on clauses like ``result >= d`` when both
        sides are unbounded; proving the *difference* nonnegative instead
        only needs structural facts (shared subterms, ``@requires``
        relations, callee ``@ensures`` bounds substituted with caller
        argument expressions).
        """
        lexpr = self._subst_result(clause.left, return_expr)
        rexpr = self._subst_result(clause.comparators[0], return_expr)
        if lexpr is None or rexpr is None:
            return False
        diff = self._sym_diff(lexpr, rexpr, env, analysis, 0)
        op = type(clause.ops[0])
        if op is ast.GtE:
            return diff.is_nonnegative
        if op is ast.Gt:
            return diff.is_positive
        if op is ast.LtE:
            return diff.hi <= 0.0
        if op is ast.Lt:
            return diff.is_negative
        if op is ast.Eq:
            # lo >= 0 >= hi with lo <= hi pins the difference to exactly 0.
            return diff.lo >= 0.0 >= diff.hi and not diff.nonzero
        if op is ast.NotEq:
            return diff.is_nonzero
        return False

    # ------------------------------------------------------------------
    # Node-to-statement mapping (query support)
    # ------------------------------------------------------------------
    def _map_function(self, analysis: FunctionAnalysis) -> None:
        if analysis.cfg is None:
            return
        for block in analysis.cfg.blocks:
            for stmt in block.statements:
                for expr_root in _statement_expressions(stmt):
                    self._map_node(expr_root, stmt, analysis, frozenset())

    def _map_node(
        self,
        node: ast.AST,
        stmt: ast.stmt,
        analysis: FunctionAnalysis,
        mask: frozenset[str],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own analyses
        self._node_map[id(node)] = (analysis, stmt, mask)
        if isinstance(node, ast.Lambda):
            # The body runs later, in an unknown environment.
            for default in node.args.defaults + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self._map_node(default, stmt, analysis, mask)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            bound: set[str] = set(mask)
            for generator in node.generators:
                for target_node in ast.walk(generator.target):
                    if isinstance(target_node, ast.Name):
                        bound.add(target_node.id)
            mask = frozenset(bound)
        for child in ast.iter_child_nodes(node):
            self._map_node(child, stmt, analysis, mask)


def _statement_expressions(stmt: ast.stmt) -> list[ast.AST]:
    """Expression roots that evaluate in the env *before* ``stmt``.

    Compound statements appearing in a block (If/While headers, For
    headers, With items) contribute only their condition/iterable parts —
    their bodies are separate statements in other blocks.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg is not None else [])
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots: list[ast.AST] = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
        return roots
    return [stmt]


def _compare_proved(op: type[ast.cmpop], left: Interval, right: Interval) -> bool:
    """True when ``left OP right`` holds for every pair of values."""
    if op is ast.GtE:
        return left.lo >= right.hi
    if op is ast.LtE:
        return left.hi <= right.lo
    if op is ast.Gt:
        if left.lo > right.hi:
            return True
        return (
            left.lo >= right.hi
            and left.lo == 0
            and right.hi == 0
            and (left.nonzero or right.nonzero)
        )
    if op is ast.Lt:
        if left.hi < right.lo:
            return True
        return (
            left.hi <= right.lo
            and left.hi == 0
            and right.lo == 0
            and (left.nonzero or right.nonzero)
        )
    if op is ast.Eq:
        return (
            left.lo == left.hi == right.lo == right.hi
            and left.lo not in (float("inf"), float("-inf"))
        )
    if op is ast.NotEq:
        if left.hi < right.lo or right.hi < left.lo:
            return True
        if right.lo == right.hi == 0 and left.is_nonzero:
            return True
        if left.lo == left.hi == 0 and right.is_nonzero:
            return True
        return False
    return False


def module_intervals(module: SourceModule) -> ModuleIntervals:
    """Build (or fetch the cached) interval analysis for a module."""
    cached = getattr(module, "_interval_analysis", None)
    if isinstance(cached, ModuleIntervals):
        return cached
    analysis = ModuleIntervals(module)
    module._interval_analysis = analysis  # type: ignore[attr-defined]
    return analysis
