"""Interprocedural numeric-bounds summaries over the project call graph.

This is the whole-program half of the numeric prover, mirroring
:mod:`repro.analysis.dataflow.taintflow` for the interval domain.  Per
project function the engine computes a :class:`FunctionBounds` summary —
the join of the return-value intervals over every reachable ``return``
(with per-position element intervals for tuple returns, and a syntactic
NaN-producer flag for R1304) — and propagates the summaries to a
fixpoint over the reverse call edges of the shared
:func:`~repro.analysis.callgraph.cached_callgraph`.

:class:`ProjectBounds` then acts as the *summary oracle* the
module-local engine consults
(:meth:`~repro.analysis.dataflow.engine.ModuleIntervals._resolve_call_view`):
a call the local module cannot resolve — an imported function, or a
method call devirtualized by its project-unique name — is answered with
a :class:`~repro.analysis.dataflow.engine.RemoteCallee`.  Explicit
``@requires``/``@ensures`` contracts always win; only uncontracted
callees are answered from the inferred summary, and the engine marks
proofs that leaned on one as ``via: summary`` in the ``--prove`` table.

Termination: summaries of functions on call-graph cycles (recursion,
mutual recursion) are updated through :meth:`Interval.widen` once a
function has changed more than once, and every module's re-analysis
count is capped — the lattice jumps to the widening thresholds instead
of descending an infinite chain.

Known imprecision, by design (documented in ``docs/static_analysis.md``):

* Devirtualization requires the method name to be *project-unique*
  after arity filtering; two same-name same-shape methods make the call
  unresolvable (sound: the proof simply does not go through).  External
  subclasses of project classes are invisible — the closed-world
  assumption of a self-contained research codebase.
* Summaries are context-insensitive: one interval per function, joined
  over all call sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.callgraph import (
    CallSiteResolver,
    ProjectCallGraph,
    cached_callgraph,
    module_name,
)
from repro.analysis.dataflow.engine import (
    FunctionAnalysis,
    FunctionContract,
    ModuleIntervals,
    RemoteCallee,
    _contract_of,
    _param_names,
)
from repro.analysis.dataflow.intervals import TOP, Interval
from repro.analysis.effects import _callee_key, iter_defined_functions
from repro.analysis.source import SourceModule

__all__ = [
    "FunctionBounds",
    "ProjectBounds",
    "project_bounds",
    "nan_producer_reason",
]

#: A module is re-analyzed at most this many times before its summaries
#: are frozen — the backstop under widening for pathological cycles.
_MAX_MODULE_PASSES = 5

#: After a function's summary has changed this many times, further
#: updates go through :meth:`Interval.widen` instead of replacement.
_WIDEN_AFTER = 2

#: Calls whose result may be NaN when the argument's domain is not
#: proved (``np.log(0 or negative)`` is a silent ``nan``/``-inf``).
_NAN_DOMAIN_CALLS = frozenset({"log", "log2", "log10", "log1p", "sqrt"})

#: Calls that *sanitize* NaN: their result is NaN-free (or the call is
#: itself the guard a NaN check hangs off).
_NAN_SANITIZERS = frozenset({"isnan", "isfinite", "nan_to_num", "isclose"})


@dataclass(frozen=True)
class FunctionBounds:
    """Bounds summary of one project function."""

    #: Graph key, ``repro.core.gee.gee_coefficient``.
    key: str
    qualname: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Join of the return-value interval over all reachable returns.
    interval: Interval = TOP
    #: Per-position intervals for tuple returns (positions returned by
    #: every site only).
    elements: dict[int, Interval] = field(default_factory=dict)
    #: True when a returned expression syntactically reaches a NaN
    #: producer with no sanitizer in scope (R1304 fuel).
    may_nan: bool = False

    @property
    def is_trivial(self) -> bool:
        return self.interval.is_top and not self.elements and not self.may_nan


class ProjectBounds:
    """Whole-tree bounds summaries + the engine's call-resolution oracle.

    Construction analyzes every module with the oracle already
    installed, then iterates a worklist over modules whose functions'
    summaries changed, re-enqueueing *dynamic* dependents — modules
    recorded at lookup time, so devirtualized method calls (invisible
    to the textual call graph) still converge.
    """

    def __init__(
        self, modules: Sequence[SourceModule], context: object | None = None
    ) -> None:
        self.graph: ProjectCallGraph = cached_callgraph(modules, context)
        self._modules: dict[str, SourceModule] = {}
        self._resolvers: dict[str, CallSiteResolver] = {}
        self._analyses: dict[str, ModuleIntervals] = {}
        #: key -> (module, qualname, node); one entry per project function.
        self._functions: dict[
            str, tuple[SourceModule, str, ast.FunctionDef | ast.AsyncFunctionDef]
        ] = {}
        self._contracts: dict[str, FunctionContract] = {}
        self.summaries: dict[str, FunctionBounds] = {}
        self._change_counts: dict[str, int] = {}
        #: method name -> keys of class methods bearing it (devirt index).
        self._methods_by_name: dict[str, list[str]] = {}
        #: summary key -> module paths whose analysis consulted it.
        self._dependents: dict[str, set[str]] = {}
        #: module path being analyzed right now (dependency recording).
        self._active_path: str | None = None

        for module in modules:
            modname = module_name(module.path)
            self._modules[module.path] = module
            self._resolvers[module.path] = CallSiteResolver(self.graph, module)
            for qualname, func in iter_defined_functions(module.tree):
                if "<locals>" in qualname:
                    continue  # nested functions never resolve cross-module
                key = f"{modname}.{qualname}"
                self._functions[key] = (module, qualname, func)
                self._contracts[key] = _contract_of(func)
                self.summaries[key] = FunctionBounds(
                    key=key, qualname=qualname, module=module, node=func
                )
                if "." in qualname:
                    method = qualname.rsplit(".", 1)[1]
                    self._methods_by_name.setdefault(method, []).append(key)
        self._fixpoint(modules)

    # -- public queries ------------------------------------------------
    def bounds_of(self, key: str) -> FunctionBounds | None:
        """Summary for a graph key, or None for unknown functions."""
        return self.summaries.get(key)

    def module_analysis(self, module: SourceModule) -> ModuleIntervals | None:
        """The oracle-equipped interval analysis of one module."""
        return self._analyses.get(module.path)

    def install(self) -> None:
        """Publish the converged analyses into the per-module cache.

        :func:`~repro.analysis.dataflow.engine.module_intervals` serves
        from ``module._interval_analysis``, so rules and ``--prove``
        transparently gain interprocedural resolution once this runs.
        """
        for path, analysis in self._analyses.items():
            module = self._modules[path]
            module._interval_analysis = analysis  # type: ignore[attr-defined]

    def evidence(self, key: str, limit: int = 4) -> list[str]:
        """The call chain a summary's NaN flag (or bound) rests on.

        Walks the summary's return expressions for the direct producer,
        then project callees whose own summaries carry the flag — each
        entry names a concrete site, so a finding reads as a chain.
        """
        info = self._functions.get(key)
        if info is None:
            return []
        module, _qualname, func = info
        found: list[str] = []
        seen: set[str] = set()

        def add(entry: str) -> None:
            if entry not in seen and len(found) < limit:
                seen.add(entry)
                found.append(entry)

        analysis = self._function_analysis(key)
        defs = analysis.defs if analysis is not None else {}
        for stmt in ast.walk(func):
            if not (isinstance(stmt, ast.Return) and stmt.value is not None):
                continue
            reason = nan_producer_reason(stmt.value, defs)
            if reason is not None:
                add(f"{reason} (line {stmt.value.lineno}, {module.path})")
            for call in ast.walk(stmt.value):
                if not isinstance(call, ast.Call):
                    continue
                target = self._resolve_site(module, call)
                if target is None or target == key:
                    continue
                callee = self.summaries.get(target)
                if callee is not None and callee.may_nan:
                    add(
                        f"calls {target} which may return NaN "
                        f"(line {call.lineno})"
                    )
                    found.extend(
                        entry
                        for entry in self.evidence(target, limit - len(found))
                        if entry not in seen
                    )
        return found[:limit]

    # -- oracle protocol (duck-typed; consumed by ModuleIntervals) ----
    def lookup(self, module: SourceModule, call: ast.Call) -> RemoteCallee | None:
        """Resolve a call the local module could not, as a RemoteCallee.

        Tries the textual call-graph resolver first (imported names,
        module-qualified calls), then unique-name devirtualization for
        method calls on non-``self`` receivers.  Records the consulted
        summary as a dependency of the *asking* module so the fixpoint
        re-analyzes it when the summary moves.
        """
        key = self._resolve_site(module, call)
        if key is None:
            return None
        info = self._functions.get(key)
        if info is None:
            return None
        _module, qualname, func = info
        contract = self._contracts[key]
        if self._active_path is not None:
            self._dependents.setdefault(key, set()).add(self._active_path)
        if contract.ensures:
            return RemoteCallee(
                qualname=key,
                param_names=tuple(_param_names(func)),
                contract=contract,
                self_attrs=self._self_attrs(key, qualname),
            )
        summary = self.summaries.get(key)
        if summary is None or summary.is_trivial:
            return None
        return RemoteCallee(
            qualname=key,
            param_names=tuple(_param_names(func)),
            contract=FunctionContract(),
            summary=summary.interval,
            summary_elements=dict(summary.elements),
        )

    # -- call-site resolution -----------------------------------------
    def _resolve_site(self, module: SourceModule, call: ast.Call) -> str | None:
        dotted = _callee_key(call.func)
        if dotted is not None and not dotted.startswith(("self.", "cls.")):
            resolver = self._resolvers.get(module.path)
            if resolver is not None:
                target = resolver.resolve(dotted)
                if target is not None and target in self._functions:
                    return target
        if isinstance(call.func, ast.Attribute) and not (
            isinstance(call.func.value, ast.Name)
            and call.func.value.id in ("self", "cls")
        ):
            return self._devirtualize(call)
        return None

    def _devirtualize(self, call: ast.Call) -> str | None:
        """Resolve ``receiver.method(...)`` by project-unique method name.

        Closed-world: among every class method named ``method`` in the
        tree, keep those whose signature accepts this call's argument
        shape (positional count within bounds, keywords known, no
        star-spread).  Exactly one survivor resolves; two or more —
        overrides, homonyms — make the call unresolvable, which is the
        sound direction.
        """
        assert isinstance(call.func, ast.Attribute)
        candidates = self._methods_by_name.get(call.func.attr, ())
        if not candidates:
            return None
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return None
        if any(keyword.arg is None for keyword in call.keywords):
            return None
        compatible: list[str] = []
        for key in candidates:
            _module, _qualname, func = self._functions[key]
            if self._accepts(func, call):
                compatible.append(key)
        if len(compatible) == 1:
            return compatible[0]
        return None

    @staticmethod
    def _accepts(
        func: ast.FunctionDef | ast.AsyncFunctionDef, call: ast.Call
    ) -> bool:
        args = func.args
        positional = [a.arg for a in args.posonlyargs + args.args]
        if positional and positional[0] in ("self", "cls"):
            positional = positional[1:]
        all_names = set(positional) | {a.arg for a in args.kwonlyargs}
        supplied = len(call.args)
        if supplied > len(positional) and args.vararg is None:
            return False
        for keyword in call.keywords:
            if keyword.arg not in all_names and args.kwarg is None:
                return False
        required = len(positional) - len(args.defaults)
        keyword_names = {keyword.arg for keyword in call.keywords}
        covered = supplied + len(keyword_names & set(positional[supplied:]))
        return covered >= required

    def _self_attrs(self, key: str, qualname: str) -> dict[str, Interval]:
        """``self.<attr>`` facts of the callee's class, when analyzed."""
        if "." not in qualname:
            return {}
        class_name = qualname.rsplit(".", 1)[0]
        module, _qualname, _func = self._functions[key]
        analysis = self._analyses.get(module.path)
        if analysis is None:
            return {}
        return dict(analysis.class_attr_facts(class_name))

    # -- fixpoint ------------------------------------------------------
    def _fixpoint(self, modules: Sequence[SourceModule]) -> None:
        passes: dict[str, int] = {path: 0 for path in self._modules}
        worklist: list[str] = sorted(self._modules)
        queued: set[str] = set(worklist)
        while worklist:
            path = worklist.pop(0)
            queued.discard(path)
            if passes[path] >= _MAX_MODULE_PASSES:
                continue
            passes[path] += 1
            changed = self._analyze_module(path)
            for key in changed:
                for dependent in sorted(self._dependents.get(key, ())):
                    if dependent not in queued:
                        queued.add(dependent)
                        worklist.append(dependent)

    def _analyze_module(self, path: str) -> list[str]:
        """(Re-)analyze one module; return keys whose summary changed."""
        module = self._modules[path]
        modname = module_name(module.path)
        self._active_path = path
        try:
            analysis = ModuleIntervals(module, oracle=self)
        finally:
            self._active_path = None
        self._analyses[path] = analysis
        changed: list[str] = []
        for function in analysis.function_analyses():
            key = f"{modname}.{function.qualname}"
            if key not in self._functions:
                continue
            previous = self.summaries[key]
            updated = self._summarize(key, analysis, function)
            if (
                updated.interval == previous.interval
                and updated.elements == previous.elements
                and updated.may_nan == previous.may_nan
            ):
                continue
            count = self._change_counts.get(key, 0) + 1
            self._change_counts[key] = count
            if count > _WIDEN_AFTER:
                updated = FunctionBounds(
                    key=key,
                    qualname=updated.qualname,
                    module=updated.module,
                    node=updated.node,
                    interval=previous.interval.widen(updated.interval),
                    elements={
                        position: previous.elements.get(position, TOP).widen(
                            interval
                        )
                        for position, interval in updated.elements.items()
                    },
                    may_nan=previous.may_nan or updated.may_nan,
                )
                if (
                    updated.interval == previous.interval
                    and updated.elements == previous.elements
                    and updated.may_nan == previous.may_nan
                ):
                    continue
            self.summaries[key] = updated
            changed.append(key)
        return changed

    def _summarize(
        self, key: str, analysis: ModuleIntervals, function: FunctionAnalysis
    ) -> FunctionBounds:
        module, qualname, node = self._functions[key]
        interval, elements = analysis.return_bounds(function)
        may_nan = False
        defs = function.defs
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if nan_producer_reason(stmt.value, defs) is not None:
                    may_nan = True
                    break
                if self._returns_nan_callee(module, stmt.value, key):
                    may_nan = True
                    break
        return FunctionBounds(
            key=key,
            qualname=qualname,
            module=module,
            node=node,
            interval=interval,
            elements=elements,
            may_nan=may_nan,
        )

    def _returns_nan_callee(
        self, module: SourceModule, expr: ast.expr, caller: str
    ) -> bool:
        sanitized: set[int] = set()
        for call in ast.walk(expr):
            if isinstance(call, ast.Call):
                func = call.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else getattr(func, "id", None)
                )
                if name in _NAN_SANITIZERS:
                    sanitized.update(id(node) for node in ast.walk(call))
        for call in ast.walk(expr):
            if not isinstance(call, ast.Call) or id(call) in sanitized:
                continue
            target = self._resolve_site(module, call)
            if target is None or target == caller:
                continue
            callee = self.summaries.get(target)
            if callee is not None and callee.may_nan:
                if self._active_path is not None:
                    self._dependents.setdefault(target, set()).add(
                        self._active_path
                    )
                return True
        return False

    def _function_analysis(self, key: str) -> FunctionAnalysis | None:
        module, qualname, _node = self._functions[key]
        analysis = self._analyses.get(module.path)
        if analysis is None:
            return None
        for function in analysis.function_analyses():
            if function.qualname == qualname:
                return function
        return None


# -- NaN producers (shared with rules.float_domain) --------------------
def nan_producer_reason(
    expr: ast.expr, defs: dict[str, ast.expr], depth: int = 0
) -> str | None:
    """Why ``expr`` may evaluate to NaN, or None when no producer found.

    Syntactic, with a bounded chase through single-assignment
    definitions (the engine's ``defs`` table): ``float("nan")`` /
    ``np.nan`` / ``math.nan`` literals, and ``0/0``-shaped constant
    divisions.  Unproven ``np.log``-style domains are judged by the
    caller (they need the interval engine); sanitized expressions —
    anything passed through ``nan_to_num`` or compared via ``isnan`` /
    ``isfinite`` — are the *callers'* job to suppress, keeping this
    predicate pure.
    """
    if depth > 6:
        return None
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else None
        attr = func.attr if isinstance(func, ast.Attribute) else None
        if attr in _NAN_SANITIZERS or name in _NAN_SANITIZERS:
            return None
        if (
            name == "float"
            and expr.args
            and isinstance(expr.args[0], ast.Constant)
            and isinstance(expr.args[0].value, str)
            and expr.args[0].value.lower() in ("nan", "-nan")
        ):
            return 'float("nan") literal'
        for arg in expr.args:
            reason = nan_producer_reason(arg, defs, depth + 1)
            if reason is not None:
                return reason
        return None
    if isinstance(expr, ast.Attribute):
        root = expr.value
        if (
            expr.attr == "nan"
            and isinstance(root, ast.Name)
            and root.id in ("np", "numpy", "math")
        ):
            return f"{root.id}.nan literal"
        return None
    if isinstance(expr, ast.Name):
        defined = defs.get(expr.id)
        if defined is not None:
            reason = nan_producer_reason(defined, defs, depth + 1)
            if reason is not None:
                return f"{expr.id!r} = {reason}"
        return None
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.Div) and _is_zero(expr.left, defs) and _is_zero(
            expr.right, defs
        ):
            return "0/0 division"
        for side in (expr.left, expr.right):
            reason = nan_producer_reason(side, defs, depth + 1)
            if reason is not None:
                return reason
        return None
    if isinstance(expr, (ast.Tuple, ast.List)):
        for element in expr.elts:
            reason = nan_producer_reason(element, defs, depth + 1)
            if reason is not None:
                return reason
        return None
    if isinstance(expr, ast.IfExp):
        for branch in (expr.body, expr.orelse):
            reason = nan_producer_reason(branch, defs, depth + 1)
            if reason is not None:
                return reason
        return None
    if isinstance(expr, ast.UnaryOp):
        return nan_producer_reason(expr.operand, defs, depth + 1)
    return None


def _is_zero(expr: ast.expr, defs: dict[str, ast.expr], depth: int = 0) -> bool:
    if depth > 6:
        return False
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, (int, float)) and float(expr.value) == 0.0  # reprolint: disable=R201 - detecting a literal 0.0 token, not comparing computed floats
    if isinstance(expr, ast.Name):
        defined = defs.get(expr.id)
        return defined is not None and _is_zero(defined, defs, depth + 1)
    return False


def project_bounds(
    modules: Sequence[SourceModule], context: object | None = None
) -> ProjectBounds:
    """Build (or fetch the cached) :class:`ProjectBounds` for a scan.

    Rules, ``--prove``, and the NaN rule all consume the same summaries
    within one lint run; like
    :func:`~repro.analysis.callgraph.cached_callgraph`, the shared
    project context carries the cache.  The converged analyses are
    installed into each module's interval cache as a side effect, so
    every later :func:`~repro.analysis.dataflow.engine.module_intervals`
    call resolves cross-module.
    """
    if context is None:
        engine = ProjectBounds(modules)
        engine.install()
        return engine
    token = tuple(id(module) for module in modules)
    cached = getattr(context, "_bounds_cache", None)
    if cached is not None and cached[0] == token:
        hit: ProjectBounds = cached[1]
        return hit
    engine = ProjectBounds(modules, context)
    engine.install()
    setattr(context, "_bounds_cache", (token, engine))
    return engine
