"""Intraprocedural dataflow: CFG + sign/interval abstract interpretation.

PR 1's guardedness heuristics (:mod:`repro.analysis.guards`) answer
"did the author *consider* the zero case" — a textual question.  This
package answers the stronger question the numeric rules actually care
about: *can this expression be zero or negative at this program point*.
It builds a control-flow graph per function, runs a standard interval
abstract interpretation over locals, parameters, and ``self.<attr>``
pseudo-variables (with widening at loop heads), and refines intervals
along branch edges from validation guards like ``if n < 1: raise`` or
``assert 0.0 < gamma < 1.0``.

The layers:

* :mod:`repro.analysis.dataflow.intervals` — the lattice: closed
  intervals over the extended reals plus a ``nonzero`` bit, with the
  arithmetic/builtin transfer functions;
* :mod:`repro.analysis.dataflow.cfg` — per-function control-flow graphs
  whose edges carry the branch condition they assume;
* :mod:`repro.analysis.dataflow.engine` — the worklist fixpoint, guard
  refinement, class-attribute facts, contract-clause seeding, and the
  :class:`~repro.analysis.dataflow.engine.ModuleIntervals` facade the
  rules query;
* :mod:`repro.analysis.dataflow.taint` /
  :mod:`repro.analysis.dataflow.taintflow` — the second lattice: a
  finite powerset of nondeterminism labels with an *interprocedural*
  summary fixpoint over the project call graph, powering the
  determinism rules R1001/R1002.

Soundness caveats (documented, deliberate): arithmetic is interpreted
over the reals (float underflow/overflow to zero or inf is ignored, as
the PR 1 heuristics already did); attribute facts trust encapsulation
(no external writes to ``obj.attr``); ``@ensures`` clauses of called
functions are assumed at call sites — each is verified at its own
definition, statically where provable and at runtime under
``REPRO_CONTRACTS=1`` otherwise.
"""

from repro.analysis.dataflow.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow.engine import (
    ClauseVerdict,
    FunctionAnalysis,
    ModuleIntervals,
    module_intervals,
)
from repro.analysis.dataflow.intervals import Interval
from repro.analysis.dataflow.taint import CLEAN, Taint

# NOTE: ``taintflow`` is deliberately *not* re-exported here.  It imports
# :mod:`repro.analysis.effects` (for source classification), and effects
# imports the taint lattice from this package — re-exporting taintflow
# from the package ``__init__`` would close that cycle.  Consumers import
# ``repro.analysis.dataflow.taintflow`` directly.

__all__ = [
    "CLEAN",
    "ClauseVerdict",
    "ControlFlowGraph",
    "FunctionAnalysis",
    "Interval",
    "ModuleIntervals",
    "Taint",
    "build_cfg",
    "module_intervals",
]
