"""Per-function control-flow graphs with guard-carrying edges.

The graph is deliberately small: nodes are basic blocks (runs of simple
statements), and every edge optionally records the branch condition it
assumes — ``Edge(dst, test, assume)`` means "control reaches ``dst``
when ``test`` evaluated to ``assume``".  The abstract interpreter in
:mod:`repro.analysis.dataflow.engine` refines variable intervals along
those edges, which is how validation guards like ``if n < 1: raise``
become facts (``n >= 1``) on the fall-through path.

Structures handled: ``if``/``elif``/``else``, ``while`` (with ``break``
and ``continue``), ``for`` (the loop header re-binds the target each
iteration), ``try``/``except``/``finally`` (over-approximated: handlers
may be entered from the start or the end of the body), ``with``,
``assert`` (a guard whose failing edge raises), ``return`` and
``raise`` (block dead-ends).  Anything else is treated as a plain
statement with fall-through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "ControlFlowGraph", "Edge", "build_cfg"]


@dataclass
class Edge:
    """Control transfer to block ``dst``; if ``test`` is set, the edge is
    only taken when ``test`` evaluates to ``assume``."""

    dst: int
    test: ast.expr | None = None
    assume: bool = True


@dataclass
class Block:
    """A straight-line run of statements followed by outgoing edges."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """CFG for one function body."""

    blocks: list[Block] = field(default_factory=list)
    entry: int = 0
    #: Indices of loop-header blocks (widening points for the fixpoint).
    loop_heads: set[int] = field(default_factory=set)

    def new_block(self) -> Block:
        """Allocate and register an empty basic block."""
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block


class _Builder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self.entry = self.cfg.new_block()
        self.current: Block | None = self.entry
        # (loop_head_index, after_loop_index) for break/continue targets.
        self._loops: list[tuple[int, int]] = []

    # -- plumbing ------------------------------------------------------
    def _link(self, src: Block, dst: Block,
              test: ast.expr | None = None, assume: bool = True) -> None:
        src.edges.append(Edge(dst.index, test, assume))

    def _start_block(self) -> Block:
        block = self.cfg.new_block()
        self.current = block
        return block

    # -- statement dispatch --------------------------------------------
    def add_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None:
                # Unreachable code after return/raise/break: give it a
                # detached block so its expressions still get (empty) envs.
                self._start_block()
            self.add_statement(stmt)

    def add_statement(self, stmt: ast.stmt) -> None:
        assert self.current is not None
        if isinstance(stmt, ast.If):
            self._add_if(stmt)
        elif isinstance(stmt, ast.While):
            self._add_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._add_for(stmt)
        elif isinstance(stmt, ast.Try):
            self._add_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.current.statements.append(stmt)
            self.add_body(stmt.body)
        elif isinstance(stmt, ast.Assert):
            self._add_assert(stmt)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.current.statements.append(stmt)
            self.current = None
        elif isinstance(stmt, ast.Break):
            if self._loops:
                # Edge to the block after the innermost loop.
                after = self._loops[-1][1]
                self.current.edges.append(Edge(after))
            self.current = None
        elif isinstance(stmt, ast.Continue):
            if self._loops:
                head = self._loops[-1][0]
                self.current.edges.append(Edge(head))
            self.current = None
        else:
            self.current.statements.append(stmt)

    # -- structured statements -----------------------------------------
    def _add_if(self, stmt: ast.If) -> None:
        assert self.current is not None
        cond_block = self.current
        cond_block.statements.append(stmt)
        then_entry = self._start_block()
        self._link(cond_block, then_entry, stmt.test, True)
        self.add_body(stmt.body)
        then_exit = self.current

        if stmt.orelse:
            else_entry = self._start_block()
            self._link(cond_block, else_entry, stmt.test, False)
            self.add_body(stmt.orelse)
            else_exit = self.current
        else:
            else_entry = else_exit = None

        join = self._start_block()
        if then_exit is not None:
            self._link(then_exit, join)
        if else_exit is not None:
            self._link(else_exit, join)
        elif else_entry is None:
            self._link(cond_block, join, stmt.test, False)

    def _add_while(self, stmt: ast.While) -> None:
        assert self.current is not None
        before = self.current
        head = self._start_block()
        head.statements.append(stmt)
        self._link(before, head)
        self.cfg.loop_heads.add(head.index)

        after = self.cfg.new_block()
        self._loops.append((head.index, after.index))
        body_entry = self._start_block()
        self._link(head, body_entry, stmt.test, True)
        self.add_body(stmt.body)
        if self.current is not None:
            self._link(self.current, head)
        self._loops.pop()

        self._link(head, after, stmt.test, False)
        if stmt.orelse:
            # ``else`` runs on normal exit; model it between head and after.
            else_entry = self._start_block()
            self._link(head, else_entry, stmt.test, False)
            self.add_body(stmt.orelse)
            if self.current is not None:
                self._link(self.current, after)
        self.current = after

    def _add_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        assert self.current is not None
        before = self.current
        head = self._start_block()
        # The For node itself sits in the header: the engine's transfer
        # function re-binds the loop target from the iterable there.  If,
        # While and Assert nodes in statement position are markers only —
        # their effect lives on the outgoing guarded edges.
        head.statements.append(stmt)
        self._link(before, head)
        self.cfg.loop_heads.add(head.index)

        after = self.cfg.new_block()
        self._loops.append((head.index, after.index))
        body_entry = self._start_block()
        self._link(head, body_entry)
        self.add_body(stmt.body)
        if self.current is not None:
            self._link(self.current, head)
        self._loops.pop()

        self._link(head, after)
        if stmt.orelse:
            else_entry = self._start_block()
            self._link(head, else_entry)
            self.add_body(stmt.orelse)
            if self.current is not None:
                self._link(self.current, after)
        self.current = after

    def _add_try(self, stmt: ast.Try) -> None:
        assert self.current is not None
        before = self.current
        body_entry = self._start_block()
        self._link(before, body_entry)
        self.add_body(stmt.body)
        body_exit = self.current

        exits: list[Block] = []
        if body_exit is not None:
            if stmt.orelse:
                self.add_body(stmt.orelse)
                if self.current is not None:
                    exits.append(self.current)
            else:
                exits.append(body_exit)

        for handler in stmt.handlers:
            handler_entry = self._start_block()
            # A handler can be entered before or after any body effect:
            # over-approximate with edges from both ends of the body.
            self._link(before, handler_entry)
            if body_exit is not None:
                self._link(body_exit, handler_entry)
            self.add_body(handler.body)
            if self.current is not None:
                exits.append(self.current)

        join = self._start_block()
        for block in exits:
            self._link(block, join)
        if not exits:
            self.current = None
            self._start_block()
        if stmt.finalbody:
            self.add_body(stmt.finalbody)

    def _add_assert(self, stmt: ast.Assert) -> None:
        assert self.current is not None
        cond_block = self.current
        cond_block.statements.append(stmt)
        ok = self._start_block()
        self._link(cond_block, ok, stmt.test, True)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Build the CFG for one function definition's body."""
    builder = _Builder()
    builder.add_body(func.body)
    return builder.cfg
