"""Interprocedural taint propagation: sources → returns, over the call graph.

This is the whole-program half of the determinism auditor (rules R1001
and R1002).  The lattice is :mod:`repro.analysis.dataflow.taint`; the
sources are classified by
:class:`~repro.analysis.effects.NondetSources`; call resolution reuses
the project call graph's tables
(:class:`~repro.analysis.callgraph.CallSiteResolver`), so a taint chain
and a call chain can never disagree about what resolves.

Per function the engine computes a *summary*:

* ``return_taint`` — concrete nondeterminism labels that may reach the
  return value (or a ``yield``), and
* ``param_flow`` — which parameters may flow into the return value, so
  a caller's argument taint propagates through the callee precisely
  (``_splitmix64(values)`` returns a mix of ``values``; calling it with
  hash-order-tainted data taints the result, calling it with clean data
  does not).

Propagation is flow-insensitive within a body (one join per name over
all assignments, iterated to a fixpoint) and summary-based across
bodies (a worklist over the resolved call edges; the label powerset is
finite, so both fixpoints terminate).  Sanitizers are expression-level:
``sorted(...)``/``min``/``max``/``len``/``any``/``all`` erase
:data:`~repro.analysis.dataflow.taint.SET_ORDER` because their results
do not depend on iteration order (``sum`` deliberately does **not** —
float summation order is exactly R1002's concern), and seeded RNG
construction is simply never a source.

Known false negatives, by design (documented in
``docs/static_analysis.md``): control-flow ("implicit") taint — a
branch condition on ``time.time()`` selecting between clean constants —
and taint smuggled through object attributes across call boundaries.
Both directions of imprecision are chosen so every *report* traces to a
real data-flow chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.callgraph import (
    CallSiteResolver,
    ProjectCallGraph,
    cached_callgraph,
    module_name,
)
from repro.analysis.dataflow.taint import (
    CLEAN,
    SET_ORDER,
    Taint,
    param_label,
    split_params,
)
from repro.analysis.effects import (
    NondetSources,
    TaintSource,
    _callee_key,
    iter_defined_functions,
)
from repro.analysis.guards import walk_within_scope
from repro.analysis.source import SourceModule

__all__ = ["FunctionTaint", "ProjectTaint", "project_taint"]

#: Builtins whose result's element order does not depend on the input's
#: iteration order — the sanctioned SET_ORDER sanitizers.
_ORDER_SANITIZERS = frozenset({"sorted", "len", "min", "max", "any", "all"})

#: Constructors whose result *introduces* arbitrary iteration order.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Inner-pass cap for the per-body env fixpoint (joins are monotone and
#: the lattice is tiny, so 2-3 passes suffice in practice).
_ENV_PASSES = 10


@dataclass(frozen=True)
class FunctionTaint:
    """Taint summary of one project function."""

    #: Graph key, ``repro.sketches.hashing.hash64``.
    key: str
    qualname: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Concrete labels that may reach the return value.
    return_taint: Taint = CLEAN
    #: Parameter names whose taint may flow into the return value.
    param_flow: frozenset[str] = frozenset()


class ProjectTaint:
    """Whole-tree taint summaries with expression-level queries."""

    def __init__(
        self, modules: Sequence[SourceModule], context: object | None = None
    ) -> None:
        self.graph: ProjectCallGraph = cached_callgraph(modules, context)
        self._sources: dict[str, NondetSources] = {}
        self._resolvers: dict[str, CallSiteResolver] = {}
        self._module_envs: dict[str, dict[str, Taint]] = {}
        self._functions: dict[str, tuple[SourceModule, str, ast.FunctionDef | ast.AsyncFunctionDef]] = {}
        self.summaries: dict[str, FunctionTaint] = {}
        self._envs: dict[str, dict[str, Taint]] = {}

        for module in modules:
            modname = module_name(module.path)
            self._sources[module.path] = NondetSources(module.tree)
            self._resolvers[module.path] = CallSiteResolver(self.graph, module)
            for qualname, func in iter_defined_functions(module.tree):
                key = f"{modname}.{qualname}"
                self._functions[key] = (module, qualname, func)
                self.summaries[key] = FunctionTaint(
                    key=key, qualname=qualname, module=module, node=func
                )
        # Module envs after sources/resolvers exist (top-level code can
        # call project functions, resolved against empty summaries —
        # harmlessly imprecise for import-time constants).
        for module in modules:
            self._module_envs[module.path] = self._module_env(module)
        self._fixpoint()

    # -- public queries ----------------------------------------------
    def taint_of(self, key: str) -> Taint:
        """Return-value taint of a function (CLEAN when unknown)."""
        summary = self.summaries.get(key)
        return summary.return_taint if summary is not None else CLEAN

    def eval_argument(self, key: str, expr: ast.expr) -> Taint:
        """Taint of an expression at its use inside function ``key``.

        Parameter flow is stripped: from inside the function the
        caller's arguments are unknown, so parameter-derived taint is
        reported at the call sites instead (under-report, never
        hallucinate).
        """
        info = self._functions.get(key)
        if info is None:
            return CLEAN
        module, qualname, _func = info
        env = self._envs.get(key, {})
        taint = self._analyzer(module, qualname, env).eval(expr)
        real, _params = split_params(taint)
        return real

    def evidence(
        self, key: str, labels: frozenset[str], limit: int = 3
    ) -> list[str]:
        """Human-readable source sites behind a function's taint.

        Lists direct sources inside the body whose label intersects
        ``labels``, then tainted project callees — enough to make every
        finding a readable chain without storing per-label provenance
        in the lattice.
        """
        info = self._functions.get(key)
        if info is None:
            return []
        module, qualname, func = info
        sources = self._sources[module.path]
        resolver = self._resolvers[module.path]
        found: list[str] = []
        seen: set[str] = set()

        def add(entry: str) -> None:
            if entry not in seen and len(found) < limit:
                seen.add(entry)
                found.append(entry)

        for node in walk_within_scope(func):
            if isinstance(node, ast.Call):
                site = sources.classify_call(node)
                if site is not None and site.label in labels:
                    add(f"{site.reason} (line {site.line})")
                    continue
                dotted = _callee_key(node.func)
                if dotted is not None:
                    target = resolver.resolve(dotted, qualname)
                    if target is not None:
                        callee = self.summaries.get(target)
                        if callee is not None and (
                            callee.return_taint.labels & labels
                        ):
                            add(
                                f"calls {target} which returns "
                                f"{callee.return_taint.restricted(labels).describe()}"
                                f"-tainted data (line {node.lineno})"
                            )
            elif isinstance(node, ast.expr):
                site = sources.classify_expr(node)
                if site is not None and site.label in labels:
                    add(f"{site.reason} (line {site.line})")
        return found

    # -- construction internals --------------------------------------
    def _module_env(self, module: SourceModule) -> dict[str, Taint]:
        """Taint of module-level names, from top-level assignments."""
        env: dict[str, Taint] = {}
        analyzer = self._analyzer(module, "", env)
        for statement in module.tree.body:
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign):
                targets, value = [statement.target], statement.value
            if value is None:
                continue
            taint = analyzer.eval(value)
            if taint.is_clean:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    env[target.id] = env.get(target.id, CLEAN).join(taint)
        return env

    def _analyzer(
        self, module: SourceModule, qualname: str, env: dict[str, Taint]
    ) -> "_BodyAnalyzer":
        return _BodyAnalyzer(
            env=env,
            module_env=self._module_envs.get(module.path, {}),
            sources=self._sources[module.path],
            resolver=self._resolvers[module.path],
            summaries=self.summaries,
            caller_qualname=qualname,
        )

    def _fixpoint(self) -> None:
        """Worklist iteration of summaries over resolved call edges."""
        dependents: dict[str, set[str]] = {}
        for caller, callees in self.graph.edges.items():
            for callee in callees:
                dependents.setdefault(callee, set()).add(caller)
        worklist = sorted(self._functions)
        queued = set(worklist)
        while worklist:
            key = worklist.pop()
            queued.discard(key)
            previous = self.summaries[key]
            updated = self._summarize(key)
            if (
                updated.return_taint == previous.return_taint
                and updated.param_flow == previous.param_flow
            ):
                continue
            self.summaries[key] = updated
            for caller in sorted(dependents.get(key, ())):
                if caller not in queued:
                    queued.add(caller)
                    worklist.append(caller)

    def _summarize(self, key: str) -> FunctionTaint:
        module, qualname, func = self._functions[key]
        env: dict[str, Taint] = {}
        for arg in _all_params(func):
            env[arg] = Taint.of(param_label(arg))
        analyzer = self._analyzer(module, qualname, env)
        for _ in range(_ENV_PASSES):
            if not analyzer.bind_pass(func):
                break
        returned = CLEAN
        for node in walk_within_scope(func):
            if isinstance(node, ast.Return) and node.value is not None:
                returned = returned.join(analyzer.eval(node.value))
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    returned = returned.join(analyzer.eval(node.value))
        real, params = split_params(returned)
        self._envs[key] = env
        return FunctionTaint(
            key=key,
            qualname=qualname,
            module=module,
            node=func,
            return_taint=real,
            param_flow=params,
        )


def _all_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    names = [
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _positional_params(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    args = func.args
    return [arg.arg for arg in (*args.posonlyargs, *args.args)]


@dataclass
class _BodyAnalyzer:
    """Flow-insensitive taint evaluation over one body's environment."""

    env: dict[str, Taint]
    module_env: dict[str, Taint]
    sources: NondetSources
    resolver: CallSiteResolver
    summaries: dict[str, FunctionTaint]
    caller_qualname: str
    _changed: bool = field(default=False, repr=False)

    # -- environment construction ------------------------------------
    def bind_pass(self, func: ast.AST) -> bool:
        """One monotone pass binding targets; True if the env changed."""
        self._changed = False
        for node in walk_within_scope(func):
            if isinstance(node, ast.Assign):
                taint = self.eval(node.value)
                for target in node.targets:
                    self._bind_target(target, taint)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(node.target, self.eval(node.value))
            elif isinstance(node, ast.AugAssign):
                self._bind_target(node.target, self.eval(node.value))
            elif isinstance(node, ast.For):
                self._bind_target(node.target, self._element(node.iter))
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    self._bind_target(
                        node.optional_vars, self.eval(node.context_expr)
                    )
            elif isinstance(node, ast.NamedExpr):
                self._bind_target(node.target, self.eval(node.value))
            elif isinstance(node, ast.comprehension):
                self._bind_target(node.target, self._element(node.iter))
        return self._changed

    def _bind_target(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self._join_name(target.id, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, taint)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taint)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Writing a tainted element taints the whole container.
            root: ast.expr = target
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name):
                self._join_name(root.id, taint)

    def _join_name(self, name: str, taint: Taint) -> None:
        if taint.is_clean:
            self.env.setdefault(name, CLEAN)
            return
        current = self.env.get(name, CLEAN)
        joined = current.join(taint)
        if joined != current:
            self.env[name] = joined
            self._changed = True

    def _element(self, iterable: ast.expr) -> Taint:
        """Taint of one element drawn from iterating ``iterable``."""
        return self.eval(iterable)

    # -- expression evaluation ---------------------------------------
    def eval(self, node: ast.expr | None) -> Taint:  # noqa: C901 - dispatch
        if node is None or isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            local = self.env.get(node.id)
            if local is not None:
                return local
            return self.module_env.get(node.id, CLEAN)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            site = self.sources.classify_expr(node)
            if site is not None:
                return Taint.of(site.label)
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value).join(self.eval(node.slice))
        if isinstance(node, ast.Slice):
            taint = CLEAN
            for part in (node.lower, node.upper, node.step):
                taint = taint.join(self.eval(part))
            return taint
        if isinstance(node, ast.BinOp):
            return self.eval(node.left).join(self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            return self._join_all(node.values)
        if isinstance(node, ast.Compare):
            # Comparison/membership results do not depend on iteration
            # order (the *contents* are deterministic), so order labels
            # drop here; value labels flow through.
            taint = self.eval(node.left).join(self._join_all(node.comparators))
            return taint.without(SET_ORDER)
        if isinstance(node, ast.IfExp):
            # Data flow only: the test is control dependence (documented
            # false negative), the branches are the value.
            return self.eval(node.body).join(self.eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple)):
            return self._join_all(node.elts)
        if isinstance(node, ast.Set):
            return self._join_all(node.elts).join(Taint.of(SET_ORDER))
        if isinstance(node, ast.Dict):
            keys = [key for key in node.keys if key is not None]
            return self._join_all(keys).join(self._join_all(node.values))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self.eval(node.elt).join(self._comp_iters(node))
        if isinstance(node, ast.SetComp):
            return (
                self.eval(node.elt)
                .join(self._comp_iters(node))
                .join(Taint.of(SET_ORDER))
            )
        if isinstance(node, ast.DictComp):
            return (
                self.eval(node.key)
                .join(self.eval(node.value))
                .join(self._comp_iters(node))
            )
        if isinstance(node, ast.JoinedStr):
            return self._join_all(node.values)
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            # A lambda argument carries its body's taint to the callee
            # (``memoized(key, lambda: build(...))`` sees the build).
            return self.eval(node.body)
        if isinstance(node, (ast.Await, ast.YieldFrom, ast.Yield)):
            return self.eval(node.value) if node.value is not None else CLEAN
        if isinstance(node, ast.NamedExpr):
            return self.eval(node.value)
        return CLEAN

    def _join_all(self, nodes: Sequence[ast.expr]) -> Taint:
        taint = CLEAN
        for node in nodes:
            taint = taint.join(self.eval(node))
        return taint

    def _comp_iters(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> Taint:
        taint = CLEAN
        for generator in node.generators:
            taint = taint.join(self.eval(generator.iter))
        return taint

    # -- calls --------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Taint:
        args_taint = self._join_all(node.args).join(
            self._join_all([keyword.value for keyword in node.keywords])
        )
        source = self.sources.classify_call(node)
        if source is not None:
            return Taint.of(source.label).join(args_taint)

        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in _ORDER_SANITIZERS:
            return args_taint.without(SET_ORDER)
        if name in _SET_CONSTRUCTORS:
            return args_taint.join(Taint.of(SET_ORDER))

        dotted = _callee_key(func)
        if dotted is not None:
            target = self.resolver.resolve(dotted, self.caller_qualname)
            if target is not None:
                summary = self.summaries.get(target)
                if summary is not None:
                    return self._apply_summary(node, summary)

        # Unresolved call: conservatively propagate the data that went
        # in (receiver and arguments).  External pure functions cannot
        # *remove* dependence on a nondeterministic input; results that
        # are discarded taint nothing.
        receiver = (
            self.eval(func.value) if isinstance(func, ast.Attribute) else CLEAN
        )
        if name is not None:
            receiver = receiver.join(self.env.get(name, CLEAN))
        return args_taint.join(receiver)

    def _apply_summary(self, node: ast.Call, summary: FunctionTaint) -> Taint:
        """Callee summary + caller argument taint mapped through params."""
        taint = summary.return_taint
        if not summary.param_flow:
            return taint
        params = _positional_params(summary.node)
        offset = 0
        receiver: ast.expr | None = None
        if (
            isinstance(node.func, ast.Attribute)
            and params
            and params[0] in ("self", "cls")
        ):
            offset = 1
            receiver = node.func.value
        if receiver is not None and params[0] in summary.param_flow:
            taint = taint.join(self.eval(receiver))
        star_args = any(isinstance(arg, ast.Starred) for arg in node.args)
        kw_splat = any(keyword.arg is None for keyword in node.keywords)
        if star_args or kw_splat:
            # Can't line up arguments; join everything that flows in.
            return taint.join(self._join_all(node.args)).join(
                self._join_all([keyword.value for keyword in node.keywords])
            )
        for position, arg in enumerate(node.args):
            index = offset + position
            if index < len(params) and params[index] in summary.param_flow:
                taint = taint.join(self.eval(arg))
            elif index >= len(params) and summary.param_flow:
                # Landed in *args; be conservative about the overflow.
                taint = taint.join(self.eval(arg))
        for keyword in node.keywords:
            if keyword.arg in summary.param_flow:
                taint = taint.join(self.eval(keyword.value))
        return taint


def project_taint(
    modules: Sequence[SourceModule], context: object | None = None
) -> ProjectTaint:
    """Build (or fetch the cached) :class:`ProjectTaint` for a scan.

    R1001 and R1002 both consume the same summaries within one lint
    run; like :func:`~repro.analysis.callgraph.cached_callgraph`, the
    shared project context carries the cache.
    """
    if context is None:
        return ProjectTaint(modules)
    token = tuple(id(module) for module in modules)
    cached = getattr(context, "_taint_cache", None)
    if cached is not None and cached[0] == token:
        engine: ProjectTaint = cached[1]
        return engine
    engine = ProjectTaint(modules, context)
    setattr(context, "_taint_cache", (token, engine))
    return engine
