"""Parsed source modules and ``# reprolint: disable=...`` suppressions.

Suppressions are the *explicit baseline* mechanism the rules rely on:
every accepted violation must carry a visible marker at the offending
line (or a file-level marker near the top of the module), so the debt is
auditable in the diff rather than hidden in analyzer state.

Two forms are recognized::

    risky = a / b  # reprolint: disable=R101
    # reprolint: disable-file=R601

The line form silences the listed codes on its own line only; the file
form silences them for the whole module.  ``disable=all`` silences every
rule (use sparingly — generated files, vendored code).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SUPPRESS_ALL", "SourceModule", "SuppressionTable"]

_LINE_PRAGMA = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_PRAGMA = re.compile(r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s]+)")

#: Sentinel meaning "every code is suppressed".
SUPPRESS_ALL = "all"
_ALL = SUPPRESS_ALL


def _parse_codes(raw: str) -> set[str]:
    return {code.strip() for code in raw.split(",") if code.strip()}


@dataclass
class SuppressionTable:
    """Per-line and per-file suppression state for one module."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    #: Line each file-wide code was first declared on (for stale reports).
    file_wide_lines: dict[str, int] = field(default_factory=dict)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is silenced at ``line``."""
        if code in self.file_wide or _ALL in self.file_wide:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return code in codes or _ALL in codes

    def matching_entries(self, line: int, code: str) -> list[tuple[int, str, bool]]:
        """Every pragma entry that silences ``code`` at ``line``.

        Entries are ``(pragma_line, pragma_code, file_wide)`` triples in
        the same shape :meth:`pragma_entries` yields, so the runner can
        mark exactly which declared pragmas did real work — the residue
        is what the stale-suppression rule (R701) reports.  An empty list
        means the finding is *not* suppressed.
        """
        matches: list[tuple[int, str, bool]] = []
        at_line = self.by_line.get(line, set())
        for pragma_code in (code, _ALL):
            if pragma_code in self.file_wide:
                matches.append(
                    (self.file_wide_lines.get(pragma_code, 1), pragma_code, True)
                )
            if pragma_code in at_line:
                matches.append((line, pragma_code, False))
        return matches

    def pragma_entries(self) -> list[tuple[int, str, bool]]:
        """Every declared pragma entry as ``(line, code, file_wide)``."""
        entries = [
            (line, code, False)
            for line, codes in sorted(self.by_line.items())
            for code in sorted(codes)
        ]
        entries.extend(
            (self.file_wide_lines.get(code, 1), code, True)
            for code in sorted(self.file_wide)
        )
        return entries

    @classmethod
    def from_source(cls, text: str) -> "SuppressionTable":
        """Extract suppression pragmas from real comments only.

        Tokenizing (rather than regex over raw lines) keeps pragma-like
        text inside string literals from being treated as a suppression.
        """
        table = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                file_match = _FILE_PRAGMA.search(token.string)
                if file_match:
                    for code in _parse_codes(file_match.group(1)):
                        table.file_wide.add(code)
                        table.file_wide_lines.setdefault(code, token.start[0])
                    continue
                line_match = _LINE_PRAGMA.search(token.string)
                if line_match:
                    line = token.start[0]
                    table.by_line.setdefault(line, set()).update(
                        _parse_codes(line_match.group(1))
                    )
        except tokenize.TokenError:
            # Unterminated constructs: the AST parse will report the
            # real syntax error; suppressions just stay empty.
            pass
        return table


@dataclass
class SourceModule:
    """One parsed Python file, ready for rules to visit.

    ``path`` is kept exactly as supplied (relative paths stay relative)
    so findings render the way the user referenced the tree.
    """

    path: str
    text: str
    tree: ast.Module
    suppressions: SuppressionTable

    @classmethod
    def from_source(cls, text: str, path: str = "<memory>") -> "SourceModule":
        """Build a module from in-memory source (fixture tests use this)."""
        return cls(
            path=path,
            text=text,
            tree=ast.parse(text, filename=path),
            suppressions=SuppressionTable.from_source(text),
        )

    @classmethod
    def from_file(cls, path: Path | str) -> "SourceModule":
        """Parse a file from disk; raises ``SyntaxError`` on bad source."""
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_source(text, path=str(path))

    def in_package(self, *parts: str) -> bool:
        """True when this module lives under the given package path.

        ``module.in_package("repro", "data")`` matches any path containing
        the directory run ``repro/data`` — used by rules whose scope is a
        subtree (e.g. the RNG exemption for the data generators).
        """
        pieces = Path(self.path).parts
        span = len(parts)
        return any(
            pieces[i : i + span] == parts for i in range(len(pieces) - span + 1)
        )
