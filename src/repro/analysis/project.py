"""Whole-project facts shared by the cross-module rules.

The purity rule (R401) and the registry-completeness rule (R501) need to
know *which classes are estimators* and *which are registered* — facts
that live in different files than the violations they gate.  This module
derives both purely from the ASTs of the scanned files, so the analyzer
never imports the code under analysis (no side effects, works on broken
trees, and fixture tests can fake the whole world with a few classes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.source import SourceModule

__all__ = ["ClassFacts", "ProjectContext", "build_context"]

#: Root of the estimator hierarchy (``repro.core.base``).
ESTIMATOR_BASE = "DistinctValueEstimator"

#: Name of the registry mapping in ``repro.core.registry``.
REGISTRY_NAME = "ESTIMATOR_FACTORIES"


@dataclass
class ClassFacts:
    """What the ASTs tell us about one class definition."""

    name: str
    module_path: str
    lineno: int
    col: int
    bases: tuple[str, ...]
    is_abstract: bool
    node: ast.ClassDef


def _base_name(base: ast.expr) -> str | None:
    """The rightmost identifier of a base-class expression, if any."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_abstract(node: ast.ClassDef) -> bool:
    """Heuristic abstractness: ABC/ABCMeta bases or abstractmethod members."""
    for base in node.bases:
        if _base_name(base) in ("ABC", "ABCMeta"):
            return True
    for keyword in node.keywords:
        if keyword.arg == "metaclass" and _base_name(keyword.value) == "ABCMeta":
            return True
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in statement.decorator_list:
                if _base_name(decorator) in ("abstractmethod", "abstractproperty"):
                    return True
    return False


def _factory_class_name(value: ast.expr) -> str | None:
    """Class name a registry value refers to (``GEE``, ``lambda: GEE()`` …)."""
    if isinstance(value, (ast.Name, ast.Attribute)):
        return _base_name(value)
    if isinstance(value, ast.Lambda):
        body = value.body
        if isinstance(body, ast.Call):
            return _base_name(body.func)
    if isinstance(value, ast.Call):  # functools.partial(GEE, ...)
        if value.args:
            return _base_name(value.args[0])
    return None


@dataclass
class ProjectContext:
    """Estimator hierarchy and registry membership, derived statically."""

    classes: dict[str, ClassFacts] = field(default_factory=dict)
    estimator_classes: set[str] = field(default_factory=set)
    registered_classes: set[str] = field(default_factory=set)
    registry_module: str | None = None
    registry_lineno: int = 0

    def is_estimator_class(self, name: str) -> bool:
        """True for the estimator base class and every known subclass."""
        return name in self.estimator_classes or name == ESTIMATOR_BASE


def build_context(modules: list[SourceModule]) -> ProjectContext:
    """Scan every module once and derive the shared project facts."""
    context = ProjectContext()
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    name
                    for name in (_base_name(base) for base in node.bases)
                    if name is not None
                )
                facts = ClassFacts(
                    name=node.name,
                    module_path=module.path,
                    lineno=node.lineno,
                    col=node.col_offset,
                    bases=bases,
                    is_abstract=_is_abstract(node),
                    node=node,
                )
                # Same-named classes in different scanned files (fixtures)
                # keep the first definition; the hierarchy walk below only
                # needs names, so collisions are harmless.
                context.classes.setdefault(node.name, facts)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == REGISTRY_NAME
                        and node.value is not None
                        and isinstance(node.value, ast.Dict)
                    ):
                        context.registry_module = module.path
                        context.registry_lineno = node.lineno
                        for value in node.value.values:
                            name = _factory_class_name(value)
                            if name is not None:
                                context.registered_classes.add(name)

    # Transitive closure of subclasses of the estimator base, by name.
    frontier = {ESTIMATOR_BASE}
    while frontier:
        next_frontier: set[str] = set()
        for facts in context.classes.values():
            if facts.name in context.estimator_classes:
                continue
            if any(base in frontier for base in facts.bases):
                context.estimator_classes.add(facts.name)
                next_frontier.add(facts.name)
        frontier = next_frontier
    return context
