"""The finding record shared by every reprolint rule and reporter."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "PARSE_ERROR_CODE"]

#: Pseudo-code attached to files the analyzer could not parse.
PARSE_ERROR_CODE = "P001"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Findings sort by location so reports are stable across runs, which
    keeps baselines and test expectations deterministic.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    rule: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line textual form of this finding."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def baseline_key(self) -> str:
        """Line-insensitive identity used by baseline files.

        Line numbers drift with unrelated edits, so baselines key on
        ``path::code`` and store a count instead of exact positions.
        """
        return f"{self.path}::{self.code}"
