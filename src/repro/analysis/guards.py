"""Heuristic guardedness/positivity facts for one lexical scope.

The numeric rules (R101, R102) must decide whether a divisor or a
``log``/``sqrt`` argument can be nonpositive.  Full value analysis is
undecidable, so reprolint uses an intentionally simple, *auditable*
approximation computed per scope (module body, class body, or function
body — nested scopes never leak facts into each other):

* an expression is **guarded** when its exact source text — or every
  variable atom inside it — appears somewhere in a comparison or branch
  test of the same scope.  ``if r < 2: return 0.0`` therefore guards
  every later use of ``r``, including compounds like ``r * (r - 1)``;
* an expression is **provably positive** when it is built from positive
  literals, contract-positive names (quantities the estimator contract
  in :mod:`repro.core.base` validates before any estimator code runs),
  ``math.exp``/``math.sqrt``/``max``/``min`` combinations that preserve
  positivity, or local names whose every assignment is provably
  positive.

False positives are expected occasionally; that is what the
``# reprolint: disable=CODE`` pragma (with a justification comment) is
for.  False negatives are tolerated: the rule is a tripwire for the
common slip, not a verifier.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "ScopeFacts",
    "CONTRACT_POSITIVE",
    "iter_scopes",
    "module_positive_constants",
    "walk_within_scope",
]

#: Expression texts the estimator contract guarantees to be positive:
#: ``DistinctValueEstimator.estimate`` rejects empty samples and
#: non-positive populations before any ``_estimate_raw`` runs, and the
#: module-level helpers validate the same quantities at entry.
CONTRACT_POSITIVE = frozenset(
    {
        "population_size",
        "sample_size",
        "profile.sample_size",
        "profile.distinct",
        "self.population_size",
        "self.sample_size",
    }
)

#: Attribute expressions that are positive mathematical constants.
_POSITIVE_CONSTANT_ATTRS = frozenset(
    {"math.e", "math.pi", "math.tau", "math.inf", "np.e", "np.pi", "numpy.e", "numpy.pi"}
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _iter_scope_statements(node: ast.AST) -> list[ast.stmt]:
    if isinstance(node, ast.Lambda):
        return []
    body = getattr(node, "body", [])
    return list(body) if isinstance(body, list) else []


def walk_within_scope(node: ast.AST):
    """Yield descendants of ``node`` without entering nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


@dataclass
class ScopeFacts:
    """Comparison and assignment facts for one scope."""

    node: ast.AST
    contract_positive: frozenset[str] = CONTRACT_POSITIVE
    compared: set[str] = field(default_factory=set)
    assignments: dict[str, list[ast.expr | None]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for child in walk_within_scope(self.node):
            if isinstance(child, ast.Compare):
                self._note_compared(child.left)
                for comparator in child.comparators:
                    self._note_compared(comparator)
            elif isinstance(child, (ast.If, ast.While, ast.IfExp)):
                self._note_test(child.test)
            elif isinstance(child, ast.Assert):
                self._note_test(child.test)
            elif isinstance(child, ast.comprehension):
                for condition in child.ifs:
                    self._note_test(condition)
            elif isinstance(child, ast.Assign):
                self._note_assignment(child.targets, child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._note_assignment([child.target], child.value)
            elif isinstance(child, (ast.AugAssign, ast.For, ast.withitem)):
                target = getattr(child, "target", None) or getattr(
                    child, "optional_vars", None
                )
                if isinstance(target, ast.Name):
                    # Reassigned in a way we do not model: distrust it.
                    self.assignments.setdefault(target.id, []).append(None)

    # ------------------------------------------------------------------
    # Fact collection
    # ------------------------------------------------------------------
    def _note_compared(self, expr: ast.expr) -> None:
        self.compared.add(ast.unparse(expr))

    def _note_test(self, test: ast.expr) -> None:
        self._note_compared(test)
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._note_compared(test.operand)
        if isinstance(test, ast.BoolOp):
            for value in test.values:
                self._note_compared(value)
                if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.Not):
                    self._note_compared(value.operand)

    def _note_assignment(self, targets: list[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self.assignments.setdefault(target.id, []).append(value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                paired: list[tuple[ast.expr, ast.expr | None]]
                if isinstance(value, (ast.Tuple, ast.List)) and len(
                    target.elts
                ) == len(value.elts):
                    paired = list(zip(target.elts, value.elts))
                else:
                    paired = [(element, None) for element in target.elts]
                for sub_target, sub_value in paired:
                    if isinstance(sub_target, ast.Name):
                        self.assignments.setdefault(sub_target.id, []).append(
                            sub_value
                        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_guarded(self, expr: ast.expr) -> bool:
        """Text of ``expr`` (or all its variable atoms) appears in a test.

        A variable atom also passes when it is provably positive: a
        positive factor inside a compound divisor needs no guard of its
        own.
        """
        if ast.unparse(expr) in self.compared:
            return True
        atoms = self._outermost_atoms(expr)
        return bool(atoms) and all(
            ast.unparse(atom) in self.compared or self.is_positive(atom)
            for atom in atoms
        )

    def _outermost_atoms(self, expr: ast.expr) -> list[ast.expr]:
        """Variable atoms of ``expr``, not descending into Attribute values."""
        atoms: list[ast.expr] = []
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Attribute, ast.Name)):
                atoms.append(node)
            elif isinstance(node, ast.Call):
                # A call result is not a variable: its value is fresh each
                # time, so comparisons of the arguments say nothing.
                atoms.append(node)
            else:
                stack.extend(ast.iter_child_nodes(node))
        return atoms

    def is_positive(self, expr: ast.expr, _seen: frozenset[str] = frozenset()) -> bool:
        """Conservative proof that ``expr`` evaluates strictly positive."""
        if isinstance(expr, ast.Constant):
            return (
                isinstance(expr.value, (int, float))
                and not isinstance(expr.value, bool)
                and expr.value > 0
            )
        text = ast.unparse(expr)
        if text in self.contract_positive or text in _POSITIVE_CONSTANT_ATTRS:
            return True
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.UAdd):
            return self.is_positive(expr.operand, _seen)
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, (ast.Add, ast.Mult, ast.Div)):
                return self.is_positive(expr.left, _seen) and self.is_positive(
                    expr.right, _seen
                )
            if isinstance(expr.op, ast.Pow):
                return self.is_positive(expr.left, _seen)
        if isinstance(expr, ast.IfExp):
            return self.is_positive(expr.body, _seen) and self.is_positive(
                expr.orelse, _seen
            )
        if isinstance(expr, ast.Call):
            name = _call_name(expr.func)
            if name == "exp":
                return True
            if name in ("float", "sqrt") and expr.args:
                return self.is_positive(expr.args[0], _seen)
            if name == "max" and expr.args:
                return any(self.is_positive(arg, _seen) for arg in expr.args)
            if name == "min" and expr.args:
                return all(self.is_positive(arg, _seen) for arg in expr.args)
            return False
        if isinstance(expr, ast.Name):
            if expr.id in _seen:
                return False
            sources = self.assignments.get(expr.id)
            if not sources or any(source is None for source in sources):
                return False
            seen = _seen | {expr.id}
            return all(
                self.is_positive(source, seen)
                for source in sources
                if source is not None
            )
        return False

    def is_nonnegative(self, expr: ast.expr) -> bool:
        """Conservative proof that ``expr`` evaluates to a value >= 0."""
        if self.is_positive(expr):
            return True
        if isinstance(expr, ast.Constant):
            return (
                isinstance(expr.value, (int, float))
                and not isinstance(expr.value, bool)
                and expr.value >= 0
            )
        if isinstance(expr, ast.Call):
            name = _call_name(expr.func)
            if name == "abs":
                return True
            if name == "max" and expr.args:
                return any(self.is_nonnegative(arg) for arg in expr.args)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Pow):
            exponent = expr.right
            return (
                isinstance(exponent, ast.Constant)
                and isinstance(exponent.value, int)
                and exponent.value % 2 == 0
            )
        return False

    def is_safe_divisor(self, expr: ast.expr) -> bool:
        """Positive, a nonzero literal/negation, or guarded by a test."""
        if self.is_positive(expr):
            return True
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
            if self.is_positive(expr.operand):
                return True
        return self.is_guarded(expr)

    def is_safe_log_argument(self, expr: ast.expr, allow_zero: bool = False) -> bool:
        """Positive (or, for ``sqrt``, nonnegative) or guarded in scope."""
        if allow_zero and self.is_nonnegative(expr):
            return True
        return self.is_positive(expr) or self.is_guarded(expr)


def module_positive_constants(module_facts: ScopeFacts) -> frozenset[str]:
    """Module-level names whose every assignment is provably positive.

    Function scopes cannot see module assignments (facts are per scope),
    but a constant like ``_PHI = 0.77351`` is safe everywhere in the
    file; the numeric rules fold these names into ``contract_positive``
    for nested scopes.
    """
    positive: set[str] = set()
    for name in module_facts.assignments:
        reference = ast.Name(id=name, ctx=ast.Load())
        if module_facts.is_positive(reference):
            positive.add(name)
    return frozenset(positive)


def iter_scopes(tree: ast.Module):
    """Yield ``(scope_node, statements)`` for the module and every nested scope."""
    pending: list[ast.AST] = [tree]
    while pending:
        scope = pending.pop()
        yield scope, _iter_scope_statements(scope)
        for child in walk_within_scope(scope):
            if isinstance(child, _SCOPE_NODES):
                pending.append(child)
