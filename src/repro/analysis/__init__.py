"""reprolint — project-specific static analysis for the estimator stack.

The paper's contribution is a *guarantee*: GEE's Theorem 2 bound holds on
every input only when the implementation honors the estimator contract of
:mod:`repro.core.base` — purity, sanity-bound clamping, no hidden
randomness.  Silent numerical slips (unguarded ``log``/``sqrt``/division,
float equality, global RNG state) are exactly what corrupts error
measurements at scale, so this package machine-checks those invariants on
every commit instead of trusting review to catch them.

The subsystem is a small AST-based rule framework with an
intraprocedural dataflow engine behind the numeric rules:

* :mod:`repro.analysis.rules` — the rule base classes, registry, and the
  project rules (codes ``R101`` … ``R1201``);
* :mod:`repro.analysis.dataflow` — CFG construction and sign/interval
  abstract interpretation (lets ``R101``/``R102`` *prove* denominators
  nonzero and ``log``/``sqrt`` arguments in-domain, and discharges
  ``repro.contracts`` clauses), plus the nondeterminism-taint lattice
  and its interprocedural fixpoint behind ``R1001``/``R1002``;
* :mod:`repro.analysis.effects` / :mod:`repro.analysis.callgraph` — RNG
  and purity effect summaries, nondeterminism-source classification,
  artifact-write and global-mutation evidence, plus a project-wide call
  graph, powering the transitive rules ``R302``/``R402`` and the
  determinism/process-safety family ``R1001``–``R1201``;
* :mod:`repro.analysis.source` — parsed source modules and
  ``# reprolint: disable=CODE`` suppression handling;
* :mod:`repro.analysis.runner` — file collection and rule execution;
* :mod:`repro.analysis.reporters` — text, JSON, and SARIF output plus
  the ``--prove`` contract-verdict table;
* :mod:`repro.analysis.baseline` — explicit baselines for accepted debt;
* :mod:`repro.analysis.explain` — per-rule rationale/example/remediation
  rendering (``repro lint --explain``) and the ``docs/rules.md``
  compiler.

Run it as ``repro lint [paths]`` (alias: ``python -m repro lint``); the
exit status is nonzero whenever unsuppressed, unbaselined findings
remain, so the command gates CI and the tier-1 test suite.
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.explain import explain_all, explain_rule, rules_markdown
from repro.analysis.findings import Finding
from repro.analysis.reporters import (
    render_json,
    render_prove,
    render_sarif,
    render_text,
)
from repro.analysis.rules import all_rules, get_rule
from repro.analysis.runner import LintReport, lint_paths
from repro.analysis.source import SourceModule

__all__ = [
    "Finding",
    "LintReport",
    "SourceModule",
    "all_rules",
    "explain_all",
    "explain_rule",
    "get_rule",
    "lint_paths",
    "rules_markdown",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_prove",
    "render_sarif",
    "render_text",
]
