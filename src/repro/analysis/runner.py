"""File collection and the lint driver.

:func:`lint_paths` is the one entry point everything else (CLI, tests,
``make check``) goes through: collect ``.py`` files, parse each once into
a :class:`~repro.analysis.source.SourceModule`, build the shared
:class:`~repro.analysis.project.ProjectContext`, run every requested rule,
then apply suppression pragmas and the optional baseline.  Files that do
not parse become ``P001`` findings instead of crashing the run — a lint
tool that dies on the file it should be reporting is useless in CI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.project import ProjectContext, build_context
from repro.analysis.rules import ProjectRule, Rule, all_rules, resolve_rules
from repro.analysis.rules.contracts import module_has_contracts
from repro.analysis.rules.suppressions import (
    STALE_SUPPRESSION_CODE,
    StaleSuppression,
)
from repro.analysis.source import SUPPRESS_ALL, SourceModule
from repro.errors import InvalidParameterError

__all__ = ["LintReport", "collect_files", "lint_paths"]

#: Rules whose findings depend on the interval engine; a run selecting
#: any of them builds the whole-program bounds summaries first.
_INTERVAL_RULES = frozenset(
    {"R101", "R102", "R702", "R1301", "R1302", "R1303", "R1304"}
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".venv",
        "venv",
        "build",
        "dist",
    }
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: int = 0
    #: ``(path, ClauseVerdict)`` pairs, populated when ``prove=True``.
    contract_verdicts: list = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survives suppression/baseline."""
        return 1 if self.findings else 0

    def counts_by_code(self) -> dict[str, int]:
        """Surviving findings per rule code, in code order."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    collected: list[str] = []
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                collected.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in _SKIP_DIRS and not name.endswith(".egg-info")
                )
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    if full not in seen:
                        seen.add(full)
                        collected.append(full)
        else:
            raise InvalidParameterError(f"lint path does not exist: {path!r}")
    return sorted(collected)


def _parse_modules(
    files: Iterable[str],
) -> tuple[list[SourceModule], list[Finding]]:
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    for path in files:
        try:
            modules.append(SourceModule.from_file(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            col = getattr(exc, "offset", None) or 1
            errors.append(
                Finding(
                    path=path,
                    line=int(line),
                    col=max(int(col) - 1, 0),
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc}",
                    rule="parse-error",
                )
            )
    return modules, errors


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: dict[str, int] | None = None,
    prove: bool = False,
) -> LintReport:
    """Lint the given files/directories and return a :class:`LintReport`.

    ``baseline`` maps ``"path::code"`` keys to allowed counts (see
    :mod:`repro.analysis.baseline`); up to that many matching findings
    are absorbed per key, so pre-existing debt does not fail the run but
    *new* findings of the same kind still do.

    ``prove=True`` additionally collects the static verdict of every
    contract clause (:meth:`ModuleIntervals.contract_verdicts`) into
    ``report.contract_verdicts`` — the table ``repro lint --prove``
    prints.  The interval analyses are cached per module, so this reuses
    the work R101/R102/R702 already did.

    Suppression pragmas that silence nothing are themselves findings
    (R701) when that rule is active: the runner records which pragma
    entries absorbed a finding and reports the leftovers, scoped to the
    codes of rules that actually ran (``disable=all`` entries are judged
    only on a full-rule run).
    """
    files = collect_files(paths)
    modules, parse_findings = _parse_modules(files)
    context: ProjectContext = build_context(modules)
    rules: list[Rule] = resolve_rules(select, ignore)

    if modules and (
        prove or any(rule.code in _INTERVAL_RULES for rule in rules)
    ):
        # Converge the interprocedural bounds summaries *before* any rule
        # queries intervals: project_bounds installs its oracle-equipped
        # analyses into the per-module cache, so R101/R102/R13xx and
        # --prove all resolve cross-module calls.
        from repro.analysis.dataflow.boundsflow import project_bounds

        project_bounds(modules, context)

    raw: list[Finding] = list(parse_findings)
    for module in modules:
        for rule in rules:
            raw.extend(rule.check(module, context))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules, context))

    report = LintReport(files_scanned=len(files))
    by_path = {module.path: module for module in modules}
    remaining_baseline = dict(baseline or {})
    used_entries: dict[str, set[tuple[int, str, bool]]] = {}

    def admit(
        finding: Finding,
        judged_entry: tuple[int, str, bool] | None = None,
    ) -> None:
        module = by_path.get(finding.path)
        if module is not None:
            matches = module.suppressions.matching_entries(
                finding.line, finding.code
            )
            if judged_entry is not None:
                # A stale report must not be silenced by the very entry
                # it reports — otherwise a stale ``disable=all`` hides
                # itself forever.  A *different* entry (an explicit
                # ``disable=R701``) still counts.
                matches = [entry for entry in matches if entry != judged_entry]
            if matches:
                used_entries.setdefault(finding.path, set()).update(matches)
                report.suppressed += 1
                return
        key = finding.baseline_key
        if remaining_baseline.get(key, 0) > 0:
            remaining_baseline[key] -= 1
            report.baselined += 1
            return
        if finding.code == PARSE_ERROR_CODE:
            report.parse_errors += 1
        report.findings.append(finding)

    for finding in sorted(raw):
        admit(finding)

    stale_rule = next(
        (rule for rule in rules if rule.code == STALE_SUPPRESSION_CODE), None
    )
    if isinstance(stale_rule, StaleSuppression):
        for entry, finding in sorted(
            _stale_findings(modules, rules, stale_rule, used_entries),
            key=lambda pair: pair[1],
        ):
            # An entry that just absorbed an earlier stale report (e.g.
            # ``disable=R701``) did real work after all — recheck.
            if entry in used_entries.get(finding.path, set()):
                continue
            admit(finding, judged_entry=entry)
        report.findings.sort()

    if prove:
        from repro.analysis.dataflow import module_intervals

        for module in modules:
            if not module_has_contracts(module):
                continue
            for verdict in module_intervals(module).contract_verdicts():
                report.contract_verdicts.append((module.path, verdict))
    return report


def _stale_findings(
    modules: list[SourceModule],
    rules: list[Rule],
    stale_rule: StaleSuppression,
    used_entries: dict[str, set[tuple[int, str, bool]]],
) -> list[tuple[tuple[int, str, bool], Finding]]:
    """``(entry, finding)`` pairs for pragma entries that suppressed nothing.

    An entry for code ``C`` is only judged when the rule for ``C`` ran;
    ``disable=all`` entries only when every registered rule ran — a
    partial ``--select`` run must not declare other rules' pragmas stale.
    The judged entry rides along so the admitter can refuse to let it
    suppress its own stale report.
    """
    active = {rule.code for rule in rules}
    covers_all = set(all_rules()) <= active
    findings: list[tuple[tuple[int, str, bool], Finding]] = []
    for module in modules:
        used = used_entries.get(module.path, set())
        for entry in module.suppressions.pragma_entries():
            line, code, file_wide = entry
            if entry in used:
                continue
            if code == SUPPRESS_ALL:
                if not covers_all:
                    continue
            elif code not in active:
                continue
            findings.append(
                (entry, stale_rule.stale_finding(module, line, code, file_wide))
            )
    return findings
