"""File collection and the lint driver.

:func:`lint_paths` is the one entry point everything else (CLI, tests,
``make check``) goes through: collect ``.py`` files, parse each once into
a :class:`~repro.analysis.source.SourceModule`, build the shared
:class:`~repro.analysis.project.ProjectContext`, run every requested rule,
then apply suppression pragmas and the optional baseline.  Files that do
not parse become ``P001`` findings instead of crashing the run — a lint
tool that dies on the file it should be reporting is useless in CI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.findings import PARSE_ERROR_CODE, Finding
from repro.analysis.project import ProjectContext, build_context
from repro.analysis.rules import ProjectRule, Rule, resolve_rules
from repro.analysis.source import SourceModule
from repro.errors import InvalidParameterError

__all__ = ["LintReport", "collect_files", "lint_paths"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".venv",
        "venv",
        "build",
        "dist",
    }
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survives suppression/baseline."""
        return 1 if self.findings else 0

    def counts_by_code(self) -> dict[str, int]:
        """Surviving findings per rule code, in code order."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def collect_files(paths: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    collected: list[str] = []
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
                collected.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in _SKIP_DIRS and not name.endswith(".egg-info")
                )
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    if full not in seen:
                        seen.add(full)
                        collected.append(full)
        else:
            raise InvalidParameterError(f"lint path does not exist: {path!r}")
    return sorted(collected)


def _parse_modules(
    files: Iterable[str],
) -> tuple[list[SourceModule], list[Finding]]:
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    for path in files:
        try:
            modules.append(SourceModule.from_file(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            col = getattr(exc, "offset", None) or 1
            errors.append(
                Finding(
                    path=path,
                    line=int(line),
                    col=max(int(col) - 1, 0),
                    code=PARSE_ERROR_CODE,
                    message=f"could not parse file: {exc}",
                    rule="parse-error",
                )
            )
    return modules, errors


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: dict[str, int] | None = None,
) -> LintReport:
    """Lint the given files/directories and return a :class:`LintReport`.

    ``baseline`` maps ``"path::code"`` keys to allowed counts (see
    :mod:`repro.analysis.baseline`); up to that many matching findings
    are absorbed per key, so pre-existing debt does not fail the run but
    *new* findings of the same kind still do.
    """
    files = collect_files(paths)
    modules, parse_findings = _parse_modules(files)
    context: ProjectContext = build_context(modules)
    rules: list[Rule] = resolve_rules(select, ignore)

    raw: list[Finding] = list(parse_findings)
    for module in modules:
        for rule in rules:
            raw.extend(rule.check(module, context))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules, context))

    report = LintReport(files_scanned=len(files))
    by_path = {module.path: module for module in modules}
    remaining_baseline = dict(baseline or {})
    for finding in sorted(raw):
        module = by_path.get(finding.path)
        if module is not None and module.suppressions.is_suppressed(
            finding.line, finding.code
        ):
            report.suppressed += 1
            continue
        key = finding.baseline_key
        if remaining_baseline.get(key, 0) > 0:
            remaining_baseline[key] -= 1
            report.baselined += 1
            continue
        if finding.code == PARSE_ERROR_CODE:
            report.parse_errors += 1
        report.findings.append(finding)
    return report
