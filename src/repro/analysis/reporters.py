"""Text and JSON renderings of a :class:`~repro.analysis.runner.LintReport`.

The text form mirrors the ``path:line:col: CODE message`` convention of
every compiler-adjacent tool so editors can jump to findings.  The JSON
form is a stable, versioned schema for CI tooling::

    {
      "version": 1,
      "files_scanned": 42,
      "suppressed": 3,
      "baselined": 0,
      "counts": {"R101": 2},
      "findings": [
        {"path": "...", "line": 10, "col": 4,
         "code": "R101", "rule": "unguarded-division", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json

from repro.analysis.rules import all_rules
from repro.analysis.runner import LintReport

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "render_prove",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(report: LintReport) -> str:
    """Human/editor-oriented rendering, one finding per line."""
    lines = [finding.render() for finding in report.findings]
    counts = report.counts_by_code()
    if counts:
        summary = ", ".join(f"{code}: {count}" for code, count in counts.items())
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s) ({summary})"
        )
    else:
        lines.append(
            f"clean: {report.files_scanned} file(s), "
            f"{report.suppressed} suppressed, {report.baselined} baselined"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable rendering (schema version 1)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "counts": report.counts_by_code(),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 rendering for code-scanning services.

    Emits every registered rule in the tool metadata (so dashboards can
    show zero-finding rules) and one ``result`` per finding.  SARIF
    columns are 1-based while :class:`Finding` columns are 0-based, hence
    the ``+ 1``.
    """
    rules = [
        {
            "id": code,
            "name": rule_class.name,
            "shortDescription": {"text": rule_class.description},
        }
        for code, rule_class in all_rules().items()
    ]
    results = [
        {
            "ruleId": finding.code,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "https://example.invalid/reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_prove(report: LintReport) -> str:
    """Verdict table for ``repro lint --prove``.

    One line per contract clause, ``path:line: KIND VERDICT clause``,
    followed by a verdict tally.  ``requires`` clauses are *assumed*
    (they seed the analysis); ``ensures`` clauses are ``proved``,
    ``runtime`` (left to the optional runtime check), or ``violated``.
    Proofs that leaned on an inferred interprocedural summary (rather
    than explicit contracts alone) are marked ``[via inferred summary]``
    and tallied separately — they hold for the *current* bodies of the
    callees, not for everything their contracts admit.
    """
    lines = []
    tally: dict[str, int] = {}
    proved_via: dict[str, int] = {}
    for path, verdict in report.contract_verdicts:
        tally[verdict.verdict] = tally.get(verdict.verdict, 0) + 1
        suffix = ""
        if verdict.verdict == "proved":
            proved_via[verdict.via] = proved_via.get(verdict.via, 0) + 1
            if verdict.via == "summary":
                suffix = "  [via inferred summary]"
        lines.append(
            f"{path}:{verdict.lineno}: {verdict.kind:8s} "
            f"{verdict.verdict:8s} {verdict.qualname}: {verdict.clause}"
            f"{suffix}"
        )
    if not lines:
        return "no contract clauses found"

    def label(kind: str) -> str:
        if kind != "proved" or not proved_via:
            return f"{kind}: {tally[kind]}"
        detail = ", ".join(
            f"{via}: {proved_via[via]}" for via in sorted(proved_via)
        )
        return f"proved: {tally['proved']} [{detail}]"

    summary = ", ".join(label(k) for k in sorted(tally))
    lines.append("")
    lines.append(f"{len(report.contract_verdicts)} clause(s) ({summary})")
    return "\n".join(lines)
