"""Text and JSON renderings of a :class:`~repro.analysis.runner.LintReport`.

The text form mirrors the ``path:line:col: CODE message`` convention of
every compiler-adjacent tool so editors can jump to findings.  The JSON
form is a stable, versioned schema for CI tooling::

    {
      "version": 1,
      "files_scanned": 42,
      "suppressed": 3,
      "baselined": 0,
      "counts": {"R101": 2},
      "findings": [
        {"path": "...", "line": 10, "col": 4,
         "code": "R101", "rule": "unguarded-division", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json

from repro.analysis.runner import LintReport

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human/editor-oriented rendering, one finding per line."""
    lines = [finding.render() for finding in report.findings]
    counts = report.counts_by_code()
    if counts:
        summary = ", ".join(f"{code}: {count}" for code, count in counts.items())
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s) ({summary})"
        )
    else:
        lines.append(
            f"clean: {report.files_scanned} file(s), "
            f"{report.suppressed} suppressed, {report.baselined} baselined"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable machine-readable rendering (schema version 1)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "counts": report.counts_by_code(),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
