"""Lightweight cross-module call graph for the flow rules.

R301/R401 are local: they look at one function's body.  But state is
transitive — ``repro.experiments.harness`` calling a ``repro.data``
helper that touches the global RNG inherits the non-reproducibility even
though neither module shows a violation locally.  This module builds a
deliberately modest call graph over the scanned tree so the flow rules
(:mod:`repro.analysis.rules.flow`) can follow such chains.

Resolution is *syntactic and conservative in the miss direction*: edges
are added only for call forms we can resolve with confidence —

* bare names defined in the same module or imported via
  ``from repro.x import f``;
* ``alias.f`` / ``alias.sub.f`` where ``alias`` is an imported project
  module (``import repro.x as alias``, ``from repro import x``);
* ``self.f()`` / ``cls.f()`` to a method of the enclosing class or an
  in-module base class.

Unresolvable calls simply add no edge, so the flow rules under-report
rather than hallucinate paths.  That is the right trade for a lint
gate: every reported chain is real and readable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.effects import FunctionEffects, module_effects
from repro.analysis.source import SourceModule

__all__ = [
    "CallGraphNode",
    "CallSiteResolver",
    "ProjectCallGraph",
    "build_callgraph",
    "cached_callgraph",
    "module_name",
]

#: Top-level package the graph resolves into; calls outside it are ignored.
_ROOT_PACKAGE = "repro"


def module_name(path: str) -> str:
    """Dotted module name for a source path.

    ``src/repro/sampling/schemes.py`` → ``repro.sampling.schemes``;
    package ``__init__.py`` files name the package itself.  Paths without
    a ``repro`` component (test fixtures) fall back to the file stem.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    try:
        root = parts.index(_ROOT_PACKAGE)
    except ValueError:
        return parts[-1] if parts else path
    return ".".join(parts[root:])


@dataclass
class CallGraphNode:
    """One function in the project graph."""

    #: Fully qualified key, ``repro.sampling.schemes.Bernoulli._draw``.
    key: str
    module: SourceModule
    effects: FunctionEffects


@dataclass
class ProjectCallGraph:
    """Resolved call edges over every scanned module."""

    nodes: dict[str, CallGraphNode] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)

    def find_path(
        self, start: str, targets: Iterable[str]
    ) -> list[str] | None:
        """Shortest call chain from ``start`` into ``targets`` (exclusive).

        Returns ``[start, ..., target]`` or ``None``.  ``start`` itself is
        never accepted as a target — local effects are the local rules'
        business; the flow rules only care about *reaching* one.
        """
        wanted = set(targets) - {start}
        if not wanted:
            return None
        parents: dict[str, str] = {}
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: list[str] = []
            for key in frontier:
                for callee in sorted(self.edges.get(key, ())):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = key
                    if callee in wanted:
                        chain = [callee]
                        while chain[-1] != start:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None


def _import_map(tree: ast.Module, package: str) -> dict[str, str]:
    """Local name → dotted project target for a module's imports."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _ROOT_PACKAGE or alias.name.startswith(
                    _ROOT_PACKAGE + "."
                ):
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package.split(".")
                if node.level > len(base_parts):
                    continue
                base = ".".join(base_parts[: len(base_parts) - node.level + 1])
                source = f"{base}.{node.module}" if node.module else base
            else:
                source = node.module or ""
            if not (
                source == _ROOT_PACKAGE or source.startswith(_ROOT_PACKAGE + ".")
            ):
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{source}.{alias.name}"
    return imports


def _class_of(qualname: str) -> str | None:
    """Enclosing class prefix of a method qualname, if it looks like one."""
    if "." not in qualname or "<locals>" in qualname:
        return None
    return qualname.rsplit(".", 1)[0]


def _in_module_bases(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Class name → in-module base-class names (single level)."""
    bases: dict[str, tuple[str, ...]] = {}
    class_names = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases[node.name] = tuple(
                base.id
                for base in node.bases
                if isinstance(base, ast.Name) and base.id in class_names
            )
    return bases


def _resolve_method(
    modname: str,
    class_name: str,
    attr: str,
    bases: dict[str, tuple[str, ...]],
    nodes: dict[str, CallGraphNode],
) -> str | None:
    """Find ``Class.attr`` in the class or its in-module ancestors."""
    seen: set[str] = set()
    stack = [class_name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        candidate = f"{modname}.{current}.{attr}"
        if candidate in nodes:
            return candidate
        stack.extend(bases.get(current, ()))
    return None


def build_callgraph(modules: Sequence[SourceModule]) -> ProjectCallGraph:
    """Build the resolved call graph over the scanned modules."""
    graph = ProjectCallGraph()
    per_module: list[tuple[SourceModule, str, dict[str, FunctionEffects]]] = []
    for module in modules:
        modname = module_name(module.path)
        effects = module_effects(module)
        per_module.append((module, modname, effects))
        for qualname, summary in effects.items():
            key = f"{modname}.{qualname}"
            graph.nodes[key] = CallGraphNode(key, module, summary)

    for module, modname, effects in per_module:
        imports = _import_map(module.tree, _package_of(modname, module))
        bases = _in_module_bases(module.tree)
        for qualname, summary in effects.items():
            key = f"{modname}.{qualname}"
            resolved = graph.edges.setdefault(key, set())
            for call in summary.calls:
                target = _resolve_call(
                    call, modname, qualname, imports, bases, graph.nodes
                )
                if target is not None:
                    resolved.add(target)
    return graph


def cached_callgraph(
    modules: Sequence[SourceModule], context: object | None = None
) -> ProjectCallGraph:
    """The call graph for ``modules``, memoized on the project context.

    Several project rules (R302/R402/R1001/R1002/R1101) each need the
    graph for the same scanned tree within one lint run; the shared
    :class:`~repro.analysis.project.ProjectContext` instance outlives
    them all, so it carries the cache.  Without a context this is just
    :func:`build_callgraph`.
    """
    if context is None:
        return build_callgraph(modules)
    token = tuple(id(module) for module in modules)
    cached = getattr(context, "_callgraph_cache", None)
    if cached is not None and cached[0] == token:
        graph: ProjectCallGraph = cached[1]
        return graph
    graph = build_callgraph(modules)
    setattr(context, "_callgraph_cache", (token, graph))
    return graph


class CallSiteResolver:
    """Resolve textual call keys of one module into graph node keys.

    The graph's edges only say *that* a function calls a target; the
    taint engine needs to resolve *individual call expressions* while
    walking a body.  This wraps the same resolution tables the graph
    builder used (import map, in-module bases), so both agree exactly
    on what resolves.
    """

    def __init__(self, graph: ProjectCallGraph, module: SourceModule) -> None:
        self._modname = module_name(module.path)
        self._imports = _import_map(
            module.tree, _package_of(self._modname, module)
        )
        self._bases = _in_module_bases(module.tree)
        self._nodes = graph.nodes

    def resolve(self, call: str, caller_qualname: str = "") -> str | None:
        """Graph key for a textual call target, or None if unresolved."""
        return _resolve_call(
            call, self._modname, caller_qualname, self._imports,
            self._bases, self._nodes,
        )


def _package_of(modname: str, module: SourceModule) -> str:
    """The package a module's relative imports resolve against."""
    if Path(module.path).name == "__init__.py":
        return modname
    return modname.rsplit(".", 1)[0] if "." in modname else modname


def _resolve_call(
    call: str,
    modname: str,
    caller_qualname: str,
    imports: dict[str, str],
    bases: dict[str, tuple[str, ...]],
    nodes: dict[str, CallGraphNode],
) -> str | None:
    parts = call.split(".")
    head, rest = parts[0], parts[1:]

    # self.f() / cls.f(): a method of the enclosing (or base) class.
    if head in ("self", "cls") and len(rest) == 1:
        class_name = _class_of(caller_qualname)
        if class_name is not None:
            return _resolve_method(modname, class_name, rest[0], bases, nodes)
        return None

    # Bare name: same-module function or class, else a from-import.
    if not rest:
        local = f"{modname}.{head}"
        if local in nodes:
            return local
        target = imports.get(head)
        if target is not None and target in nodes:
            return target
        return None

    # alias.f / alias.sub.f where the alias is an imported project module.
    target = imports.get(head)
    if target is None:
        # Same-module class attribute: ClassName.method().
        candidate = f"{modname}.{call}"
        return candidate if candidate in nodes else None
    candidate = f"{target}." + ".".join(rest)
    if candidate in nodes:
        return candidate
    return None
