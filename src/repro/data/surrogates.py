"""Synthetic surrogates for the paper's three real-world datasets.

The paper evaluates on:

* **Census** — the UCI "Adult" extract, 32,561 rows, 15 columns;
* **CoverType** — the UCI forest-cover dataset, 581,012 rows, 11 columns
  (the quantitative attributes plus the cover type);
* **MSSales** — a Microsoft-internal sales table, 1,996,290 rows,
  20 columns (Product, Division, LicenseNumber, Revenue, ...).

None of these can be downloaded in this offline environment, and MSSales
was never public.  Distinct-value estimators, however, see only each
column's *multiset of multiplicities*; reproducing a column's cardinality
and skew profile reproduces estimator behaviour on it (DESIGN.md §3).
The surrogates below therefore synthesize each dataset column-by-column
from its published (Census, CoverType) or schema-plausible (MSSales)
distinct counts, with Zipf-shaped class sizes whose skew reflects the
column kind: identifiers near-uniform, categorical codes moderately
skewed, long-tail monetary amounts highly skewed.

Census/CoverType distinct counts follow the UCI documentation; they are
approximations where the documentation is silent, and are recorded per
column below so they can be audited or corrected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.column import Column
from repro.data.synthetic import column_with_distinct
from repro.errors import DataGenerationError

__all__ = ["Dataset", "ColumnSpec", "census", "covertype", "mssales", "DATASETS"]


@dataclass(frozen=True)
class ColumnSpec:
    """Declarative description of a surrogate column."""

    name: str
    distinct: int
    skew: float


@dataclass
class Dataset:
    """A named collection of columns (a table, for estimation purposes)."""

    name: str
    columns: list[Column] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        return self.columns[0].n_rows if self.columns else 0

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        for candidate in self.columns:
            if candidate.name == name:
                return candidate
        raise DataGenerationError(f"dataset {self.name!r} has no column {name!r}")

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)


#: UCI Adult ("Census") — 32,561 rows, 15 columns.  Distinct counts from
#: the UCI repository documentation; skews chosen by column kind
#: (demographic categoricals are head-heavy, fnlwgt is near-unique).
CENSUS_ROWS = 32_561
CENSUS_COLUMNS: tuple[ColumnSpec, ...] = (
    ColumnSpec("age", 73, 0.8),
    ColumnSpec("workclass", 9, 1.6),
    ColumnSpec("fnlwgt", 21_648, 0.2),
    ColumnSpec("education", 16, 1.0),
    ColumnSpec("education_num", 16, 1.0),
    ColumnSpec("marital_status", 7, 1.2),
    ColumnSpec("occupation", 15, 0.6),
    ColumnSpec("relationship", 6, 1.0),
    ColumnSpec("race", 5, 2.0),
    ColumnSpec("sex", 2, 0.6),
    ColumnSpec("capital_gain", 119, 2.5),
    ColumnSpec("capital_loss", 92, 2.5),
    ColumnSpec("hours_per_week", 94, 1.8),
    ColumnSpec("native_country", 42, 2.2),
    ColumnSpec("income", 2, 0.8),
)

#: UCI CoverType — 581,012 rows; the ten quantitative attributes plus
#: the class label, as in the paper's 11-column table.
COVERTYPE_ROWS = 581_012
COVERTYPE_COLUMNS: tuple[ColumnSpec, ...] = (
    ColumnSpec("elevation", 1_978, 0.3),
    ColumnSpec("aspect", 361, 0.4),
    ColumnSpec("slope", 67, 0.9),
    ColumnSpec("horizontal_distance_to_hydrology", 551, 0.8),
    ColumnSpec("vertical_distance_to_hydrology", 700, 0.9),
    ColumnSpec("horizontal_distance_to_roadways", 5_785, 0.4),
    ColumnSpec("hillshade_9am", 207, 0.5),
    ColumnSpec("hillshade_noon", 185, 0.5),
    ColumnSpec("hillshade_3pm", 255, 0.5),
    ColumnSpec("horizontal_distance_to_fire_points", 5_827, 0.4),
    ColumnSpec("cover_type", 7, 1.0),
)

#: MSSales — schema-plausible sales fact table, 1,996,290 rows,
#: 20 columns spanning the cardinality spectrum the paper names
#: (Product, Division, LicenseNumber, Revenue, ...).
MSSALES_ROWS = 1_996_290
MSSALES_COLUMNS: tuple[ColumnSpec, ...] = (
    ColumnSpec("product", 5_000, 1.1),
    ColumnSpec("division", 50, 1.3),
    ColumnSpec("license_number", 1_500_000, 0.05),
    ColumnSpec("revenue", 300_000, 0.9),
    ColumnSpec("quantity", 1_000, 2.0),
    ColumnSpec("order_date", 365, 0.3),
    ColumnSpec("ship_date", 370, 0.3),
    ColumnSpec("customer", 200_000, 1.0),
    ColumnSpec("region", 15, 1.0),
    ColumnSpec("country", 80, 1.5),
    ColumnSpec("currency", 30, 1.8),
    ColumnSpec("sales_rep", 2_000, 0.8),
    ColumnSpec("channel", 8, 1.2),
    ColumnSpec("program", 120, 1.4),
    ColumnSpec("sku", 8_000, 1.1),
    ColumnSpec("invoice", 1_800_000, 0.02),
    ColumnSpec("discount_pct", 100, 2.2),
    ColumnSpec("unit_price", 20_000, 1.0),
    ColumnSpec("fiscal_quarter", 4, 0.2),
    ColumnSpec("fiscal_month", 12, 0.2),
)


def _build_dataset(
    name: str,
    n_rows: int,
    specs: tuple[ColumnSpec, ...],
    rng: np.random.Generator | None,
    scale: float,
) -> Dataset:
    if not 0.0 < scale <= 1.0:
        raise DataGenerationError(f"scale must be in (0, 1], got {scale}")
    rng = rng if rng is not None else np.random.default_rng(0)
    rows = max(1, int(round(n_rows * scale)))
    columns = []
    for spec in specs:
        distinct = max(1, min(rows, int(round(spec.distinct * scale))))
        columns.append(
            column_with_distinct(rows, distinct, z=spec.skew, rng=rng, name=spec.name)
        )
    return Dataset(name=name, columns=columns)


def census(
    rng: np.random.Generator | None = None, scale: float = 1.0
) -> Dataset:
    """The Census (UCI Adult) surrogate; ``scale`` shrinks rows and cardinalities."""
    return _build_dataset("Census", CENSUS_ROWS, CENSUS_COLUMNS, rng, scale)


def covertype(
    rng: np.random.Generator | None = None, scale: float = 1.0
) -> Dataset:
    """The CoverType (UCI) surrogate."""
    return _build_dataset("CoverType", COVERTYPE_ROWS, COVERTYPE_COLUMNS, rng, scale)


def mssales(
    rng: np.random.Generator | None = None, scale: float = 1.0
) -> Dataset:
    """The MSSales (Microsoft-internal) surrogate."""
    return _build_dataset("MSSales", MSSALES_ROWS, MSSALES_COLUMNS, rng, scale)


#: Factory registry used by the experiment configs.
DATASETS = {
    "Census": census,
    "CoverType": covertype,
    "MSSales": mssales,
}
