"""Loading and saving columns on disk (CSV / text / ``.npy``).

A downstream user's data lives in files, not generators.  These loaders
return :class:`~repro.data.Column` objects ready for the samplers and
estimators; values parse as integers when possible, floats next, and
fall back to strings (which every sampler and the hashing layer accept).
Writes go through :func:`save_column`, which is atomic — an interrupted
``repro generate`` never leaves a truncated column file behind.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.data.column import Column
from repro.errors import DataGenerationError
from repro.resilience.atomic import atomic_write

__all__ = ["load_column", "load_csv_column", "load_csv_table", "save_column"]


def _parse_values(raw: list[str]) -> np.ndarray:
    try:
        return np.array([int(value) for value in raw], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(value) for value in raw], dtype=np.float64)
    except ValueError:
        return np.array(raw, dtype=object)


def load_csv_column(path, column: str, name: str | None = None) -> Column:
    """Load one named column from a headered CSV file."""
    file_path = Path(path)
    if not file_path.exists():
        raise DataGenerationError(f"no such file: {path}")
    with open(file_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or column not in reader.fieldnames:
            available = ", ".join(reader.fieldnames or [])
            raise DataGenerationError(
                f"{path} has no column {column!r}; columns: {available or '(none)'}"
            )
        raw = [row[column] for row in reader]
    if not raw:
        raise DataGenerationError(f"{path} has no data rows")
    return Column(name=name or column, values=_parse_values(raw))


def load_csv_table(path, name: str | None = None) -> dict[str, np.ndarray]:
    """Load every column of a headered CSV as ``{name: array}``.

    The result plugs straight into :class:`repro.db.Table`::

        Table(name="people", columns=load_csv_table("people.csv"))
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataGenerationError(f"no such file: {path}")
    with open(file_path, newline="") as handle:
        reader = csv.DictReader(handle)
        if not reader.fieldnames:
            raise DataGenerationError(f"{path} has no header row")
        raw: dict[str, list[str]] = {field: [] for field in reader.fieldnames}
        for row in reader:
            for field in reader.fieldnames:
                raw[field].append(row[field])
    if not next(iter(raw.values()), []):
        raise DataGenerationError(f"{path} has no data rows")
    return {field: _parse_values(values) for field, values in raw.items()}


def save_column(values: np.ndarray, path) -> Path:
    """Write a value array to ``.npy`` (by suffix) or one-per-line text.

    The inverse of :func:`load_column` for the two self-describing
    formats.  The write is atomic: the payload is serialized in memory
    and lands via write-temp-then-rename, so a killed ``repro generate``
    leaves either the previous file or the complete new one.
    """
    file_path = Path(path)
    if file_path.suffix == ".npy":
        buffer = io.BytesIO()
        np.save(buffer, values)
        return atomic_write(file_path, buffer.getvalue())
    text = "".join(f"{value}\n" for value in values)
    return atomic_write(file_path, text)


def load_column(
    path,
    column: str | None = None,
    name: str | None = None,
    mmap: bool = False,
) -> Column:
    """Load a column from ``.npy``, ``.csv`` (requires ``column=``), or text.

    Text files hold one value per line; blank lines are skipped.  With
    ``mmap=True`` an ``.npy`` file is opened as a read-only memory map
    (``np.load(mmap_mode="r")``): nothing is read until sliced, so scans
    and samplers touch only the rows they select.  The flag is ignored
    for the text formats, which must be parsed row by row regardless.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataGenerationError(f"no such file: {path}")
    if file_path.suffix == ".npy":
        values = np.load(file_path, mmap_mode="r" if mmap else None)
        return Column(name=name or file_path.stem, values=values)
    if file_path.suffix == ".csv":
        if column is None:
            raise DataGenerationError("CSV files need a column= name")
        return load_csv_column(file_path, column, name=name)
    with open(file_path) as handle:
        raw = [line.strip() for line in handle if line.strip()]
    if not raw:
        raise DataGenerationError(f"{path} has no data rows")
    return Column(name=name or file_path.stem, values=_parse_values(raw))
