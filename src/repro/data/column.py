"""The Column abstraction shared by generators, the DB substrate, and experiments.

A column is just a named 1-D array of values together with cached ground
truth (the true distinct count and class sizes) so experiments never
recompute exact answers per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = ["Column"]


@dataclass
class Column:
    """A named column of values with cached ground-truth statistics."""

    name: str
    values: np.ndarray
    _distinct: int | None = field(default=None, repr=False)
    _class_sizes: np.ndarray | None = field(default=None, repr=False)
    _population_profile: FrequencyProfile | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise InvalidParameterError(
                f"column {self.name!r} must be 1-D, got shape {self.values.shape}"
            )
        if self.values.size == 0:
            raise InvalidParameterError(f"column {self.name!r} must be non-empty")

    @property
    def n_rows(self) -> int:
        """Number of rows, ``n``."""
        return int(self.values.size)

    @property
    def class_sizes(self) -> np.ndarray:
        """Per-distinct-value multiplicities ``n_j`` (computed once)."""
        if self._class_sizes is None:
            _, counts = np.unique(self.values, return_counts=True)
            self._class_sizes = counts
        return self._class_sizes

    @property
    def distinct_count(self) -> int:
        """The exact number of distinct values ``D`` (computed once)."""
        if self._distinct is None:
            self._distinct = int(self.class_sizes.size)
        return self._distinct

    def population_profile(self) -> FrequencyProfile:
        """Frequency profile of the *entire* column (ground truth spectrum).

        Computed once and cached; the single ``np.unique`` over
        :attr:`class_sizes` replaces the historical per-multiplicity
        Python loop.  Frequencies enter the profile in first-encounter
        order of the class sizes — exactly the insertion order
        ``from_multiplicities`` would produce — so the cached profile is
        indistinguishable from the loop-built one.
        """
        if self._population_profile is None:
            freqs, first, counts = np.unique(
                self.class_sizes, return_index=True, return_counts=True
            )
            order = np.argsort(first)
            self._population_profile = FrequencyProfile(
                dict(
                    zip(freqs[order].tolist(), counts[order].tolist())
                )
            )
        return self._population_profile

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column(name={self.name!r}, n_rows={self.n_rows})"
