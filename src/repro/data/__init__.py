"""Data generation: Zipfian synthetics (§6) and real-dataset surrogates."""

from repro.data.column import Column
from repro.data.io import load_column, load_csv_column
from repro.data.surrogates import (
    DATASETS,
    ColumnSpec,
    Dataset,
    census,
    covertype,
    mssales,
)
from repro.data.synthetic import (
    all_distinct_column,
    bounded_scaleup_column,
    clustered_column,
    column_with_distinct,
    constant_column,
    needle_column,
    unbounded_scaleup_column,
    uniform_column,
)
from repro.data.zipf import shuffled_from_class_sizes, zipf_class_sizes, zipf_column

__all__ = [
    "Column",
    "load_column",
    "load_csv_column",
    "DATASETS",
    "ColumnSpec",
    "Dataset",
    "census",
    "covertype",
    "mssales",
    "all_distinct_column",
    "bounded_scaleup_column",
    "clustered_column",
    "column_with_distinct",
    "constant_column",
    "needle_column",
    "unbounded_scaleup_column",
    "uniform_column",
    "shuffled_from_class_sizes",
    "zipf_class_sizes",
    "zipf_column",
]
