"""Synthetic workload constructors for the paper's §6 experiments.

Beyond the plain ``(n, Z, dup)`` Zipf columns, the experiments need:

* the *bounded-domain scaleup* series (Figure 9): a fixed base
  distribution is duplicated harder and harder, so ``D`` stays constant
  while ``n`` grows;
* the *unbounded-domain scaleup* series (Figure 10): fixed duplication
  factor, so ``D`` grows with ``n``;
* controlled corner-case columns (all-distinct, constant,
  heavy-plus-singletons a la Theorem 1's Scenario B) used by tests and
  examples.
"""

from __future__ import annotations

import numpy as np

from repro.data.column import Column
from repro.data.zipf import shuffled_from_class_sizes, zipf_class_sizes
from repro.errors import DataGenerationError

__all__ = [
    "bounded_scaleup_column",
    "unbounded_scaleup_column",
    "all_distinct_column",
    "constant_column",
    "uniform_column",
    "needle_column",
    "column_with_distinct",
    "clustered_column",
]


def bounded_scaleup_column(
    n_rows: int,
    base_rows: int = 1000,
    z: float = 2.0,
    rng: np.random.Generator | None = None,
) -> Column:
    """Figure 9's workload: duplicate a fixed Zipf base up to ``n_rows``.

    "We generated data with Z=2 which gives [tens of] distinct values
    for n = 1000.  To generate the 100K table, we made 100 copies of
    each distinct value" (§6).  ``n_rows`` must be a multiple of
    ``base_rows``; the distinct count is independent of ``n_rows``.
    """
    if n_rows % base_rows != 0:
        raise DataGenerationError(
            f"n_rows={n_rows} is not a multiple of base_rows={base_rows}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    copies = n_rows // base_rows
    sizes = zipf_class_sizes(base_rows, z) * copies
    return shuffled_from_class_sizes(
        sizes, rng, name=f"bounded-scaleup(n={n_rows},z={z:g},base={base_rows})"
    )


def unbounded_scaleup_column(
    n_rows: int,
    duplication: int = 100,
    z: float = 2.0,
    rng: np.random.Generator | None = None,
) -> Column:
    """Figure 10's workload: fixed duplication, domain growing with ``n``."""
    rng = rng if rng is not None else np.random.default_rng()
    if n_rows % duplication != 0:
        raise DataGenerationError(
            f"n_rows={n_rows} is not a multiple of duplication={duplication}"
        )
    sizes = zipf_class_sizes(n_rows // duplication, z) * duplication
    return shuffled_from_class_sizes(
        sizes, rng, name=f"unbounded-scaleup(n={n_rows},z={z:g},dup={duplication})"
    )


def all_distinct_column(n_rows: int, name: str = "all-distinct") -> Column:
    """Every row a fresh value (``D = n``) — a key-like column."""
    if n_rows < 1:
        raise DataGenerationError(f"n_rows must be >= 1, got {n_rows}")
    return Column(name=name, values=np.arange(n_rows, dtype=np.int64))


def constant_column(n_rows: int, name: str = "constant") -> Column:
    """A single value everywhere (``D = 1``) — Theorem 1's Scenario A."""
    if n_rows < 1:
        raise DataGenerationError(f"n_rows must be >= 1, got {n_rows}")
    return Column(name=name, values=np.zeros(n_rows, dtype=np.int64))


def uniform_column(
    n_rows: int,
    distinct: int,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Column:
    """``distinct`` values of (near-)equal multiplicity, randomly laid out."""
    if not 1 <= distinct <= n_rows:
        raise DataGenerationError(
            f"distinct must be in [1, n_rows], got {distinct} for n={n_rows}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    base, extra = divmod(n_rows, distinct)
    sizes = np.full(distinct, base, dtype=np.int64)
    sizes[:extra] += 1
    return shuffled_from_class_sizes(
        sizes, rng, name=name or f"uniform(n={n_rows},D={distinct})"
    )


def needle_column(
    n_rows: int,
    singletons: int,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Column:
    """Theorem 1's Scenario B: one heavy value plus ``singletons`` needles."""
    if not 0 <= singletons < n_rows:
        raise DataGenerationError(
            f"singletons must be in [0, n_rows), got {singletons} for n={n_rows}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    sizes = np.concatenate(
        [
            np.array([n_rows - singletons], dtype=np.int64),
            np.ones(singletons, dtype=np.int64),
        ]
    )
    return shuffled_from_class_sizes(
        sizes, rng, name=name or f"needles(n={n_rows},k={singletons})"
    )


def clustered_column(
    n_rows: int,
    distinct: int,
    name: str | None = None,
) -> Column:
    """A value-clustered layout: each value's rows are consecutive.

    The paper randomizes its layouts precisely because clustering breaks
    block sampling ("The layout of data for each column was random",
    §6); this generator produces the opposite extreme for the
    sampling-design ablation.  ``n_rows`` need not divide evenly; the
    first values absorb the remainder.
    """
    if not 1 <= distinct <= n_rows:
        raise DataGenerationError(
            f"distinct must be in [1, n_rows], got {distinct} for n={n_rows}"
        )
    base, extra = divmod(n_rows, distinct)
    sizes = np.full(distinct, base, dtype=np.int64)
    sizes[:extra] += 1
    values = np.repeat(np.arange(distinct, dtype=np.int64), sizes)
    return Column(
        name=name or f"clustered(n={n_rows},D={distinct})",
        values=values,
        _class_sizes=np.sort(sizes),
    )


def column_with_distinct(
    n_rows: int,
    distinct: int,
    z: float = 1.0,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Column:
    """A column with an exact distinct count and Zipf-shaped class sizes.

    Used by the real-dataset surrogates, where the published schema fixes
    each column's cardinality: ranks get weight ``1 / i^z``, sizes are
    scaled to ``n_rows`` with a one-row floor, and the rounding residual
    is spread over the largest classes.
    """
    if not 1 <= distinct <= n_rows:
        raise DataGenerationError(
            f"distinct must be in [1, n_rows], got {distinct} for n={n_rows}"
        )
    if z < 0:
        raise DataGenerationError(f"z must be >= 0, got {z}")
    rng = rng if rng is not None else np.random.default_rng()
    ranks = np.arange(1, distinct + 1, dtype=np.float64)
    weights = 1.0 / ranks**z
    sizes = np.maximum(1, np.floor(n_rows * weights / weights.sum())).astype(np.int64)
    residual = int(n_rows - sizes.sum())
    if residual < 0:
        # Floors overshot (possible when many sizes hit the 1-row floor):
        # shave the largest classes, never below one row.
        for idx in range(sizes.size):
            if residual == 0:
                break
            take = min(-residual, int(sizes[idx]) - 1)
            sizes[idx] -= take
            residual += take
        if residual != 0:
            raise DataGenerationError(
                f"cannot fit {distinct} distinct values into {n_rows} rows"
            )
    elif residual > 0:
        # Distribute leftover rows over the head, proportionally.
        head = min(sizes.size, max(1, residual))
        per, extra = divmod(residual, head)
        sizes[:head] += per
        sizes[:extra] += 1
    return shuffled_from_class_sizes(
        sizes, rng, name=name or f"zipfD(n={n_rows},D={distinct},z={z:g})"
    )
