"""Generalized Zipfian data generation (the paper's §6 synthetic workloads).

The paper generates columns "according to the generalized Zipfian
distribution" with skew parameter ``Z`` in {0, 1, 2, 3, 4}, where
``Z = 0`` is uniform (every distinct value equally frequent) and larger
``Z`` concentrates the mass on a few head values.

We use the deterministic formulation common to the authors' SIGMOD'98
work: class ``i`` (rank ``i``) receives ``n_i ~ C / i^Z`` rows, with the
scale ``C`` solved so the sizes sum to the requested row count and
classes rounding to zero rows dropped.  ``Z = 0`` degenerates to one row
per class, so that the paper's *duplication factor* knob fully controls
multiplicity: a Z=0, dup=100, n=1M column has exactly D = 10,000 values
of 100 copies each — matching Table 1's ACTUAL = 10,000.

Rounding makes the sum land near (not exactly on) the target; the
residual is absorbed by the largest class, keeping every class size
positive and the total exact.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.data.column import Column
from repro.errors import DataGenerationError
from repro.obs.recorder import OBS

__all__ = ["zipf_class_sizes", "zipf_column", "shuffled_from_class_sizes"]


def _sizes_for_scale(scale: float, z: float, max_classes: int) -> np.ndarray:
    """Rounded class sizes ``round(scale / i^z)`` for ranks with >= 1 row."""
    if scale <= 0.0:
        return np.zeros(0, dtype=np.int64)
    # Ranks beyond (2*scale)^(1/z) round to zero rows; computed in log
    # space so tiny z cannot overflow the power.
    if z > 0 and z * np.log(max_classes + 1.0) > np.log(max(2.0 * scale, 1e-300)):
        rank_limit = int(np.floor((2.0 * scale) ** (1.0 / z)))
    else:
        rank_limit = max_classes
    rank_limit = max(1, min(rank_limit, max_classes))
    ranks = np.arange(1, rank_limit + 1, dtype=np.float64)
    sizes = np.round(scale / ranks**z).astype(np.int64)
    return sizes[sizes > 0]


def zipf_class_sizes(total_rows: int, z: float) -> np.ndarray:
    """Class sizes (descending) of a generalized Zipfian column.

    The scale solve (a 64-iteration binary search over O(D)-sized
    arrays) is deterministic, so repeated ``(total_rows, z)`` requests —
    a sweep regenerating the same column spec per grid point, or the
    error and variance exhibits of one workload — hit an in-process
    memo; callers always receive a fresh, writable copy.

    Parameters
    ----------
    total_rows:
        Total number of rows to distribute; the returned sizes sum to
        exactly this value.
    z:
        Skew.  ``z = 0`` yields ``total_rows`` classes of one row each;
        larger ``z`` yields fewer, heavier classes.
    """
    if total_rows < 1:
        raise DataGenerationError(f"total_rows must be >= 1, got {total_rows}")
    if z < 0:
        raise DataGenerationError(f"z must be >= 0, got {z}")
    if z == 0:
        # One row per class: trivial to build and, at z=0, as large as
        # the column itself — not worth holding in the memo.
        return np.ones(total_rows, dtype=np.int64)
    return _solved_class_sizes(int(total_rows), float(z)).copy()


@lru_cache(maxsize=16)
def _solved_class_sizes(total_rows: int, z: float) -> np.ndarray:
    """The (cached, read-only) scale solve behind :func:`zipf_class_sizes`."""
    # Binary-search the scale C so that sum_i round(C / i^z) ~ total_rows.
    lo, hi = 0.0, float(total_rows)
    while _sizes_for_scale(hi, z, total_rows).sum() < total_rows:
        lo = hi
        hi *= 2.0
    for _ in range(64):
        mid = (lo + hi) / 2.0
        if _sizes_for_scale(mid, z, total_rows).sum() < total_rows:
            lo = mid
        else:
            hi = mid
    sizes = _sizes_for_scale(hi, z, total_rows)
    # Absorb the rounding residual into the head class.
    residual = int(total_rows - sizes.sum())
    if residual != 0:
        if sizes.size == 0 or sizes[0] + residual < 1:
            raise DataGenerationError(
                f"cannot absorb rounding residual {residual} for "
                f"total_rows={total_rows}, z={z}"
            )
        sizes = sizes.copy()
        sizes[0] += residual
    # Keep the (descending) invariant even after head adjustment.
    sizes = np.ascontiguousarray(np.sort(sizes)[::-1])
    sizes.flags.writeable = False
    return sizes


def shuffled_from_class_sizes(
    class_sizes: np.ndarray,
    rng: np.random.Generator,
    name: str = "synthetic",
    value_offset: int = 0,
) -> Column:
    """Materialize a column from class sizes with a random row layout.

    Value ``value_offset + i`` receives ``class_sizes[i]`` rows; rows are
    then placed at uniformly random positions ("The layout of data for
    each column was random", §6).
    """
    sizes = np.asarray(class_sizes, dtype=np.int64)
    if sizes.size == 0 or (sizes <= 0).any():
        raise DataGenerationError("class sizes must be positive and non-empty")
    values = np.repeat(
        np.arange(value_offset, value_offset + sizes.size, dtype=np.int64), sizes
    )
    rng.shuffle(values)
    return Column(name=name, values=values, _class_sizes=np.sort(sizes))


def zipf_column(
    n_rows: int,
    z: float,
    duplication: int = 1,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> Column:
    """Generate a paper-style synthetic column ``(n, Z, dup)``.

    Follows the paper's recipe exactly: "to generate a column with
    n = 1,000,000, Z = 2 and 100 duplicates, we generate Zipfian data
    for n = 10,000, and made 100 copies of each value" (§6).  ``n_rows``
    must therefore be divisible by ``duplication``.
    """
    if duplication < 1:
        raise DataGenerationError(f"duplication must be >= 1, got {duplication}")
    if n_rows % duplication != 0:
        raise DataGenerationError(
            f"n_rows={n_rows} is not divisible by duplication={duplication}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    with OBS.span("data.zipf_column", n_rows=n_rows, z=z, duplication=duplication):
        base_sizes = zipf_class_sizes(n_rows // duplication, z)
        sizes = base_sizes * duplication
        label = name or f"zipf(n={n_rows},z={z:g},dup={duplication})"
        column = shuffled_from_class_sizes(sizes, rng, name=label)
    if OBS.enabled:
        OBS.add("data.rows_generated", n_rows)
    return column
