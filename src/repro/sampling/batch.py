"""Vectorized reduction of many sampling trials to frequency profiles.

The measurement harness draws ``T`` independent samples per
configuration and needs one :class:`~repro.frequency.profile.FrequencyProfile`
per trial.  Reducing each sample separately costs ``T`` sorts plus ``T``
rounds of Python dict handling; this module does the whole batch in two
``np.unique`` passes over ``(trial, value)`` pairs:

1. factorize the concatenated samples once and count the multiplicity of
   every ``(trial, value)`` pair — one sort over all trials' rows;
2. count, per trial, how many values hit each multiplicity — one sort
   over the (much smaller) set of occupied pairs.

The result is exactly ``[FrequencyProfile.from_sample(s) for s in
samples]``: both passes are integer-exact, so the batched reduction is
interchangeable with the serial one bit for bit.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidSampleError
from repro.frequency.profile import FrequencyProfile

__all__ = ["profiles_from_samples"]


def profiles_from_samples(
    samples: Sequence[npt.NDArray[Any]],
) -> list[FrequencyProfile]:
    """Reduce a batch of sample arrays to one profile per trial.

    ``samples`` holds one 1-D array of sampled values per trial; the
    arrays may differ in length (Bernoulli trials do).  Returns the
    trials' profiles in order, equal to calling
    :meth:`FrequencyProfile.from_sample` on each array.
    """
    arrays: list[npt.NDArray[Any]] = []
    for sample in samples:
        array = np.asarray(sample)
        if array.ndim != 1:
            raise InvalidSampleError(
                f"sample arrays must be 1-D, got shape {array.shape}"
            )
        arrays.append(array)
    if not arrays:
        return []

    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return [FrequencyProfile.empty() for _ in arrays]

    flat = np.concatenate(arrays)
    trial_ids = np.repeat(np.arange(len(arrays), dtype=np.int64), lengths)

    # Pass 1: multiplicity of every (trial, value) pair.  Values are
    # factorized to dense codes so the pair collapses into a single
    # int64 key regardless of the column's dtype.
    _, codes = np.unique(flat, return_inverse=True)
    # ``max(..., 1)`` states the >= 1 invariant (codes are dense and
    # non-negative) in a form the interval prover can discharge.
    n_codes = max(int(codes.max()) + 1, 1)
    pair_keys, multiplicities = np.unique(
        trial_ids * n_codes + codes.astype(np.int64), return_counts=True
    )
    pair_trials = pair_keys // n_codes

    # Pass 2: per trial, how many values occur with each multiplicity.
    stride = max(int(multiplicities.max()) + 1, 1)
    freq_keys, value_counts = np.unique(
        pair_trials * stride + multiplicities, return_counts=True
    )
    key_trials = (freq_keys // stride).tolist()
    key_freqs = (freq_keys % stride).tolist()

    counts: list[dict[int, int]] = [{} for _ in arrays]
    for trial, frequency, count in zip(key_trials, key_freqs, value_counts.tolist()):
        counts[trial][frequency] = count
    return [FrequencyProfile(c) for c in counts]
