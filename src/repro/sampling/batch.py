"""Vectorized reduction of many sampling trials to frequency profiles.

The measurement harness draws ``T`` independent samples per
configuration and needs one :class:`~repro.frequency.profile.FrequencyProfile`
per trial.  Reducing each sample separately costs ``T`` sorts plus ``T``
rounds of Python dict handling; this module validates the batch once and
hands the actual counting to a reduction kernel from
:mod:`repro.sampling.kernels` — the historical two-``np.unique``
reduction (``legacy``), the single-pass bincount kernel (``numpy``, the
default), or the optional compiled variant (``numba``), selected by the
``REPRO_KERNEL`` environment knob.

The result is exactly ``[FrequencyProfile.from_sample(s) for s in
samples]`` under *every* kernel: all counting is integer-exact and every
kernel emits histogram keys in the same ascending ``(trial, frequency)``
order, so the batched reduction is interchangeable with the serial one —
and the kernels with each other — bit for bit.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidSampleError
from repro.frequency.profile import FrequencyProfile
from repro.sampling.kernels import reduce_samples

__all__ = ["profiles_from_samples"]


def profiles_from_samples(
    samples: Sequence[npt.NDArray[Any]],
    kernel: str | None = None,
) -> list[FrequencyProfile]:
    """Reduce a batch of sample arrays to one profile per trial.

    ``samples`` holds one 1-D array of sampled values per trial; the
    arrays may differ in length (Bernoulli trials do).  Returns the
    trials' profiles in order, equal to calling
    :meth:`FrequencyProfile.from_sample` on each array.  ``kernel``
    overrides the ``REPRO_KERNEL`` knob for this call (identity tests
    compare kernels through it).
    """
    arrays: list[npt.NDArray[Any]] = []
    for sample in samples:
        array = np.asarray(sample)
        if array.ndim != 1:
            raise InvalidSampleError(
                f"sample arrays must be 1-D, got shape {array.shape}"
            )
        arrays.append(array)
    if not arrays:
        return []
    if sum(a.size for a in arrays) == 0:
        return [FrequencyProfile.empty() for _ in arrays]
    return [FrequencyProfile(c) for c in reduce_samples(arrays, kernel)]
