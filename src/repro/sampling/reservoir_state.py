"""A persistent, chunk-fed reservoir (Vitter's Algorithm R).

The stateful core shared by the streaming and maintained ANALYZE paths:
feed it value chunks in arrival order and at any moment its contents
are a uniform without-replacement sample of everything seen so far.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = ["ChunkedReservoir"]


class ChunkedReservoir:
    """Algorithm R over a stream of numpy chunks.

    Parameters
    ----------
    capacity:
        Maximum rows retained (``r``).
    rng:
        Randomness source for replacement decisions.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = rng
        self._values: npt.NDArray[Any] | None = None
        self._rows_seen = 0

    @property
    def rows_seen(self) -> int:
        """Total rows consumed so far."""
        return self._rows_seen

    @property
    def size(self) -> int:
        """Rows currently held (== capacity once the stream exceeds it)."""
        return 0 if self._values is None else int(self._values.size)

    def consume(self, chunk: npt.ArrayLike) -> None:
        """Absorb the next chunk of the stream (in arrival order)."""
        data = np.asarray(chunk)
        if data.ndim != 1:
            raise InvalidParameterError(
                f"chunks must be 1-D, got shape {data.shape}"
            )
        if data.size == 0:
            return
        if self._values is None:
            head = data[: self.capacity].copy()
            self._values = head
            self._rows_seen = head.size
            data = data[head.size :]
            if data.size == 0:
                return
        elif self._values.size < self.capacity:
            needed = self.capacity - self._values.size
            self._values = np.concatenate([self._values, data[:needed]])
            self._rows_seen += min(needed, data.size)
            data = data[needed:]
            if data.size == 0:
                return
        # Algorithm R: global row index t (0-based) replaces a random
        # slot with probability capacity / (t + 1).
        indices = np.arange(self._rows_seen, self._rows_seen + data.size)
        slots = self._rng.integers(0, indices + 1)
        hits = slots < self.capacity
        for offset, slot in zip(np.nonzero(hits)[0], slots[hits]):
            self._values[slot] = data[offset]
        self._rows_seen += data.size

    def values(self) -> npt.NDArray[Any]:
        """The current sample (raises before any row has been consumed)."""
        if self._values is None:
            raise InvalidParameterError("no rows consumed yet")
        return self._values

    def profile(self) -> FrequencyProfile:
        """Frequency profile of the current sample."""
        return FrequencyProfile.from_sample(self.values())
