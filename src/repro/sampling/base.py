"""Sampler interface and shared helpers.

The estimators assume "a random sample of r tuples chosen uniformly at
random from the table" (paper §2), with or without replacement.  The
samplers in this package produce such samples from a column held as a
1-D numpy array; they are the library's stand-in for the sampling
operators of Olken's thesis and the SQL Server sampling hook the paper
used (DESIGN.md §3).

Every sampler takes an explicit :class:`numpy.random.Generator` so that
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile
from repro.obs.recorder import OBS
from repro.sampling.batch import profiles_from_samples

__all__ = ["RowSampler", "resolve_sample_size", "as_column"]


def as_column(values: npt.ArrayLike) -> npt.NDArray[Any]:
    """Coerce ``values`` to a 1-D numpy array, validating the shape."""
    column = np.asarray(values)
    if column.ndim != 1:
        raise InvalidParameterError(f"columns must be 1-D, got shape {column.shape}")
    if column.size == 0:
        raise InvalidParameterError("columns must be non-empty")
    return column


def resolve_sample_size(
    population_size: int,
    size: int | None = None,
    fraction: float | None = None,
    allow_oversample: bool = False,
) -> int:
    """Turn a ``size`` or ``fraction`` specification into a concrete ``r``.

    Exactly one of ``size`` and ``fraction`` must be given.  Fractions
    are rounded to the nearest row and clamped into ``[1, n]``.  A
    ``size`` above ``n`` is allowed only when ``allow_oversample`` is
    set (with-replacement schemes can legitimately draw more rows than
    the table holds).
    """
    if (size is None) == (fraction is None):
        raise InvalidParameterError("specify exactly one of size= or fraction=")
    if size is not None:
        r = int(size)
        upper = None if allow_oversample else population_size
        if r < 1 or (upper is not None and r > upper):
            raise InvalidParameterError(
                f"sample size must be in [1, {upper}], got {size}"
            )
        return r
    assert fraction is not None  # the exactly-one check above guarantees it
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
    return min(population_size, max(1, round(fraction * population_size)))


class RowSampler(ABC):
    """Draws a random sample of rows from a column.

    Subclasses define :meth:`_draw`; the public :meth:`sample` handles
    size resolution and validation, and :meth:`profile` additionally
    reduces the sample to its frequency profile — the quantity every
    estimator consumes.
    """

    #: Stable identifier used in experiment configs and reports.
    name: str = "base"

    #: Whether the scheme guarantees no row is inspected twice.
    without_replacement: bool = True

    def sample(
        self,
        column: npt.ArrayLike,
        rng: np.random.Generator,
        size: int | None = None,
        fraction: float | None = None,
    ) -> npt.NDArray[Any]:
        """Draw a sample of rows from ``column``."""
        data = as_column(column)
        r = resolve_sample_size(
            data.size,
            size=size,
            fraction=fraction,
            allow_oversample=not self.without_replacement,
        )
        return self._draw(data, r, rng)

    def profile(
        self,
        column: npt.ArrayLike,
        rng: np.random.Generator,
        size: int | None = None,
        fraction: float | None = None,
    ) -> FrequencyProfile:
        """Draw a sample and return its frequency profile."""
        with OBS.span(f"sample.{self.name}", trials=1):
            profile = FrequencyProfile.from_sample(
                self.sample(column, rng, size=size, fraction=fraction)
            )
        if OBS.enabled:
            OBS.add("sample.trials", 1)
            OBS.add("sample.rows_sampled", profile.sample_size)
        return profile

    def profile_batch(
        self,
        column: npt.ArrayLike,
        rng: np.random.Generator,
        trials: int,
        size: int | None = None,
        fraction: float | None = None,
    ) -> list[FrequencyProfile]:
        """Draw ``trials`` independent samples and return their profiles.

        Semantically identical to calling :meth:`profile` ``trials``
        times with the same generator — including the order in which the
        random stream is consumed, so the batched and serial paths
        produce bit-for-bit equal profiles — but samplers that implement
        :meth:`_draw_batch` amortize the per-trial reduction into a
        single vectorized pass over all trials.  Samplers that do not
        (any custom subclass) fall back to the serial loop.
        """
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        data = as_column(column)
        r = resolve_sample_size(
            data.size,
            size=size,
            fraction=fraction,
            allow_oversample=not self.without_replacement,
        )
        with OBS.span(
            f"sample.{self.name}", trials=trials, requested_size=r
        ) as span:
            batch = self._draw_batch(data, r, rng, trials)
            if batch is None:
                if span.id is not None:
                    span.attrs["path"] = "serial"
                profiles = [
                    FrequencyProfile.from_sample(self._draw(data, r, rng))
                    for _ in range(trials)
                ]
            else:
                profiles = profiles_from_samples(batch)
        if OBS.enabled:
            OBS.add("sample.trials", trials)
            OBS.add("sample.rows_sampled", sum(p.sample_size for p in profiles))
        return profiles

    @abstractmethod
    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        """Draw exactly ``r`` rows (or approximately, for Bernoulli) from ``column``."""

    def _draw_batch(
        self,
        column: npt.NDArray[Any],
        r: int,
        rng: np.random.Generator,
        trials: int,
    ) -> Sequence[npt.NDArray[Any]] | None:
        """Draw ``trials`` samples for the batched profile reduction.

        Returns one array of sampled values per trial, or ``None`` to
        request the serial fallback.  Implementations MUST consume
        ``rng`` exactly as ``trials`` successive :meth:`_draw` calls
        would, so that batched and serial runs stay interchangeable bit
        for bit under a fixed seed.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
