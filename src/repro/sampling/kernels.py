"""Reduction kernels: many sampling trials -> per-trial frequency histograms.

The batched trial path (:func:`repro.sampling.batch.profiles_from_samples`)
ends in a *reduction*: given the concatenated samples of ``T`` trials,
produce one ``{frequency: count}`` histogram per trial.  This module
holds the interchangeable implementations of that reduction and the
``REPRO_KERNEL`` knob that selects between them:

``legacy``
    The historical two-``np.unique`` reduction, kept verbatim: factorize,
    sort the ``(trial, code)`` pair keys, then sort the
    ``(trial, multiplicity)`` keys.  This is the reference every other
    kernel is verified against, bit for bit.

``numpy`` (the ``auto`` default)
    A cache-aware single-pass kernel: factorize once (integer columns
    with a modest value range skip the factorizing sort entirely and use
    their values as dense codes), then count ``(trial, code)`` pairs and
    the per-trial multiplicity histogram with two ``np.bincount`` calls
    over dense keys — no further sorts.  Dense keys whose range would
    explode memory fall back to the sort-based passes, so the kernel is
    never worse than ``legacy`` on adversarial inputs.

``numba``
    An optional compiled variant of the single-pass kernel.  It is used
    only when the ``numba`` package is importable; otherwise the request
    degrades to ``numpy`` (the mandatory pure-numpy fallback), and the
    obs manifest records both the requested and the realized kernel.

Every kernel returns dictionaries whose keys are inserted in ascending
``(trial, frequency)`` order — the insertion order
:class:`~repro.frequency.profile.FrequencyProfile` preserves and the
estimators' accumulation loops depend on — so the choice of kernel can
never change a downstream number.  All counting is integer-exact.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np
import numpy.typing as npt

from repro.errors import InvalidParameterError
from repro.obs.recorder import OBS

__all__ = [
    "KERNELS",
    "available_kernels",
    "kernel_info",
    "numba_available",
    "realized_kernel",
    "reduce_samples",
    "requested_kernel",
]

#: Environment knob selecting the reduction kernel.
ENV_KERNEL = "REPRO_KERNEL"

#: Recognized ``REPRO_KERNEL`` values.
KERNELS: tuple[str, ...] = ("auto", "legacy", "numpy", "numba")

#: Dense-key budget for the bincount passes: a key space larger than
#: ``max(_DENSE_KEY_FACTOR * occupied, _DENSE_KEY_FLOOR)`` falls back to
#: the sort-based pass so pathological ranges cannot blow up memory.
_DENSE_KEY_FACTOR = 8
_DENSE_KEY_FLOOR = 1 << 21

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit  # type: ignore[import-not-found]

    _NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the CI path
    _njit = None
    _NUMBA_AVAILABLE = False


def numba_available() -> bool:
    """True when the optional compiled kernel can actually be used."""
    return _NUMBA_AVAILABLE


def available_kernels() -> tuple[str, ...]:
    """The kernels that can be *realized* on this installation."""
    if _NUMBA_AVAILABLE:
        return ("legacy", "numpy", "numba")
    return ("legacy", "numpy")


def requested_kernel() -> str:  # reprolint: disable=R1001 - REPRO_KERNEL selects among bit-identical reductions; the choice is recorded in the obs manifest and cannot change a result value
    """The ``REPRO_KERNEL`` knob value (default ``auto``), validated."""
    raw = os.environ.get(ENV_KERNEL, "auto").strip().lower() or "auto"
    if raw not in KERNELS:
        raise InvalidParameterError(
            f"{ENV_KERNEL} must be one of {KERNELS}, got {raw!r}"
        )
    return raw


def realized_kernel(requested: str | None = None) -> str:  # reprolint: disable=R1001 - REPRO_KERNEL selects among bit-identical reductions; the choice is recorded in the obs manifest and cannot change a result value
    """Resolve a kernel request to the implementation that will run.

    ``auto`` resolves to the single-pass numpy kernel; ``numba``
    degrades to ``numpy`` when the package is missing (the mandatory
    pure-python-stack fallback of the ``profile_batch`` protocol).
    """
    choice = requested_kernel() if requested is None else requested
    if choice not in KERNELS:
        raise InvalidParameterError(
            f"kernel must be one of {KERNELS}, got {choice!r}"
        )
    if choice == "auto":
        return "numpy"
    if choice == "numba" and not _NUMBA_AVAILABLE:
        return "numpy"
    return choice


def kernel_info() -> dict[str, Any]:  # reprolint: disable=R1001 - manifest fingerprint by design, like repro/obs: records the knob, never enters a result
    """Requested/realized kernel snapshot for run manifests."""
    requested = requested_kernel()
    return {
        "requested": requested,
        "realized": realized_kernel(requested),
        "numba_available": _NUMBA_AVAILABLE,
    }


# ----------------------------------------------------------------------
# Shared factorization
# ----------------------------------------------------------------------
def _dense_cap(occupied: int) -> int:
    return max(_DENSE_KEY_FACTOR * occupied, _DENSE_KEY_FLOOR)


def _factorize(
    flat: npt.NDArray[Any], total: int
) -> tuple[npt.NDArray[np.int64], int]:
    """Map ``flat`` onto non-negative int64 codes, order-preserving.

    Integer columns whose value range fits the dense-key budget skip the
    ``np.unique`` sort and use offset values directly; the codes are
    then not contiguous, but they stay injective and order-preserving,
    which is all the pair-counting passes need (only the *grouping* of
    ``(trial, code)`` pairs and their sort order matter downstream).
    Everything else — floats (NaN semantics), strings, objects — takes
    the same ``np.unique`` call as the legacy kernel.
    """
    if flat.dtype.kind in ("i", "u"):
        low = int(flat.min())
        high = int(flat.max())
        span = high - low + 1
        if span <= _dense_cap(total):
            if OBS.enabled:
                OBS.add("kernel.factorize_dense")
            return (flat - low).astype(np.int64, copy=False), span
    if OBS.enabled:
        OBS.add("kernel.factorize_sort")
    _, codes = np.unique(flat, return_inverse=True)
    codes = codes.astype(np.int64, copy=False)
    n_codes = max(int(codes.max()) + 1, 1)
    return codes, n_codes


def _concat(
    arrays: list[npt.NDArray[Any]],
) -> tuple[npt.NDArray[Any], npt.NDArray[np.int64], int]:
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    flat = np.concatenate(arrays)
    trial_ids = np.repeat(np.arange(len(arrays), dtype=np.int64), lengths)
    return flat, trial_ids, int(lengths.sum())


def _build_histograms(
    trials: int,
    key_trials: list[int],
    key_freqs: list[int],
    key_counts: list[int],
) -> list[dict[int, int]]:
    """Assemble per-trial dicts in ascending ``(trial, frequency)`` order."""
    counts: list[dict[int, int]] = [{} for _ in range(trials)]
    for trial, frequency, count in zip(key_trials, key_freqs, key_counts):
        counts[trial][frequency] = count
    return counts


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _reduce_legacy(arrays: list[npt.NDArray[Any]]) -> list[dict[int, int]]:
    """The historical two-pass ``np.unique`` reduction, kept verbatim."""
    flat, trial_ids, _total = _concat(arrays)

    # Pass 1: multiplicity of every (trial, value) pair.  Values are
    # factorized to dense codes so the pair collapses into a single
    # int64 key regardless of the column's dtype.
    _, codes = np.unique(flat, return_inverse=True)
    # ``max(..., 1)`` states the >= 1 invariant (codes are dense and
    # non-negative) in a form the interval prover can discharge.
    n_codes = max(int(codes.max()) + 1, 1)
    pair_keys, multiplicities = np.unique(
        trial_ids * n_codes + codes.astype(np.int64), return_counts=True
    )
    pair_trials = pair_keys // n_codes

    # Pass 2: per trial, how many values occur with each multiplicity.
    stride = max(int(multiplicities.max()) + 1, 1)
    freq_keys, value_counts = np.unique(
        pair_trials * stride + multiplicities, return_counts=True
    )
    return _build_histograms(
        len(arrays),
        (freq_keys // stride).tolist(),
        (freq_keys % stride).tolist(),
        value_counts.tolist(),
    )


def _pair_counts_dense(
    keys: npt.NDArray[np.int64], key_space: int, occupied_bound: int
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Sorted ``(unique key, count)`` via bincount or, over budget, a sort.

    Both branches return the occupied keys in ascending order with exact
    integer counts, so they are interchangeable bit for bit.
    """
    if key_space <= _dense_cap(occupied_bound):
        if OBS.enabled:
            OBS.add("kernel.dense")
        dense = np.bincount(keys, minlength=key_space)
        occupied = np.nonzero(dense)[0].astype(np.int64, copy=False)
        return occupied, dense[occupied].astype(np.int64, copy=False)
    if OBS.enabled:
        OBS.add("kernel.sort_fallback")
    unique_keys, counts = np.unique(keys, return_counts=True)
    return (
        unique_keys.astype(np.int64, copy=False),
        counts.astype(np.int64, copy=False),
    )


def _reduce_numpy(arrays: list[npt.NDArray[Any]]) -> list[dict[int, int]]:
    """Single-pass kernel: factorize once, then two dense bincounts."""
    flat, trial_ids, total = _concat(arrays)
    codes, n_codes = _factorize(flat, total)
    # ``max(..., 1)`` restates the >= 1 invariant of ``_factorize`` in a
    # form the interval prover can discharge (cf. ``_reduce_legacy``).
    n_codes = max(n_codes, 1)

    pair_keys, multiplicities = _pair_counts_dense(
        trial_ids * n_codes + codes, len(arrays) * n_codes, total
    )
    pair_trials = pair_keys // n_codes

    stride = max(int(multiplicities.max()) + 1, 1)
    freq_keys, value_counts = _pair_counts_dense(
        pair_trials * stride + multiplicities,
        len(arrays) * stride,
        int(pair_keys.size),
    )
    return _build_histograms(
        len(arrays),
        (freq_keys // stride).tolist(),
        (freq_keys % stride).tolist(),
        value_counts.tolist(),
    )


if _NUMBA_AVAILABLE:  # pragma: no cover - requires the optional package

    @_njit(cache=True)
    def _numba_pair_counts(keys, key_space):  # type: ignore[no-untyped-def]
        dense = np.zeros(key_space, dtype=np.int64)
        for k in keys:
            dense[k] += 1
        occupied = 0
        for v in dense:
            if v > 0:
                occupied += 1
        out_keys = np.empty(occupied, dtype=np.int64)
        out_counts = np.empty(occupied, dtype=np.int64)
        j = 0
        for i in range(key_space):
            if dense[i] > 0:
                out_keys[j] = i
                out_counts[j] = dense[i]
                j += 1
        return out_keys, out_counts


def _reduce_numba(arrays: list[npt.NDArray[Any]]) -> list[dict[int, int]]:
    """Compiled single-pass kernel (counting loops instead of bincount).

    Falls back to the numpy kernel for over-budget key spaces and for
    non-integer codes — the compiled part only replaces the exact
    integer counting, so its results are identical by construction.
    """
    if not _NUMBA_AVAILABLE:  # pragma: no cover - guarded by realized_kernel
        return _reduce_numpy(arrays)
    flat, trial_ids, total = _concat(arrays)  # pragma: no cover
    codes, n_codes = _factorize(flat, total)  # pragma: no cover
    n_codes = max(n_codes, 1)  # pragma: no cover - prover invariant, see _reduce_numpy

    pair_space = len(arrays) * n_codes  # pragma: no cover
    if pair_space > _dense_cap(total):  # pragma: no cover
        return _reduce_numpy(arrays)
    pair_keys, multiplicities = _numba_pair_counts(  # pragma: no cover
        trial_ids * n_codes + codes, pair_space
    )
    pair_trials = pair_keys // n_codes  # pragma: no cover

    stride = max(int(multiplicities.max()) + 1, 1)  # pragma: no cover
    hist_space = len(arrays) * stride  # pragma: no cover
    if hist_space > _dense_cap(int(pair_keys.size)):  # pragma: no cover
        freq_keys, value_counts = _pair_counts_dense(
            pair_trials * stride + multiplicities, hist_space, 0
        )
    else:  # pragma: no cover
        freq_keys, value_counts = _numba_pair_counts(
            pair_trials * stride + multiplicities, hist_space
        )
    return _build_histograms(  # pragma: no cover
        len(arrays),
        (freq_keys // stride).tolist(),
        (freq_keys % stride).tolist(),
        value_counts.tolist(),
    )


_REDUCERS: dict[str, Callable[[list[npt.NDArray[Any]]], list[dict[int, int]]]] = {
    "legacy": _reduce_legacy,
    "numpy": _reduce_numpy,
    "numba": _reduce_numba,
}


def reduce_samples(
    arrays: list[npt.NDArray[Any]], kernel: str | None = None
) -> list[dict[int, int]]:
    """Reduce per-trial sample arrays to per-trial frequency histograms.

    ``kernel`` overrides the ``REPRO_KERNEL`` knob (tests use this to
    compare implementations); ``None`` reads the environment.  The
    arrays must be 1-D, non-empty in aggregate, and already validated —
    :func:`repro.sampling.batch.profiles_from_samples` is the public
    entry point.

    With telemetry on, each reduction updates the ``kernel.batch_trials``
    / ``kernel.batch_rows`` gauges (last batch shape), tallies the row
    count into the ``kernel.batch_rows`` histogram, and the kernels
    themselves count their branch selections (``kernel.dense`` vs
    ``kernel.sort_fallback``, ``kernel.factorize_dense`` vs
    ``kernel.factorize_sort``) — all visible in ``repro stats``.
    """
    if OBS.enabled:
        rows = sum(array.size for array in arrays)
        OBS.gauge("kernel.batch_trials", len(arrays))
        OBS.gauge("kernel.batch_rows", rows)
        OBS.observe("kernel.batch_rows", rows)
    return _REDUCERS[realized_kernel(kernel)](arrays)
