"""Row-sampling schemes (the paper's §2 sampling model).

:data:`DEFAULT_SAMPLER` is uniform sampling without replacement — the
scheme the paper's experiments use.
"""

from repro.sampling.base import RowSampler, as_column, resolve_sample_size
from repro.sampling.batch import profiles_from_samples
from repro.sampling.reservoir_state import ChunkedReservoir
from repro.sampling.schemes import (
    DEFAULT_SAMPLER,
    Bernoulli,
    Block,
    Reservoir,
    UniformWithReplacement,
    UniformWithoutReplacement,
)

__all__ = [
    "RowSampler",
    "ChunkedReservoir",
    "as_column",
    "profiles_from_samples",
    "resolve_sample_size",
    "DEFAULT_SAMPLER",
    "Bernoulli",
    "Block",
    "Reservoir",
    "UniformWithReplacement",
    "UniformWithoutReplacement",
]
