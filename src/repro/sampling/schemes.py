"""Concrete row-sampling schemes.

* :class:`UniformWithoutReplacement` — the paper's default scheme ("We
  used existing functionality in SQL Server for obtaining a random
  sample without replacement of a specified sample size", §6).
* :class:`UniformWithReplacement` — the scheme Theorem 2's analysis is
  written for.
* :class:`Bernoulli` — per-row coin flips at rate ``q`` (Shlosser's
  model); the realized sample size is random.
* :class:`Reservoir` — single-pass Algorithm R; distributionally
  identical to :class:`UniformWithoutReplacement` but exercises the
  streaming path a scan-based collector would use.
* :class:`Block` — page-level sampling: whole blocks of consecutive
  rows.  Cheap for a real system but *not* a uniform row sample;
  included for the sampling-design ablation, which shows how clustered
  layouts break the estimators' guarantees.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

from repro.contracts import requires
from repro.errors import InvalidParameterError
from repro.sampling.base import RowSampler

__all__ = [
    "UniformWithoutReplacement",
    "UniformWithReplacement",
    "Bernoulli",
    "Reservoir",
    "Block",
    "DEFAULT_SAMPLER",
]


class UniformWithoutReplacement(RowSampler):
    """Simple random sample of ``r`` distinct rows."""

    name = "srswor"
    without_replacement = True

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        indices = rng.choice(column.size, size=r, replace=False)
        return column[indices]


class UniformWithReplacement(RowSampler):
    """``r`` independent uniform row draws (rows may repeat)."""

    name = "srswr"
    without_replacement = False

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        indices = rng.integers(0, column.size, size=r)
        return column[indices]


class Bernoulli(RowSampler):
    """Independent per-row inclusion with probability ``r / n``.

    The *expected* sample size is ``r``; the realized size is
    ``Binomial(n, r/n)``.  At least one row is always returned so that
    downstream profiles are non-empty.
    """

    name = "bernoulli"
    without_replacement = True

    # RowSampler.sample validates both before dispatching to _draw.
    @requires("r >= 1", "column.size >= 1")
    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        rate = r / column.size
        mask = rng.random(column.size) < rate
        if not mask.any():
            mask[rng.integers(0, column.size)] = True
        return column[mask]


class Reservoir(RowSampler):
    """Single-pass reservoir sampling (Vitter's Algorithm R).

    Produces a uniform without-replacement sample while reading the
    column strictly once, as a table-scan statistics collector would.
    Implemented in vectorized form: row ``t`` (0-based) replaces a
    random reservoir slot with probability ``r / (t + 1)``.
    """

    name = "reservoir"
    without_replacement = True

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        n = column.size
        reservoir = column[:r].copy()
        if n == r:
            return reservoir
        tail = np.arange(r, n)
        # Candidate slot for each tail row; the row enters the reservoir
        # iff its candidate slot index falls below r.
        slots = rng.integers(0, tail + 1)
        hits = slots < r
        # Later rows must overwrite earlier ones, which the forward loop
        # guarantees; only accepted rows are visited.
        for t, slot in zip(tail[hits], slots[hits]):
            reservoir[slot] = column[t]
        return reservoir


class Block(RowSampler):
    """Page-level sampling: include whole blocks of consecutive rows.

    Parameters
    ----------
    block_size:
        Number of consecutive rows per block (a "page").  The sampler
        picks ``ceil(r / block_size)`` distinct blocks uniformly and
        returns their rows, truncated to ``r``.
    """

    name = "block"
    without_replacement = True

    def __init__(self, block_size: int = 100) -> None:
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        n = column.size
        n_blocks = -(-n // self.block_size)  # ceil division
        # Accumulate random blocks until the target is covered; the last
        # block of the table may be partial, so a fixed block count could
        # undershoot.
        order = rng.permutation(n_blocks)
        pieces = []
        collected = 0
        for block in order:
            piece = column[
                block * self.block_size : min((block + 1) * self.block_size, n)
            ]
            pieces.append(piece)
            collected += piece.size
            if collected >= r:
                break
        rows = np.concatenate(pieces)
        return rows[:r]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(block_size={self.block_size})"


#: The scheme used by the paper's experiments.
DEFAULT_SAMPLER = UniformWithoutReplacement()
