"""Concrete row-sampling schemes.

* :class:`UniformWithoutReplacement` — the paper's default scheme ("We
  used existing functionality in SQL Server for obtaining a random
  sample without replacement of a specified sample size", §6).
* :class:`UniformWithReplacement` — the scheme Theorem 2's analysis is
  written for.
* :class:`Bernoulli` — per-row coin flips at rate ``q`` (Shlosser's
  model); the realized sample size is random.
* :class:`Reservoir` — single-pass Algorithm R; distributionally
  identical to :class:`UniformWithoutReplacement` but exercises the
  streaming path a scan-based collector would use.
* :class:`Block` — page-level sampling: whole blocks of consecutive
  rows.  Cheap for a real system but *not* a uniform row sample;
  included for the sampling-design ablation, which shows how clustered
  layouts break the estimators' guarantees.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.contracts import requires
from repro.errors import InvalidParameterError
from repro.sampling.base import RowSampler

__all__ = [
    "UniformWithoutReplacement",
    "UniformWithReplacement",
    "Bernoulli",
    "Reservoir",
    "Block",
    "DEFAULT_SAMPLER",
]


class UniformWithoutReplacement(RowSampler):
    """Simple random sample of ``r`` distinct rows."""

    name = "srswor"
    without_replacement = True

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        indices = rng.choice(column.size, size=r, replace=False)
        return column[indices]

    def _draw_batch(
        self,
        column: npt.NDArray[Any],
        r: int,
        rng: np.random.Generator,
        trials: int,
    ) -> Sequence[npt.NDArray[Any]]:
        # The index draws stay per-trial: ``Generator.choice`` without
        # replacement is O(r) and stream-dependent, whereas a batched
        # Gumbel-key top-r would be O(n) per trial at the paper's rates
        # (r/n <= 6.4%) *and* consume a different stream.  The batch win
        # here is the shared profile reduction.
        return [self._draw(column, r, rng) for _ in range(trials)]


class UniformWithReplacement(RowSampler):
    """``r`` independent uniform row draws (rows may repeat)."""

    name = "srswr"
    without_replacement = False

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        indices = rng.integers(0, column.size, size=r)
        return column[indices]

    def _draw_batch(
        self,
        column: npt.NDArray[Any],
        r: int,
        rng: np.random.Generator,
        trials: int,
    ) -> Sequence[npt.NDArray[Any]]:
        # One (trials, r) draw fills the output buffer element by
        # element from the same bit stream as ``trials`` successive
        # size-r draws, so this is bit-identical to the serial loop.
        indices = rng.integers(0, column.size, size=(trials, r))
        return list(column[indices])


class Bernoulli(RowSampler):
    """Independent per-row inclusion with probability ``r / n``.

    The *expected* sample size is ``r``; the realized size is
    ``Binomial(n, r/n)``.  At least one row is always returned so that
    downstream profiles are non-empty.
    """

    name = "bernoulli"
    without_replacement = True

    # RowSampler.sample validates both before dispatching to _draw.
    @requires("r >= 1", "column.size >= 1")
    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        rate = r / column.size
        mask = rng.random(column.size) < rate
        if not mask.any():
            mask[rng.integers(0, column.size)] = True
        return column[mask]

    def _draw_batch(
        self,
        column: npt.NDArray[Any],
        r: int,
        rng: np.random.Generator,
        trials: int,
    ) -> Sequence[npt.NDArray[Any]]:
        # The coin flips are already one vectorized draw per trial; the
        # draws stay in a per-trial loop so the rare empty-mask fallback
        # consumes the stream at exactly the position the serial path
        # would.  The batch win is the shared profile reduction.
        return [self._draw(column, r, rng) for _ in range(trials)]


class Reservoir(RowSampler):
    """Single-pass reservoir sampling (Vitter's Algorithm R).

    Produces a uniform without-replacement sample while reading the
    column strictly once, as a table-scan statistics collector would.
    Implemented in vectorized form: row ``t`` (0-based) replaces a
    random reservoir slot with probability ``r / (t + 1)``.
    """

    name = "reservoir"
    without_replacement = True

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        n = column.size
        reservoir = column[:r].copy()
        if n == r:
            return reservoir
        tail = np.arange(r, n)
        # Candidate slot for each tail row; the row enters the reservoir
        # iff its candidate slot index falls below r.
        slots = rng.integers(0, tail + 1)
        hits = slots < r
        if hits.any():
            # Later rows must overwrite earlier ones (last write wins
            # per slot).  Reversing the accepted rows makes the *last*
            # writer of each slot its first occurrence, which is the one
            # ``np.unique(..., return_index=True)`` keeps.
            last_first_slots = slots[hits][::-1]
            winner_slots, winner_index = np.unique(
                last_first_slots, return_index=True
            )
            reservoir[winner_slots] = column[tail[hits][::-1][winner_index]]
        return reservoir

    def _draw_batch(
        self,
        column: npt.NDArray[Any],
        r: int,
        rng: np.random.Generator,
        trials: int,
    ) -> Sequence[npt.NDArray[Any]]:
        return [self._draw(column, r, rng) for _ in range(trials)]


class Block(RowSampler):
    """Page-level sampling: include whole blocks of consecutive rows.

    Parameters
    ----------
    block_size:
        Number of consecutive rows per block (a "page").  The sampler
        picks ``ceil(r / block_size)`` distinct blocks uniformly and
        returns their rows, truncated to ``r``.
    """

    name = "block"
    without_replacement = True

    def __init__(self, block_size: int = 100) -> None:
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)

    def _draw(
        self, column: npt.NDArray[Any], r: int, rng: np.random.Generator
    ) -> npt.NDArray[Any]:
        n = column.size
        n_blocks = -(-n // self.block_size)  # ceil division
        # Take random blocks until the target is covered; the last block
        # of the table may be partial, so a fixed block count could
        # undershoot.  The cumulative block sizes over the permuted
        # order locate the cutoff without iterating per block.
        order = rng.permutation(n_blocks)
        starts = order * self.block_size
        sizes = np.minimum(starts + self.block_size, n) - starts
        cumulative = np.cumsum(sizes)
        needed = int(np.searchsorted(cumulative, r)) + 1
        starts, sizes = starts[:needed], sizes[:needed]
        # Gather the selected blocks' rows in permuted-block order.
        offsets = np.repeat(starts, sizes)
        block_begins = np.repeat(cumulative[:needed] - sizes, sizes)
        rows = column[offsets + np.arange(offsets.size) - block_begins]
        return rows[:r]

    def _draw_batch(
        self,
        column: npt.NDArray[Any],
        r: int,
        rng: np.random.Generator,
        trials: int,
    ) -> Sequence[npt.NDArray[Any]]:
        return [self._draw(column, r, rng) for _ in range(trials)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(block_size={self.block_size})"


#: The scheme used by the paper's experiments.
DEFAULT_SAMPLER = UniformWithoutReplacement()
