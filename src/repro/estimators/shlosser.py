"""Shlosser's estimator and the Haas–Stokes modification.

Shlosser (1981) estimated "the size of the dictionary of a long text on
the basis of a sample" under Bernoulli sampling with rate ``q`` and the
skewness assumption ``E[f_1] / E[d] ~ f_1 / d``.  The resulting
estimator,

    ``D_hat = d + f_1 * sum_i (1-q)^i f_i / sum_i i q (1-q)^{i-1} f_i``,

is the high-skew branch of HYBSKEW (HNSS'95).  The PODS paper shows GEE
beats it on high-skew and real data, motivating HYBGEE.

Haas–Stokes (JASA 1998) derived a *modified* Shlosser estimator for
fixed-size sampling; it is the high-CV branch of their hybrid (our
HYBVAR).  The JASA formula is not restated in the PODS paper, so we
provide two reconstructions (DESIGN.md §3 records this substitution):

``mode="behavioral"`` (default)
    Reconstructed from the PODS paper's own diagnosis: the modified
    estimator "is unable to detect situations where data is duplicated,
    and therefore overestimates by a factor proportional to the number
    of copies of each distinct value" (Figure 9 discussion).  We model
    the blindness at its root.  A coverage-style estimator writes
    ``D = d + (number of unseen classes)`` and evaluates each class's
    probability of being missed from its size; the duplication-blind
    step is to take a class's *sample* count ``i`` at face value as its
    size (sound for a text dictionary, wrong for a ``c``-fold duplicated
    column whose classes are really ``i / q`` rows).  With the sample
    spectrum standing in for the population spectrum,

        ``P(class unseen) = sum_i f_i (1 - q)^i / d``,

    and solving ``D_hat = d + D_hat * P(unseen)`` gives

        ``D_hat = d^2 / (d - sum_i f_i (1 - q)^i)``.

    On singleton-heavy data this behaves like a reasonable high-skew
    estimator (it reduces to the exact ``d n / r`` scale-up when every
    sampled value is distinct), but when every class is fully seen (a
    duplicated column) the unseen-probability fails to vanish as fast
    as it should, and the estimate grows roughly linearly with ``n`` at
    a fixed sample size — exactly the reported pathology.

``mode="spectral"``
    The ``q^2`` form transcribed by later experimental surveys of
    distinct-value estimators:

        ``D_hat = d + f_1 * sum_i i q^2 (1-q^2)^{i-1} f_i
                      / sum_i (1-q)^i ((1+q)^i - 1) f_i``.

    This form is f1-gated and therefore does *not* exhibit the Figure 9
    pathology; it is retained for the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np
import numpy.typing as npt

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator, RawOutcome
from repro.errors import InvalidParameterError
from repro.frequency.batch import (
    FrequencyProfileBatch,
    exact_exp,
    gather_over_unique,
    segment_sums,
)
from repro.frequency.profile import FrequencyProfile

__all__ = ["Shlosser", "ModifiedShlosser", "shlosser_ratio"]


@ensures("result >= 0.0")
def shlosser_ratio(profile: FrequencyProfile, q: float) -> float:
    """Shlosser's correction ``sum (1-q)^i f_i / sum i q (1-q)^{i-1} f_i``.

    Each term is computed in log space so very frequent values (large
    ``i``) underflow to zero instead of overflowing.  Returns 0.0 when
    the denominator vanishes (exhaustive sampling, ``q = 1``).
    """
    if not 0.0 < q <= 1.0:
        raise InvalidParameterError(f"sampling fraction must be in (0, 1], got {q}")
    if q >= 1.0:
        return 0.0
    log_one_minus_q = math.log1p(-q)
    numerator = 0.0
    denominator = 0.0
    for i, count in profile.counts.items():
        # i >= 1 and log(1-q) <= 0, so the min-clamps are exact no-ops
        # that bound the exp arguments away from overflow (R1303).
        numerator += math.exp(min(0.0, i * log_one_minus_q)) * count
        denominator += (
            i * q * math.exp(min(0.0, (i - 1) * log_one_minus_q)) * count
        )
    if denominator <= 0.0:
        return 0.0
    return numerator / denominator


def _batched_sampling_fractions(
    batch: FrequencyProfileBatch, population_size: int
) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Per-profile ``(q, log1p(-q))`` with exact per-unique-r arithmetic.

    ``q = min(r/n, 1.0)`` exactly as the scalar estimators compute it;
    exhaustive profiles (``q >= 1``), whose log would be ``-inf``, carry
    a 0.0 placeholder — their kernels mask the result out before use.
    """
    r = batch.sample_size
    q_by_r = {
        int(rv): min(int(rv) / population_size, 1.0)
        for rv in np.unique(r).tolist()
    }
    log_by_r = {
        rv: math.log1p(-q) if q < 1.0 else 0.0 for rv, q in q_by_r.items()
    }
    return gather_over_unique(r, q_by_r), gather_over_unique(r, log_by_r)


def _batched_missed_mass_terms(
    batch: FrequencyProfileBatch, log_one_minus_q: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """CSR terms ``exp(min(0, i log(1-q))) f_i``, bitwise the scalar ones."""
    frequencies = batch.frequencies.astype(np.float64)
    counts = batch.counts.astype(np.float64)
    log_b = batch.broadcast(log_one_minus_q)
    return exact_exp(np.minimum(frequencies * log_b, 0.0)) * counts


class Shlosser(DistinctValueEstimator):
    """Shlosser's 1981 estimator, the high-skew branch of HYBSKEW."""

    name = "Shlosser"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.f1 >= 0",
    )
    @ensures("result >= profile.distinct")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        q = min(profile.sample_size / population_size, 1.0)
        return profile.distinct + profile.f1 * shlosser_ratio(profile, q)

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        q, log_one_minus_q = _batched_sampling_fractions(batch, population_size)
        numerator = segment_sums(
            _batched_missed_mass_terms(batch, log_one_minus_q), batch.indptr
        )
        frequencies = batch.frequencies.astype(np.float64)
        counts = batch.counts.astype(np.float64)
        denominator_terms = (
            frequencies
            * batch.broadcast(q)
            * exact_exp(
                np.minimum(
                    (frequencies - 1.0) * batch.broadcast(log_one_minus_q), 0.0
                )
            )
            * counts
        )
        denominator = segment_sums(denominator_terms, batch.indptr)
        defined = (q < 1.0) & (denominator > 0.0)
        ratio = np.where(
            defined, numerator / np.where(defined, denominator, 1.0), 0.0  # reprolint: disable=R101 - masked lanes divide by 1.0 and are discarded by the outer where
        )
        values = batch.distinct + batch.f1 * ratio
        return [float(value) for value in values.tolist()]


class ModifiedShlosser(DistinctValueEstimator):
    """Haas–Stokes' modified Shlosser estimator (HYBVAR's high-CV branch).

    See the module docstring for the two reconstruction modes and the
    rationale; ``mode="behavioral"`` reproduces the duplication
    pathology the PODS paper reports in Figures 9–10.
    """

    name = "ModShlosser"

    def __init__(self, mode: str = "behavioral") -> None:
        if mode not in ("behavioral", "spectral"):
            raise InvalidParameterError(
                f"mode must be 'behavioral' or 'spectral', got {mode!r}"
            )
        self.mode = mode
        if mode != "behavioral":
            self.name = f"ModShlosser({mode})"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        if self.mode == "behavioral":
            return self._estimate_behavioral(profile, population_size)
        return self._estimate_spectral(profile, population_size)

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[RawOutcome] | None:
        if self.mode != "behavioral":
            # The spectral reconstruction mixes expm1 branches per term;
            # it stays on the (rarely benchmarked) scalar path.
            return None
        q, log_one_minus_q = _batched_sampling_fractions(batch, population_size)
        missed = segment_sums(
            _batched_missed_mass_terms(batch, log_one_minus_q), batch.indptr
        )
        distinct = batch.distinct
        seen = distinct - missed
        positive = seen > 0.0
        unseen = missed / distinct  # reprolint: disable=R101 - d >= 1 whenever r >= 1, enforced by the batch requires
        values = np.where(
            positive,
            distinct * distinct / np.where(positive, seen, 1.0),  # reprolint: disable=R101 - masked lanes divide by 1.0 and are discarded by the outer where
            math.inf,
        )
        outcomes: list[RawOutcome] = []
        for k in range(len(batch)):
            if q[k] >= 1.0:
                outcomes.append(
                    (float(distinct[k]), {"unseen_probability": 0.0})
                )
            else:
                outcomes.append(
                    (float(values[k]), {"unseen_probability": float(unseen[k])})
                )
        return outcomes

    def _estimate_behavioral(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        r = profile.sample_size
        d = profile.distinct
        q = min(r / population_size, 1.0)
        if q >= 1.0:
            return float(d), {"unseen_probability": 0.0}
        log_one_minus_q = math.log1p(-q)
        missed_mass = 0.0
        for i, count in profile.counts.items():
            # exact clamp: i >= 1 and log(1-q) <= 0 (R1303).
            missed_mass += math.exp(min(0.0, i * log_one_minus_q)) * count
        unseen_probability = missed_mass / d
        seen_mass = d - missed_mass
        details = {"unseen_probability": unseen_probability}
        if seen_mass <= 0.0:
            return float("inf"), details
        return d * d / seen_mass, details

    def _estimate_spectral(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        r = profile.sample_size
        q = min(r / population_size, 1.0)
        if q >= 1.0:
            return float(profile.distinct), {"correction": 0.0}
        log_decay_sq = math.log((1.0 - q) * (1.0 + q))
        log_decay = math.log1p(-q)
        log_growth = math.log1p(q)
        numerator = 0.0
        denominator = 0.0
        for i, count in profile.counts.items():
            numerator += (
                i * q * q * math.exp(min(0.0, (i - 1) * log_decay_sq)) * count
            )
            # (1-q)^i ((1+q)^i - 1), with expm1 keeping small-q precision
            # for small i*log(1+q).  For larger arguments expm1 would
            # overflow (it raises past ~710 even when the full product is
            # tiny), so switch to the cancellation-free difference form
            # (1-q^2)^i - (1-q)^i, whose exp arguments are <= 0.
            growth = i * log_growth
            if growth > 1.0:
                term = math.exp(min(0.0, i * log_decay_sq)) - math.exp(
                    min(0.0, i * log_decay)
                )
            else:
                term = math.exp(min(0.0, i * log_decay)) * math.expm1(
                    min(1.0, growth)
                )
            denominator += term * count
        if denominator <= 0.0:
            return float(profile.distinct), {"correction": 0.0}
        correction = numerator / denominator
        return profile.distinct + profile.f1 * correction, {"correction": correction}
