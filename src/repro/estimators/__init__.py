"""Baseline distinct-values estimators from the prior literature.

These are the estimators the paper compares against (§1.1, §6): the
jackknife family and hybrids of Haas et al. (VLDB'95) and Haas–Stokes
(JASA'98), Shlosser's estimator, and the classical species-richness
estimators from statistics.
"""

from repro.estimators.classical import (
    Bootstrap,
    Chao,
    ChaoLee,
    Goodman,
    HorvitzThompson,
    NaiveScaleUp,
    SampleDistinct,
)
from repro.estimators.extrapolation import GoodTuring, good_toulmin_extrapolation
from repro.estimators.hybskew import HybridSkew
from repro.estimators.hybvar import HybridVariance
from repro.estimators.jackknife import (
    DUJ2A,
    FirstOrderJackknife,
    MethodOfMoments,
    SecondOrderJackknife,
    SmoothedJackknife,
    UnsmoothedSecondOrderJackknife,
    haas_stokes_cv_squared,
)
from repro.estimators.shlosser import ModifiedShlosser, Shlosser, shlosser_ratio

__all__ = [
    "Bootstrap",
    "Chao",
    "ChaoLee",
    "Goodman",
    "HorvitzThompson",
    "NaiveScaleUp",
    "SampleDistinct",
    "GoodTuring",
    "good_toulmin_extrapolation",
    "HybridSkew",
    "HybridVariance",
    "DUJ2A",
    "FirstOrderJackknife",
    "MethodOfMoments",
    "SecondOrderJackknife",
    "SmoothedJackknife",
    "UnsmoothedSecondOrderJackknife",
    "haas_stokes_cv_squared",
    "ModifiedShlosser",
    "Shlosser",
    "shlosser_ratio",
]
