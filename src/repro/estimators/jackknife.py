"""Jackknife-family baseline estimators.

The PODS 2000 paper compares against estimators defined in two earlier
works it cites but does not restate:

* Haas, Naughton, Seshadri, Stokes (VLDB 1995) — the *smoothed jackknife*
  used by HYBSKEW's low-skew branch;
* Haas, Stokes (JASA 1998) — the *generalized jackknife* family
  ``uj1 / uj2 / uj2a`` (DUJ2A) used by HYBVAR.

All of them share the generalized-jackknife form ``D_hat = d + K f_1``
with ``K`` derived from a fitted model — the same device the PODS paper
uses to derive AE (§5.2).  We re-derive each estimator from that common
principle; the derivations live in the class docstrings so the exact
assumptions are auditable.

Shared notation: ``n`` rows in the column, sample of ``r`` rows drawn
uniformly without replacement, sampling fraction ``q = r / n``, ``d``
distinct values in the sample, ``f_i`` values sampled exactly ``i`` times.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np
from scipy import optimize

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator, RawOutcome, clamp_estimate
from repro.errors import InvalidParameterError
from repro.frequency.batch import FrequencyProfileBatch, gather_over_unique
from repro.frequency.profile import FrequencyProfile

__all__ = [
    "FirstOrderJackknife",
    "SecondOrderJackknife",
    "SmoothedJackknife",
    "MethodOfMoments",
    "UnsmoothedSecondOrderJackknife",
    "DUJ2A",
    "haas_stokes_cv_squared",
]


class FirstOrderJackknife(DistinctValueEstimator):
    """Burnham–Overton first-order jackknife, ``d + ((r-1)/r) f_1``.

    The classic species-richness estimator: ``D_hat = d - (r-1)
    (d_bar_{r-1} - d)`` where ``d_bar_{r-1} = d - f_1/r`` is the mean
    distinct count over leave-one-out subsamples.  It ignores the
    population size entirely, so it underestimates badly at small
    sampling fractions — included as the historical baseline the
    database-specific estimators improve upon.
    """

    name = "JK1"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.f1 >= 0",
    )
    @ensures("result >= profile.distinct")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        r = profile.sample_size
        return profile.distinct + (r - 1) / r * profile.f1

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        r = batch.sample_size
        coefficient = gather_over_unique(
            r, {int(rv): (int(rv) - 1) / int(rv) for rv in np.unique(r).tolist()}  # reprolint: disable=R101 - rv ranges over sample sizes, >= 1 by the batch requires
        )
        values = batch.distinct + coefficient * batch.f1
        return [float(value) for value in values.tolist()]


class SecondOrderJackknife(DistinctValueEstimator):
    """Burnham–Overton second-order jackknife.

    ``D_hat = d + (2r - 3)/r * f_1 - (r - 2)^2 / (r (r - 1)) * f_2``.
    Falls back to the first-order form for samples of fewer than 2 rows.
    """

    name = "JK2"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        r = profile.sample_size
        d = profile.distinct
        if r < 2:
            return d + (r - 1) / r * profile.f1
        return (
            d
            + (2 * r - 3) / r * profile.f1
            - (r - 2) ** 2 / (r * (r - 1)) * profile.f2
        )

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        # All three coefficients use exact Python big-int division per
        # unique r (numpy's int64 / int64 rounds the operands first).
        r = batch.sample_size
        unique_r = np.unique(r).tolist()
        first = gather_over_unique(
            r, {int(rv): (int(rv) - 1) / int(rv) for rv in unique_r}
        )
        second = gather_over_unique(
            r, {int(rv): (2 * int(rv) - 3) / int(rv) for rv in unique_r}
        )
        third = gather_over_unique(
            r,
            {
                int(rv): (
                    (int(rv) - 2) ** 2 / (int(rv) * (int(rv) - 1))
                    if int(rv) >= 2
                    else 0.0
                )
                for rv in unique_r
            },
        )
        values = np.where(
            r < 2,
            batch.distinct + first * batch.f1,
            batch.distinct + second * batch.f1 - third * batch.f2,
        )
        return [float(value) for value in values.tolist()]


class SmoothedJackknife(DistinctValueEstimator):
    """The finite-population (smoothed) first-order jackknife of HNSS'95.

    Derivation from the generalized-jackknife principle: require
    ``E[D_hat] = D`` under the fitted *equal class size* model
    ``n_j = n / D`` for all ``j``.  Then (binomial approximation to the
    hypergeometric)

    * ``D - E[d] = D (1 - q)^{n_0}``,
    * ``E[f_1]  = D n_0 q (1 - q)^{n_0 - 1} = r (1 - q)^{n_0 - 1}``,

    with ``n_0 = n / D``, so the unbiased coefficient is
    ``K = (1 - q) / (q n_0) = (1 - q) D / r``.  Substituting
    ``D_hat = d + K f_1`` and solving the resulting linear fixed point
    yields the closed form

        ``D_hat = d / (1 - (1 - q) f_1 / r)``.

    The denominator is always at least ``q`` (since ``f_1 <= r``), so the
    estimate never exceeds ``d / q = d n / r`` — the natural scale-up cap.
    This estimator is (nearly) unbiased on low-skew data and severely
    *under*-estimates on high-skew data with many rare values, exactly
    the behaviour the PODS paper attributes to HYBSKEW's low-skew branch.
    This closed form is also Haas–Stokes' unsmoothed first-order
    jackknife ``uj1``; HYBVAR's uniform branch reuses this class.
    """

    name = "SJ"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= population_size",
        "profile.f1 >= 0",
        "profile.sample_size <= population_size",
    )
    @ensures("result >= profile.distinct")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        r = profile.sample_size
        q = r / population_size
        denominator = 1.0 - (1.0 - q) * profile.f1 / r
        if denominator <= 0.0:
            # f1 <= r forces denominator >= q > 0 algebraically; float
            # rounding can cross zero only at q ~ 0, where no finite
            # scale-up is defensible — saturate at the population size.
            return float(population_size)
        return profile.distinct / denominator

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        r = batch.sample_size
        q = gather_over_unique(
            r,
            {int(rv): int(rv) / population_size for rv in np.unique(r).tolist()},
        )
        denominator = 1.0 - (1.0 - q) * batch.f1 / r  # reprolint: disable=R101 - r is a sample-size vector, >= 1 by the batch requires
        positive = denominator > 0.0
        values = np.where(
            positive,
            batch.distinct / np.where(positive, denominator, 1.0),  # reprolint: disable=R101 - masked lanes divide by 1.0 and are discarded by the outer where
            float(population_size),
        )
        return [float(value) for value in values.tolist()]


class MethodOfMoments(DistinctValueEstimator):
    """HNSS'95 method-of-moments estimator for low-skew data.

    Solves for ``D`` in the first-moment equation under the equal-size
    model:

        ``d = D (1 - (1 - q)^{n / D})``.

    The right-hand side increases from ``~ d`` toward ``r`` as ``D``
    grows, so a unique root exists whenever ``d < r``; when ``d = r``
    (every sampled row distinct) the equation forces ``D -> n``.
    """

    name = "MM"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= population_size",
    )
    @ensures("result >= profile.distinct", "result <= population_size")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        d = profile.distinct
        r = profile.sample_size
        n = population_size
        if d >= r:
            return float(n)
        q = r / n
        log_one_minus_q = math.log1p(-q) if q < 1.0 else -math.inf

        def moment_gap(candidate: float) -> float:
            # n/candidate >= 0 and log(1-q) <= 0: the min-clamp is exact
            # and bounds the expm1 argument for the prover (R1303).
            expected = candidate * -math.expm1(min(0.0, n / candidate * log_one_minus_q))  # reprolint: disable=R101 - bracketing keeps candidate in [d, n], d >= 1
            return expected - d

        # E[d](D) is increasing in D; bracket between d (gap <= 0 there)
        # and n (gap >= 0 for any feasible d <= r).
        lo, hi = float(d), float(n)
        if moment_gap(hi) <= 0.0:
            return float(n)
        root = float(optimize.brentq(moment_gap, lo, hi, xtol=1e-9, rtol=1e-12))
        # brentq guarantees the root lies inside the [d, n] bracket;
        # restating it through clamp_estimate (an exact no-op here) makes
        # the bound clauses above machine-checkable.
        return clamp_estimate(root, d, n)


@requires("population_size >= 1")
@ensures("result >= 0.0")
def haas_stokes_cv_squared(
    profile: FrequencyProfile,
    population_size: int,
    distinct_estimate: float | None = None,
) -> float:
    """Finite-population estimate of the squared CV of class sizes.

    Derivation: for simple random sampling without replacement,
    ``E[sum_i i (i-1) f_i] = r (r-1) sum_j n_j (n_j - 1) / (n (n-1))``.
    Inverting for ``sum_j n_j^2`` and plugging into
    ``gamma^2 = (D / n^2) sum_j n_j^2 - 1`` gives

        ``gamma^2 = max(0, D_hat * [(n-1) M2 / (n r (r-1)) + 1/n] - 1)``

    with ``M2 = sum_i i (i-1) f_i`` and ``D_hat`` a plug-in estimate
    (default: the smoothed/unsmoothed first-order jackknife, as in
    Haas–Stokes).
    """
    r = profile.sample_size
    n = population_size
    if r < 2:
        return 0.0
    if distinct_estimate is None:
        distinct_estimate = SmoothedJackknife().estimate(profile, n).value
    if distinct_estimate < 0:
        raise InvalidParameterError(
            f"distinct_estimate must be non-negative, got {distinct_estimate}"
        )
    m2 = profile.factorial_moment(2)
    gamma_sq = distinct_estimate * ((n - 1) * m2 / (n * r * (r - 1)) + 1.0 / n) - 1.0
    return max(0.0, gamma_sq)


def _batched_jackknife_plugins(
    batch: FrequencyProfileBatch, population_size: int
) -> dict[int, float]:
    """Smoothed-jackknife plug-in values for every profile with ``r >= 2``.

    :func:`haas_stokes_cv_squared` only consults the plug-in for samples
    of at least two rows (below that the CV is defined as 0), so smaller
    profiles are omitted — keeping the inner estimator's call count, and
    with it the telemetry, identical to the scalar path.
    """
    need = [k for k, p in enumerate(batch.profiles) if p.sample_size >= 2]
    if not need:
        return {}
    inner = SmoothedJackknife().estimate_batch(batch.subset(need), population_size)
    return {k: estimate.value for k, estimate in zip(need, inner)}


class UnsmoothedSecondOrderJackknife(DistinctValueEstimator):
    """Haas–Stokes second-order generalized jackknife (``uj2``).

    Extends the first-order form with a skew correction driven by the
    estimated squared CV of class sizes:

        ``D_hat = [d - f_1 (1-q) ln(1-q) gamma^2 / q]
                  / (1 - (1-q) f_1 / r)``.

    Since ``ln(1 - q) < 0`` the correction *raises* the estimate in
    proportion to the skew, counteracting the first-order form's
    high-skew underestimation.  The CV is estimated by
    :func:`haas_stokes_cv_squared` with the first-order estimate as
    plug-in.
    """

    name = "UJ2"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        r = profile.sample_size
        n = population_size
        q = r / n
        d = profile.distinct
        f1 = profile.f1
        gamma_sq = haas_stokes_cv_squared(profile, n)
        if q >= 1.0:
            return float(d), {"cv_squared": gamma_sq}
        skew_correction = f1 * (1.0 - q) * math.log1p(-q) * gamma_sq / q
        denominator = 1.0 - (1.0 - q) * f1 / r
        if denominator <= 0.0:
            # Same algebraic floor as SmoothedJackknife: denominator >= q,
            # so this is reachable only through rounding — saturate at n.
            return float(n), {"cv_squared": gamma_sq}
        return (d - skew_correction) / denominator, {"cv_squared": gamma_sq}

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[RawOutcome]:
        # The closed form stays per-profile Python (its CV plug-in mixes
        # exact big-int moments with floats), but the inner smoothed
        # jackknife — the expensive part — is evaluated once for the
        # whole batch through its own vector kernel.
        plugin = _batched_jackknife_plugins(batch, population_size)
        outcomes: list[RawOutcome] = []
        for k, profile in enumerate(batch.profiles):
            outcomes.append(
                self._estimate_raw_with_plugin(
                    profile, population_size, plugin.get(k)
                )
            )
        return outcomes

    def _estimate_raw_with_plugin(
        self,
        profile: FrequencyProfile,
        population_size: int,
        distinct_estimate: float | None,
    ) -> RawOutcome:
        """The scalar body with the CV plug-in supplied by the caller."""
        r = profile.sample_size
        n = population_size
        q = r / n
        d = profile.distinct
        f1 = profile.f1
        gamma_sq = haas_stokes_cv_squared(
            profile, n, distinct_estimate=distinct_estimate
        )
        if q >= 1.0:
            return float(d), {"cv_squared": gamma_sq}
        skew_correction = f1 * (1.0 - q) * math.log1p(-q) * gamma_sq / q
        denominator = 1.0 - (1.0 - q) * f1 / r
        if denominator <= 0.0:
            return float(n), {"cv_squared": gamma_sq}
        return (d - skew_correction) / denominator, {"cv_squared": gamma_sq}


class DUJ2A(DistinctValueEstimator):
    """Haas–Stokes ``uj2a``: the stabilized second-order jackknife.

    ``uj2``'s CV correction is derived from a Taylor expansion that is
    accurate for rare values but badly extrapolated by very frequent
    ones.  ``uj2a`` therefore removes every class with more than
    ``cutoff`` occurrences *in the sample*, applies ``uj2`` to the
    remainder (with the row counts ``n`` and ``r`` reduced accordingly —
    the removed classes are assumed to occupy ``i / q`` population rows
    each), and finally adds the removed classes back:

        ``D_hat = |removed| + uj2(truncated profile; n', r')``

    with ``r' = r - sum_{i>c} i f_i`` and ``n' = n - (r - r') / q``
    (note ``r'/n' = q`` is preserved).  This is the estimator the PODS
    paper benchmarks as DUJ2A.

    Parameters
    ----------
    cutoff:
        Largest sample frequency retained in the jackknife part.
        Haas–Stokes recommend a moderate constant; 50 is our default.
    """

    name = "DUJ2A"

    def __init__(self, cutoff: int = 50) -> None:
        if cutoff < 1:
            raise InvalidParameterError(f"cutoff must be >= 1, got {cutoff}")
        self.cutoff = int(cutoff)

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        r = profile.sample_size
        n = population_size
        q = r / n
        truncated = profile.truncate(self.cutoff)
        removed_distinct = profile.distinct - truncated.distinct
        removed_rows = r - truncated.sample_size
        details: dict[str, object] = {
            "removed_distinct": removed_distinct,
            "removed_sample_rows": removed_rows,
        }
        if truncated.sample_size == 0:
            # Every class was frequent; nothing left to extrapolate from.
            return float(removed_distinct or profile.distinct), details
        reduced_n = n - removed_rows / q
        reduced_n = max(reduced_n, float(truncated.sample_size))
        inner = UnsmoothedSecondOrderJackknife().estimate(
            truncated, int(round(reduced_n))
        )
        details["uj2_on_truncated"] = inner.value
        return removed_distinct + inner.value, details
