"""Classical species-richness estimators from the statistics literature.

The paper's related-work section (§1.1) points to the species-estimation
literature surveyed by Bunge and Fitzpatrick; earlier database work
applied these estimators "with relatively poor results".  We include the
standard representatives both as historical baselines and because the
hybrid estimators borrow their building blocks (sample coverage, CV).

Notation as usual: ``n`` rows, sample of ``r`` rows, ``q = r/n``, ``d``
distinct in the sample, ``f_i`` values sampled exactly ``i`` times.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator
from repro.errors import InvalidParameterError
from repro.frequency.batch import FrequencyProfileBatch
from repro.frequency.profile import FrequencyProfile
from repro.frequency.statistics import coverage_estimate_distinct, cv_squared

__all__ = [
    "Chao",
    "ChaoLee",
    "Goodman",
    "Bootstrap",
    "HorvitzThompson",
    "NaiveScaleUp",
    "SampleDistinct",
]

#: ~ log(1e280): Goodman's alternating sum is abandoned (returning inf)
#: once a term's log-magnitude passes this.
_LOG_TERM_LIMIT = 280.0 * math.log(10.0)


class Chao(DistinctValueEstimator):
    """Chao's 1984 lower-bound estimator, ``d + f_1^2 / (2 f_2)``.

    When the sample has no doubletons the bias-corrected variant
    ``d + f_1 (f_1 - 1) / 2`` is used.  Chao's estimate targets a lower
    bound on ``D``, so it underestimates heavily at small sampling
    fractions.
    """

    name = "Chao84"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.f1 >= 0",
    )
    @ensures("result >= profile.distinct")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        d = profile.distinct
        f1 = profile.f1
        f2 = profile.f2
        if f2 > 0:
            return d + f1 * f1 / (2.0 * f2)
        # max(f1 - 1, 0) == f1 - 1 whenever the product is nonzero, so
        # this equals the classic f1 (f1 - 1) / 2 correction while making
        # the lower-bound clause above machine-checkable.
        return d + f1 * max(f1 - 1, 0) / 2.0

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        # f1*f1 and f1*(f1-1) stay integer-exact in int64; the divisions
        # are the same elementwise IEEE operations the scalar path does.
        d, f1, f2 = batch.distinct, batch.f1, batch.f2
        values = np.where(
            f2 > 0,
            d + f1 * f1 / (2.0 * np.maximum(f2, 1)),
            d + f1 * np.maximum(f1 - 1, 0) / 2.0,
        )
        return [float(value) for value in values.tolist()]


class ChaoLee(DistinctValueEstimator):
    """Chao and Lee's 1992 coverage-based estimator.

    ``D_hat = d / C_hat + r (1 - C_hat) / C_hat * gamma^2`` where
    ``C_hat = 1 - f_1 / r`` is the Good–Turing coverage and ``gamma^2``
    the estimated squared CV of class sizes.  Known to blow up on
    low-coverage samples (``C_hat -> 0``); the sanity bounds absorb
    those cases.
    """

    name = "ChaoLee"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
    )
    @ensures("result[0] >= profile.distinct")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        r = profile.sample_size
        coverage = profile.sample_coverage()
        if coverage <= 0.0:
            return float("inf"), {"coverage": coverage, "cv_squared": 0.0}
        base = coverage_estimate_distinct(profile)
        gamma_sq = cv_squared(profile, distinct_estimate=base)
        estimate = base + r * (1.0 - coverage) / coverage * gamma_sq
        return estimate, {"coverage": coverage, "cv_squared": gamma_sq}


class Goodman(DistinctValueEstimator):
    """Goodman's 1949 unique unbiased estimator (sampling without replacement).

    ``D_hat = d + sum_{i=1}^{r} (-1)^{i+1} [(n - r + i)! (r - i)!] /
    [(n - r)! r!] * f_i``.

    This is the *only* unbiased estimator of ``D`` for simple random
    sampling without replacement, but its variance is astronomically
    large unless ``r`` is close to ``n`` — the alternating factorial
    coefficients explode.  Olken's observation that "all known
    estimators give exceedingly large errors on at least some input
    data" is vividly demonstrated by this one; we include it as the
    canonical cautionary baseline.  Coefficients are computed with
    ``lgamma`` and the sum is abandoned (returning ``inf``) once terms
    overflow ~1e280, at which point the estimate is meaningless anyway
    and the sanity bound pins it to ``n``.
    """

    name = "Goodman"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        n = population_size
        r = profile.sample_size
        if r >= n:
            return float(profile.distinct)
        log_base = math.lgamma(n - r + 1) + math.lgamma(r + 1)
        total = float(profile.distinct)
        for i, count in profile.counts.items():
            if i > r:
                continue
            log_coeff = (
                math.lgamma(n - r + i + 1) + math.lgamma(r - i + 1) - log_base
            )
            # Abandon once terms pass ~1e280.  A module-level constant
            # (not a class attribute) so the guard also bounds the exp
            # argument for the interval prover (R1303).
            if log_coeff > _LOG_TERM_LIMIT:
                return float("inf")
            sign = 1.0 if i % 2 == 1 else -1.0
            total += sign * math.exp(log_coeff) * count
        return total


class Bootstrap(DistinctValueEstimator):
    """Smith and van Belle's 1984 bootstrap estimator.

    ``D_hat = d + sum_j (1 - c_j / r)^r = d + sum_i f_i (1 - i/r)^r``
    where ``c_j`` is the sample count of class ``j``.  Like the
    first-order jackknife it ignores ``n`` and underestimates at small
    sampling fractions.
    """

    name = "Bootstrap"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        r = profile.sample_size
        total = float(profile.distinct)
        for i, count in profile.counts.items():
            if i >= r:
                continue
            total += count * (1.0 - i / r) ** r
        return total


class HorvitzThompson(DistinctValueEstimator):
    """Horvitz–Thompson estimator with plug-in class sizes.

    Each observed class is weighted by the inverse of its estimated
    inclusion probability.  A class sampled ``i`` times is assumed to
    occupy ``i / q`` population rows, giving inclusion probability
    ``1 - (1 - q)^{i/q} ~ 1 - e^{-i}``:

    ``D_hat = sum_i f_i / (1 - (1 - q)^{i/q})``.

    Consistent for frequent classes but blind to wholly-unseen ones, so
    it underestimates when many classes are rare.
    """

    name = "HT"

    @requires("profile.sample_size >= 1", "population_size >= 1")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        r = profile.sample_size
        q = min(r / population_size, 1.0)
        if q >= 1.0:
            return float(profile.distinct)
        log_one_minus_q = math.log1p(-q)
        total = 0.0
        for i, count in profile.counts.items():
            # inclusion = 1 - (1-q)^{i/q} lies in (0, 1] for 0 < q < 1;
            # the branch only guards expm1 rounding to exactly zero.
            # i/q >= 0 and log(1-q) <= 0, so the min-clamp is exact and
            # bounds the expm1 argument for the prover (R1303).
            inclusion = -math.expm1(min(0.0, i / q * log_one_minus_q))
            if inclusion > 0.0:
                total += count / inclusion
        return total


class NaiveScaleUp(DistinctValueEstimator):
    """The naive linear scale-up ``D_hat = d * n / r``.

    Correct when every value is distinct; wildly wrong when values
    repeat.  The canonical strawman.
    """

    name = "Scale"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= profile.sample_size",
        "profile.sample_size <= population_size",
    )
    @ensures("result >= profile.distinct", "result <= population_size")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        return profile.distinct * population_size / profile.sample_size

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        # Python big-int multiply/divide per profile: d * n can exceed
        # 2**53, where int64 arithmetic would round before dividing.
        return [
            d * population_size / r  # reprolint: disable=R101 - r is a sample size, >= 1 by the batch requires
            for d, r in zip(
                batch.distinct.tolist(), batch.sample_size.tolist()
            )
        ]


class SampleDistinct(DistinctValueEstimator):
    """The trivial lower bound ``D_hat = d`` (GEE's LOWER)."""

    name = "d"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= population_size",
    )
    @ensures("result >= profile.distinct", "result <= population_size")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        return float(profile.distinct)

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[float]:
        return [float(d) for d in batch.distinct.tolist()]
