"""HYBVAR — the Haas–Stokes (JASA 1998) hybrid estimator.

The PODS paper describes HYBVAR as choosing "between one of three
estimators (one of them being a modified Shlosser estimator) based on an
estimate of a certain coefficient of variation of class sizes" (§1.1).
We implement exactly that structure:

* ``gamma^2 = 0``            -> the first-order jackknife (uniform data);
* ``0 < gamma^2 <= cv_high`` -> DUJ2A (moderate skew);
* ``gamma^2 > cv_high``      -> the modified Shlosser estimator.

The CV is estimated with :func:`repro.estimators.jackknife.haas_stokes_cv_squared`
(finite-population moment estimator with a first-order-jackknife
plug-in).  ``cv_high`` is a calibrated constant, not a JASA transcription
(DESIGN.md §3): its default reproduces the switching behaviour the PODS
paper reports in Figure 10 (DUJ2A below ~400K rows, modified Shlosser
above) while keeping the uniform branch on Z=0 data.

The estimator's two documented pathologies — error growing linearly with
the table size under bounded-domain duplication (Figure 9) and an abrupt
error jump when the CV estimate crosses the threshold (Figure 10) — both
emerge from this construction.
"""

from __future__ import annotations

from typing import Mapping

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator, RawOutcome
from repro.errors import InvalidParameterError
from repro.estimators.jackknife import (
    DUJ2A,
    SmoothedJackknife,
    _batched_jackknife_plugins,
    haas_stokes_cv_squared,
)
from repro.estimators.shlosser import ModifiedShlosser
from repro.frequency.batch import FrequencyProfileBatch
from repro.frequency.profile import FrequencyProfile

__all__ = ["HybridVariance"]

#: Calibrated CV^2 threshold separating the DUJ2A branch from the
#: modified-Shlosser branch; see the module docstring.  Calibration
#: targets: the Figure 9 workload measures gamma^2 ~ 13.4 at every n and
#: must take the modified-Shlosser branch (its error then grows with n,
#: the reported pathology), while the Figure 10 sweep measures ~11 at
#: n=100K rising to ~40 at n=1M and must switch branches mid-sweep.
DEFAULT_CV_HIGH = 12.5

#: CV^2 values below this are treated as "zero" (uniform data); the
#: moment estimator rarely returns an exact 0 on finite samples.
DEFAULT_CV_ZERO = 1e-3


class HybridVariance(DistinctValueEstimator):
    """CV-gated three-way hybrid (uj1 / DUJ2A / modified Shlosser)."""

    name = "HYBVAR"

    def __init__(
        self,
        cv_zero: float = DEFAULT_CV_ZERO,
        cv_high: float = DEFAULT_CV_HIGH,
        uniform_estimator: DistinctValueEstimator | None = None,
        moderate_estimator: DistinctValueEstimator | None = None,
        skewed_estimator: DistinctValueEstimator | None = None,
    ) -> None:
        if cv_zero < 0 or cv_high <= cv_zero:
            raise InvalidParameterError(
                f"thresholds must satisfy 0 <= cv_zero < cv_high, "
                f"got cv_zero={cv_zero}, cv_high={cv_high}"
            )
        self.cv_zero = float(cv_zero)
        self.cv_high = float(cv_high)
        self.uniform_estimator = uniform_estimator or SmoothedJackknife()
        self.moderate_estimator = moderate_estimator or DUJ2A()
        self.skewed_estimator = skewed_estimator or ModifiedShlosser()

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= population_size",
    )
    @ensures("result[0] >= profile.distinct", "result[0] <= population_size")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        gamma_sq = haas_stokes_cv_squared(profile, population_size)
        if gamma_sq <= self.cv_zero:
            branch = self.uniform_estimator
        elif gamma_sq <= self.cv_high:
            branch = self.moderate_estimator
        else:
            branch = self.skewed_estimator
        inner = branch.estimate(profile, population_size)
        details = {"branch": branch.name, "cv_squared": gamma_sq}
        return inner.value, details

    def _branch_for(self, gamma_sq: float) -> DistinctValueEstimator:
        if gamma_sq <= self.cv_zero:
            return self.uniform_estimator
        if gamma_sq <= self.cv_high:
            return self.moderate_estimator
        return self.skewed_estimator

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[RawOutcome]:
        # One batched smoothed-jackknife pass supplies the CV plug-ins;
        # the CV itself stays per-profile Python (exact big-int moment
        # fractions).  Each selected branch then evaluates once over the
        # profiles it won via its own estimate_batch.
        plugin = _batched_jackknife_plugins(batch, population_size)
        gammas = [
            haas_stokes_cv_squared(
                profile, population_size, distinct_estimate=plugin.get(k)
            )
            for k, profile in enumerate(batch.profiles)
        ]
        branches = [self._branch_for(gamma_sq) for gamma_sq in gammas]
        values: list[float] = [0.0] * len(batch)
        # dict.fromkeys dedupes aliased branch objects by identity so an
        # injected shared estimator is still evaluated exactly once.
        for branch in dict.fromkeys(
            (
                self.uniform_estimator,
                self.moderate_estimator,
                self.skewed_estimator,
            )
        ):
            indices = [
                k for k in range(len(batch)) if branches[k] is branch
            ]
            if indices:
                inner = branch.estimate_batch(
                    batch.subset(indices), population_size
                )
                for k, estimate in zip(indices, inner):
                    values[k] = estimate.value
        return [
            (
                values[k],
                {"branch": branches[k].name, "cv_squared": gammas[k]},
            )
            for k in range(len(batch))
        ]
