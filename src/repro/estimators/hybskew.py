"""HYBSKEW — the hybrid estimator of Haas, Naughton, Seshadri, Stokes (VLDB'95).

HYBSKEW "first uses the standard chi-squared test on the random sample to
probabilistically estimate whether the data has high skew or low skew,
resorting to Shlosser's estimator in the former case and the smoothed
jackknife estimator in the latter case" (paper §5).

The PODS paper's critique of this construction (motivating both HYBGEE
and AE, §5.2): the two branch estimators usually produce very different
values, so samples near the test's decision boundary flip between them,
yielding high variance and non-monotone error as the sampling fraction
grows.  Our experiments reproduce exactly that behaviour.
"""

from __future__ import annotations

from typing import Mapping

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator
from repro.errors import InvalidParameterError
from repro.estimators.jackknife import SmoothedJackknife
from repro.estimators.shlosser import Shlosser
from repro.frequency.profile import FrequencyProfile
from repro.frequency.skew import chi_squared_skew_test

__all__ = ["HybridSkew"]


class HybridSkew(DistinctValueEstimator):
    """Chi-squared-gated hybrid of the smoothed jackknife and Shlosser.

    Parameters
    ----------
    alpha:
        Significance level of the chi-squared uniformity test; the
        sample is declared high-skew (Shlosser branch) when the test
        rejects at this level.
    low_skew_estimator, high_skew_estimator:
        Branch estimators; injectable so HYBGEE can reuse this gating
        logic with GEE on the high-skew branch, and so the ablation
        benchmarks can swap branches.
    """

    name = "HYBSKEW"

    def __init__(
        self,
        alpha: float = 0.05,
        low_skew_estimator: DistinctValueEstimator | None = None,
        high_skew_estimator: DistinctValueEstimator | None = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise InvalidParameterError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self.low_skew_estimator = low_skew_estimator or SmoothedJackknife()
        self.high_skew_estimator = high_skew_estimator or Shlosser()

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= population_size",
    )
    @ensures("result[0] >= profile.distinct", "result[0] <= population_size")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        test = chi_squared_skew_test(profile, alpha=self.alpha)
        branch = self.high_skew_estimator if test.high_skew else self.low_skew_estimator
        inner = branch.estimate(profile, population_size)
        details = {
            "branch": branch.name,
            "high_skew": test.high_skew,
            "chi2_statistic": test.statistic,
            "chi2_critical": test.critical_value,
        }
        return inner.value, details
