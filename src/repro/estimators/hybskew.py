"""HYBSKEW — the hybrid estimator of Haas, Naughton, Seshadri, Stokes (VLDB'95).

HYBSKEW "first uses the standard chi-squared test on the random sample to
probabilistically estimate whether the data has high skew or low skew,
resorting to Shlosser's estimator in the former case and the smoothed
jackknife estimator in the latter case" (paper §5).

The PODS paper's critique of this construction (motivating both HYBGEE
and AE, §5.2): the two branch estimators usually produce very different
values, so samples near the test's decision boundary flip between them,
yielding high variance and non-monotone error as the sampling fraction
grows.  Our experiments reproduce exactly that behaviour.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import numpy.typing as npt
from scipy import stats

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator, RawOutcome
from repro.errors import InvalidParameterError
from repro.estimators.jackknife import SmoothedJackknife
from repro.estimators.shlosser import Shlosser
from repro.frequency.batch import FrequencyProfileBatch, segment_sums_int
from repro.frequency.profile import FrequencyProfile
from repro.frequency.skew import chi_squared_skew_test

__all__ = ["HybridSkew"]


def _batched_skew_gate(
    batch: FrequencyProfileBatch, alpha: float
) -> tuple[
    npt.NDArray[np.float64], npt.NDArray[np.float64], npt.NDArray[np.bool_]
]:
    """``(statistic, critical, high_skew)`` of the chi-squared gate per profile.

    The statistic ``(sum_i i^2 f_i)/(r/d) - r`` is integer-exact up to
    the final two float operations, and scipy's ``chi2.ppf`` is bitwise
    identical between scalar and array evaluation (evaluated once per
    unique dof here).  ``p_value`` is deliberately not computed: the
    hybrids never read it, and ``chi2.sf`` costs as much as the gate.
    """
    distinct = batch.distinct
    r = batch.sample_size
    sum_squares = segment_sums_int(
        batch.frequencies * batch.frequencies * batch.counts, batch.indptr
    )
    degenerate = distinct <= 1
    # d >= 1 for every validated profile, so r/d is always defined.
    expected = r.astype(np.float64) / distinct
    statistic = np.where(degenerate, 0.0, sum_squares / expected - r)  # reprolint: disable=R101 - expected = r/d with r >= 1, d >= 1 post-validation
    dof = np.maximum(distinct - 1, 0)
    critical = np.full(len(batch), np.inf)
    tested = ~degenerate
    if bool(tested.any()):
        unique_dof, inverse = np.unique(dof[tested], return_inverse=True)
        critical[tested] = np.asarray(
            stats.chi2.ppf(1.0 - alpha, unique_dof), dtype=np.float64
        )[inverse]
    return statistic, critical, statistic > critical


class HybridSkew(DistinctValueEstimator):
    """Chi-squared-gated hybrid of the smoothed jackknife and Shlosser.

    Parameters
    ----------
    alpha:
        Significance level of the chi-squared uniformity test; the
        sample is declared high-skew (Shlosser branch) when the test
        rejects at this level.
    low_skew_estimator, high_skew_estimator:
        Branch estimators; injectable so HYBGEE can reuse this gating
        logic with GEE on the high-skew branch, and so the ablation
        benchmarks can swap branches.
    """

    name = "HYBSKEW"

    def __init__(
        self,
        alpha: float = 0.05,
        low_skew_estimator: DistinctValueEstimator | None = None,
        high_skew_estimator: DistinctValueEstimator | None = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise InvalidParameterError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = float(alpha)
        self.low_skew_estimator = low_skew_estimator or SmoothedJackknife()
        self.high_skew_estimator = high_skew_estimator or Shlosser()

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
        "profile.distinct <= population_size",
    )
    @ensures("result[0] >= profile.distinct", "result[0] <= population_size")
    def _estimate_raw(
        self, profile: FrequencyProfile, population_size: int
    ) -> tuple[float, Mapping[str, object]]:
        test = chi_squared_skew_test(profile, alpha=self.alpha)
        branch = self.high_skew_estimator if test.high_skew else self.low_skew_estimator
        inner = branch.estimate(profile, population_size)
        details = {
            "branch": branch.name,
            "high_skew": test.high_skew,
            "chi2_statistic": test.statistic,
            "chi2_critical": test.critical_value,
        }
        return inner.value, details

    def _estimate_raw_batch(
        self, batch: FrequencyProfileBatch, population_size: int
    ) -> list[RawOutcome]:
        # Gate every profile with one vectorized chi-squared pass, then
        # evaluate each branch once over the profiles it won — the branch
        # estimators' own estimate_batch keeps their values (and nested
        # contracts/telemetry) identical to per-profile calls.
        statistic, critical, high_skew = _batched_skew_gate(batch, self.alpha)
        values: list[float] = [0.0] * len(batch)
        for branch, indices in (
            (
                self.high_skew_estimator,
                [k for k in range(len(batch)) if high_skew[k]],
            ),
            (
                self.low_skew_estimator,
                [k for k in range(len(batch)) if not high_skew[k]],
            ),
        ):
            if indices:
                inner = branch.estimate_batch(
                    batch.subset(indices), population_size
                )
                for k, estimate in zip(indices, inner):
                    values[k] = estimate.value
        outcomes: list[RawOutcome] = []
        for k in range(len(batch)):
            branch = (
                self.high_skew_estimator
                if high_skew[k]
                else self.low_skew_estimator
            )
            outcomes.append(
                (
                    values[k],
                    {
                        "branch": branch.name,
                        "high_skew": bool(high_skew[k]),
                        "chi2_statistic": float(statistic[k]),
                        "chi2_critical": float(critical[k]),
                    },
                )
            )
        return outcomes
