"""Good–Turing coverage estimation and Good–Toulmin extrapolation.

Two classical tools from the species literature (§1.1's statistics
lineage) that complement the paper's estimators:

* :class:`GoodTuring` — the coverage-adjusted estimate ``D_hat = d /
  C_hat`` with ``C_hat = 1 - f_1 / r``.  This is Chao–Lee with the
  skew term dropped, historically attributed to Good's coverage
  argument; it anchors the hybrid estimators' machinery.
* :func:`good_toulmin_extrapolation` — Good and Toulmin's 1956
  alternating-series prediction of how many *new* distinct values a
  further ``t * r`` rows would reveal:

      ``U(t) = - sum_{i >= 1} (-t)^i f_i``.

  The raw series is provably accurate for ``t <= 1`` (doubling the
  sample) and explodes geometrically beyond; following Efron–Thisted,
  the Euler-smoothed variant down-weights the high-order terms with
  binomial tail probabilities so moderate extrapolations (a few x)
  remain usable.  The sanity bounds still apply: a statistics collector
  can use this to decide whether a larger sample is *worth scanning*.
"""

from __future__ import annotations

import math

from repro.contracts import ensures, requires
from repro.core.base import DistinctValueEstimator
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile
from repro.frequency.statistics import coverage_estimate_distinct

__all__ = ["GoodTuring", "good_toulmin_extrapolation"]


class GoodTuring(DistinctValueEstimator):
    """Coverage-adjusted estimator ``d / (1 - f_1 / r)``.

    Accurate when class sizes are roughly equal (where the coverage
    argument is exact in expectation); underestimates under skew —
    precisely the gap Chao–Lee's CV term patches.
    """

    name = "GT"

    @requires(
        "profile.sample_size >= 1",
        "population_size >= 1",
        "profile.distinct >= 0",
    )
    @ensures("result >= profile.distinct")
    def _estimate_raw(self, profile: FrequencyProfile, population_size: int) -> float:
        return coverage_estimate_distinct(profile)


def good_toulmin_extrapolation(
    profile: FrequencyProfile,
    extra_fraction: float,
    smoothed: bool = True,
    smoothing_success: float = 0.5,
    order: int | None = None,
) -> float:
    """Predicted number of *new* distinct values in ``extra_fraction * r``
    further sampled rows.

    Parameters
    ----------
    profile:
        Frequency profile of the current sample of ``r`` rows.
    extra_fraction:
        ``t``: how many additional rows to extrapolate to, as a multiple
        of ``r`` (``t = 1`` doubles the sample).
    smoothed:
        Apply Efron–Thisted Euler smoothing (recommended for ``t > 1``;
        for ``t <= 1`` both variants agree closely).
    smoothing_success:
        The binomial success parameter of the smoother; Efron–Thisted's
        choices fall in [0.4, 0.6].
    order:
        Truncation order ``k`` of the Euler transform: only terms with
        ``i <= k`` contribute, weighted by ``P[Binomial(k, theta) >= i]``.
        Defaults to ``min(max_frequency, 20)`` — frequencies beyond that
        belong to classes that will certainly recur and add nothing to
        the new-value count anyway.

    Returns
    -------
    float
        Predicted new-distinct count, clamped to be non-negative.
    """
    if extra_fraction < 0:
        raise InvalidParameterError(
            f"extra_fraction must be >= 0, got {extra_fraction}"
        )
    if not 0.0 < smoothing_success < 1.0:
        raise InvalidParameterError(
            f"smoothing_success must be in (0, 1), got {smoothing_success}"
        )
    t = float(extra_fraction)
    if t <= 0.0 or not profile:
        return 0.0
    max_i = profile.max_frequency
    total = 0.0
    if not smoothed:
        log_t = math.log(t) if t > 0 else -math.inf
        for i, count in profile.counts.items():
            if t > 1.0 and i * log_t > 700.0:
                raise InvalidParameterError(
                    "raw Good-Toulmin series overflows for "
                    f"t={t:g} with frequencies up to {max_i}; use smoothed=True"
                )
            total += -((-t) ** i) * count
        return max(total, 0.0)
    # Euler smoothing: truncate at order k and weight term i by
    # P[Binomial(k, theta) >= i], the probability the randomly-stopped
    # series would have reached it (Efron-Thisted).
    k = min(max_i, 20) if order is None else int(order)
    if k < 1:
        raise InvalidParameterError(f"order must be >= 1, got {order}")
    # Survival function of Binomial(k, theta) at i, computed directly
    # (profiles are sparse and k modest in practice).
    log_theta = math.log(smoothing_success)
    log_one_minus = math.log1p(-smoothing_success)

    def binomial_tail(i: int) -> float:
        tail = 0.0
        for j in range(i, k + 1):
            log_term = (
                math.lgamma(k + 1)
                - math.lgamma(j + 1)
                - math.lgamma(k - j + 1)
                + j * log_theta
                + (k - j) * log_one_minus
            )
            # log of a binomial pmf term, <= 0: exact clamp (R1303).
            tail += math.exp(min(0.0, log_term))
        return min(tail, 1.0)

    for i, count in profile.counts.items():
        if i > k:
            continue  # heavy classes certainly recur; no new values there
        total += -((-t) ** i) * count * binomial_tail(i)
    return max(total, 0.0)
