"""Sample statistics derived from frequency profiles.

These are the auxiliary quantities the hybrid estimators rely on:

* the Good–Turing *sample coverage* ``C_hat = 1 - f_1 / r``;
* the Chao–Lee style estimate of the squared *coefficient of variation*
  (CV) of class sizes, ``gamma^2 = (1/D) * sum_i (n_i - n/D)^2 / (n/D)^2``;
* the *mean interval width* and plug-in helpers shared across estimators.

The squared CV measures skew: uniform data has ``gamma^2 = 0`` and Zipfian
data has large ``gamma^2``.  Haas–Stokes' hybrid (our HYBVAR) switches
estimators on thresholds of this quantity.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import SupportsInt

from repro.contracts import ensures, requires
from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = [
    "sample_coverage",
    "coverage_estimate_distinct",
    "cv_squared",
    "true_cv_squared",
]


def sample_coverage(profile: FrequencyProfile) -> float:
    """Good–Turing sample coverage ``1 - f_1 / r`` (0.0 for empty samples)."""
    return profile.sample_coverage()


@requires("profile.distinct >= 0")
@ensures("result >= profile.distinct")
def coverage_estimate_distinct(profile: FrequencyProfile) -> float:
    """The coverage-based first-cut estimate ``D_0 = d / C_hat``.

    This is the starting point of the Chao–Lee estimator and the plug-in
    used inside :func:`cv_squared`.  When the sample is all singletons
    (``C_hat = 0``) the coverage estimate is undefined; we return
    ``d * r`` as the conventional safeguard (it is what ``d / C_hat``
    tends to as ``C_hat -> 1/r``), which downstream estimators clamp.
    """
    d = profile.distinct
    coverage = profile.sample_coverage()
    if coverage <= 0.0:
        return float(d * max(profile.sample_size, 1))
    return d / coverage


@ensures("result >= 0.0")
def cv_squared(
    profile: FrequencyProfile,
    distinct_estimate: float | None = None,
) -> float:
    """Estimated squared coefficient of variation of class sizes.

    Uses the Chao–Lee moment estimator

    ``gamma^2 = max(0, D_hat * sum_i i (i-1) f_i / (r (r - 1)) - 1)``

    which is consistent because ``E[sum_i i (i-1) f_i] = r (r-1) sum p_j^2``
    for multinomial sampling and ``D * sum p_j^2 - 1`` equals the squared
    CV when all ``p_j`` average ``1/D``.

    Parameters
    ----------
    profile:
        The sample's frequency profile.
    distinct_estimate:
        Plug-in estimate of ``D``.  Defaults to the coverage-based
        estimate ``d / C_hat`` (as in Chao–Lee and Haas–Stokes).
    """
    r = profile.sample_size
    if r < 2:
        return 0.0
    if distinct_estimate is None:
        distinct_estimate = coverage_estimate_distinct(profile)
    if distinct_estimate < 0:
        raise InvalidParameterError(
            f"distinct_estimate must be non-negative, got {distinct_estimate}"
        )
    second_moment = profile.factorial_moment(2)
    gamma_sq = distinct_estimate * second_moment / (r * (r - 1)) - 1.0
    return max(0.0, gamma_sq)


def true_cv_squared(class_sizes: Iterable[SupportsInt]) -> float:
    """Exact squared CV of a population's class sizes (ground truth).

    ``class_sizes`` is an iterable of per-value multiplicities ``n_j``.
    Provided for tests and experiment ground truth, mirroring the
    definition used by Haas–Stokes:

    ``gamma^2 = (1/D) sum_j (n_j - mean)^2 / mean^2``.
    """
    sizes = [int(s) for s in class_sizes]
    d = len(sizes)
    if d == 0:
        raise InvalidParameterError("class_sizes must be non-empty")
    if any(s <= 0 for s in sizes):
        raise InvalidParameterError("class sizes must be positive")
    # Every size is >= 1 (validated above), so the mean is too: the
    # max-clamp is an exact no-op that lets the interval prover
    # discharge the division instead of a pragma.
    mean = max(sum(sizes) / d, 1.0)
    return math.fsum((s - mean) ** 2 for s in sizes) / (d * mean * mean)
