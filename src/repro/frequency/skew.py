"""The chi-squared skew test used by the HYBSKEW hybrid estimator.

Haas, Naughton, Seshadri and Stokes (VLDB 1995) select between the
smoothed jackknife (low skew) and Shlosser's estimator (high skew) by
running "the standard chi-squared test on the random sample to
probabilistically estimate whether the data has high skew or low skew"
(Section 5 of the PODS paper).

The test: under the null hypothesis that the ``d`` observed classes have
equal population frequencies, the vector of within-sample class counts
``(c_1, ..., c_d)`` is approximately multinomial-uniform, so

    u = sum_j (c_j - r/d)^2 / (r/d)

is approximately chi-squared with ``d - 1`` degrees of freedom.  We reject
uniformity (declare *high skew*) when ``u`` exceeds the upper ``alpha``
critical value.

Because ``sum_j c_j^2 = sum_i i^2 f_i``, the statistic is computable from
the frequency profile alone — exactly the information the paper's modified
SQL Server returned.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from repro.errors import InvalidParameterError
from repro.frequency.profile import FrequencyProfile

__all__ = ["SkewTestResult", "chi_squared_skew_test", "is_high_skew"]


@dataclass(frozen=True)
class SkewTestResult:
    """Outcome of the chi-squared uniformity test on a sample."""

    statistic: float
    degrees_of_freedom: int
    critical_value: float
    p_value: float
    high_skew: bool


def chi_squared_skew_test(
    profile: FrequencyProfile, alpha: float = 0.05
) -> SkewTestResult:
    """Run the HYBSKEW chi-squared uniformity test on a sample profile.

    Parameters
    ----------
    profile:
        Frequency profile of the sample.
    alpha:
        Significance level; the sample is declared high-skew when the
        statistic exceeds the chi-squared ``1 - alpha`` quantile with
        ``d - 1`` degrees of freedom.

    Returns
    -------
    SkewTestResult
        ``high_skew`` is False for degenerate samples (``d <= 1``), where
        uniformity cannot be rejected.
    """
    if not 0.0 < alpha < 1.0:
        raise InvalidParameterError(f"alpha must be in (0, 1), got {alpha}")
    r = profile.sample_size
    d = profile.distinct
    if d <= 1 or r == 0:
        return SkewTestResult(
            statistic=0.0,
            degrees_of_freedom=max(d - 1, 0),
            critical_value=float("inf"),
            p_value=1.0,
            high_skew=False,
        )
    expected = r / d
    # sum_j (c_j - e)^2 / e = (sum_j c_j^2)/e - r  since sum_j c_j = r.
    sum_squares = sum(i * i * count for i, count in profile.counts.items())
    statistic = sum_squares / expected - r
    dof = d - 1
    critical = float(stats.chi2.ppf(1.0 - alpha, dof))
    p_value = float(stats.chi2.sf(statistic, dof))
    return SkewTestResult(
        statistic=statistic,
        degrees_of_freedom=dof,
        critical_value=critical,
        p_value=p_value,
        high_skew=statistic > critical,
    )


def is_high_skew(profile: FrequencyProfile, alpha: float = 0.05) -> bool:
    """Convenience wrapper: True when the sample fails the uniformity test."""
    return chi_squared_skew_test(profile, alpha=alpha).high_skew
