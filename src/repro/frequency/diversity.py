"""Diversity and coverage statistics of frequency profiles.

Companions to the distinct count that optimizers and the species
literature derive from the same ``f_i`` vector:

* the **Good–Turing unseen mass** ``f_1 / r`` — the probability the
  next sampled row holds a *never-seen* value; the complement of the
  sample coverage used throughout the estimator derivations;
* the **Simpson index** ``sum_j p_j^2`` (estimated unbiasedly by
  ``sum_i i (i-1) f_i / (r (r-1))``) — the collision probability that
  drives the CV machinery of Chao–Lee and Haas–Stokes;
* the plug-in **Shannon entropy** of the sample, with the classic
  Miller–Madow bias correction ``(d - 1) / (2 r)``.
"""

from __future__ import annotations

import math

from repro.errors import InvalidSampleError
from repro.frequency.profile import FrequencyProfile

__all__ = [
    "good_turing_unseen_mass",
    "simpson_index",
    "shannon_entropy",
]


def good_turing_unseen_mass(profile: FrequencyProfile) -> float:
    """``f_1 / r``: estimated probability mass of unseen values."""
    r = profile.sample_size
    if r == 0:
        raise InvalidSampleError("cannot compute unseen mass of an empty sample")
    return profile.f1 / r


def simpson_index(profile: FrequencyProfile) -> float:
    """Unbiased estimate of ``sum_j p_j^2`` (the collision probability).

    Uses ``sum_i i (i-1) f_i / (r (r-1))``; returns 0.0 for samples of
    fewer than two rows (no collision is observable).
    """
    r = profile.sample_size
    if r == 0:
        raise InvalidSampleError("cannot compute Simpson index of an empty sample")
    if r < 2:
        return 0.0
    return profile.factorial_moment(2) / (r * (r - 1))


def shannon_entropy(profile: FrequencyProfile, bias_corrected: bool = True) -> float:
    """Plug-in Shannon entropy (nats) of the sampled distribution.

    ``H_hat = -sum_j (c_j / r) ln(c_j / r)``, optionally with the
    Miller–Madow correction ``+ (d - 1) / (2 r)``.
    """
    r = profile.sample_size
    if r == 0:
        raise InvalidSampleError("cannot compute entropy of an empty sample")
    entropy = 0.0
    for i, count in profile.counts.items():
        p = i / r
        entropy -= count * p * math.log(p)  # reprolint: disable=R102 - p = i/r with multiplicity i >= 1
    if bias_corrected:
        entropy += (profile.distinct - 1) / (2.0 * r)
    return entropy
