"""Frequency-of-frequencies profiles and sample statistics.

The :class:`~repro.frequency.FrequencyProfile` is the universal input to
every estimator in this library: it records ``f_i``, the number of
distinct values occurring exactly ``i`` times in a sample (paper §2).
"""

from repro.frequency.diversity import (
    good_turing_unseen_mass,
    shannon_entropy,
    simpson_index,
)
from repro.frequency.profile import FrequencyProfile
from repro.frequency.skew import SkewTestResult, chi_squared_skew_test, is_high_skew
from repro.frequency.statistics import (
    coverage_estimate_distinct,
    cv_squared,
    sample_coverage,
    true_cv_squared,
)

__all__ = [
    "FrequencyProfile",
    "good_turing_unseen_mass",
    "shannon_entropy",
    "simpson_index",
    "SkewTestResult",
    "chi_squared_skew_test",
    "is_high_skew",
    "sample_coverage",
    "coverage_estimate_distinct",
    "cv_squared",
    "true_cv_squared",
]
