"""A stack of frequency profiles in CSR layout for batched evaluation.

``harness.evaluate_column`` feeds the same ``T`` trial profiles to every
estimator.  Evaluating them one profile at a time costs a Python loop
per ``(trial, estimator)`` pair; :class:`FrequencyProfileBatch` lays the
``T`` sparse ``f_i`` vectors out as one CSR matrix (concatenated
``frequencies``/``counts`` arrays plus an ``indptr``) so an estimator's
:meth:`~repro.core.base.DistinctValueEstimator.estimate_batch` kernel
can compute all trials in a handful of vectorized passes.

**Bit-identity is the design constraint.**  The estimators' scalar
kernels iterate ``profile.counts.items()`` in dict insertion order and
accumulate floats sequentially, so:

* each profile's segment stores its frequencies in that profile's
  *insertion* order (for kernel-built profiles this is ascending
  frequency, but the batch never re-sorts, so hand-built profiles are
  represented faithfully too);
* :func:`segment_sums` reduces each segment with ``np.cumsum``, whose
  sequential pairing is bitwise identical to a scalar ``+=`` loop
  (unlike ``np.add.reduceat``, which pairs differently);
* :func:`exact_exp` vectorizes ``math.exp`` by evaluating it once per
  *unique* argument and gathering — numpy's ``np.exp`` is not bitwise
  identical to ``math.exp``, but profiles are sparse and their exponent
  arguments heavily repeated, so the gather is both exact and fast.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.frequency.profile import FrequencyProfile

__all__ = [
    "FrequencyProfileBatch",
    "exact_exp",
    "gather_over_unique",
    "segment_sums",
    "segment_sums_int",
]


def exact_exp(arguments: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """``math.exp`` of every non-positive element, bitwise scalar-identical.

    Evaluates ``math.exp`` once per unique argument and gathers, so the
    result matches a per-element ``math.exp`` loop exactly (``np.exp``
    does not: its SIMD polynomial differs from libm in the last ulp for
    a few percent of arguments).  Arguments are missed-mass exponents,
    which every caller clamps to ``<= 0.0``; the clamp is restated here
    so overflow is impossible by construction.
    """
    if arguments.size == 0:
        return np.empty(0, dtype=np.float64)
    unique, inverse = np.unique(arguments, return_inverse=True)
    table = np.array(
        [math.exp(min(value, 0.0)) for value in unique.tolist()],
        dtype=np.float64,
    )
    return table[inverse]


def segment_sums(
    values: npt.NDArray[np.float64], indptr: npt.NDArray[np.int64]
) -> npt.NDArray[np.float64]:
    """Per-segment sequential sums, bitwise equal to scalar ``+=`` loops.

    ``values`` is a concatenation of segments delimited by ``indptr``;
    returns one float per segment: the left-to-right sequential sum of
    its elements (0.0 for empty segments).  Uses one ``np.cumsum`` per
    segment — ``np.cumsum`` applies the same sequential pairing as a
    scalar accumulation loop, so the result is bit-identical to the
    estimators' historical term-by-term sums.
    """
    out = np.zeros(indptr.size - 1, dtype=np.float64)
    for k in range(indptr.size - 1):
        start, stop = int(indptr[k]), int(indptr[k + 1])
        if stop > start:
            out[k] = np.cumsum(values[start:stop])[-1]
    return out


def segment_sums_int(
    values: npt.NDArray[np.int64], indptr: npt.NDArray[np.int64]
) -> npt.NDArray[np.int64]:
    """Per-segment integer sums (exact, so summation order is free).

    Integer addition is associative, so unlike :func:`segment_sums` this
    can use one global ``np.cumsum`` and a difference — the result equals
    a per-segment Python ``sum`` exactly as long as the grand total fits
    in int64 (true for every profile statistic: they are bounded by
    ``r^2`` per trial).
    """
    totals = np.zeros(values.size + 1, dtype=np.int64)
    np.cumsum(values, out=totals[1:])
    result: npt.NDArray[np.int64] = totals[indptr[1:]] - totals[indptr[:-1]]
    return result


def gather_over_unique(
    keys: npt.NDArray[np.int64], table: "dict[int, float]"
) -> npt.NDArray[np.float64]:
    """Expand a per-unique-key float table back onto ``keys``.

    Estimator kernels compute ``r``-dependent coefficients (``sqrt(n/r)``,
    ``(r-1)/r``, ``log1p(-q)``…) once per *unique* sample size with exact
    Python scalar arithmetic — including correctly-rounded big-int
    division, which numpy's int64 path lacks — then broadcast via this
    gather, so the vectorized values are bitwise the scalar ones.
    """
    return np.array([table[int(k)] for k in keys.tolist()], dtype=np.float64)


@dataclass(frozen=True)
class FrequencyProfileBatch:
    """``T`` frequency profiles as one CSR ``f_i`` matrix.

    Attributes
    ----------
    profiles:
        The wrapped :class:`FrequencyProfile` objects, in order.  Kept
        so loop fallbacks and per-profile finalization read the same
        objects the scalar path would.
    indptr:
        CSR row pointer, shape ``(T + 1,)``; profile ``k`` occupies the
        slice ``indptr[k]:indptr[k + 1]`` of ``frequencies``/``counts``.
    frequencies, counts:
        Concatenated ``(i, f_i)`` pairs in each profile's dict insertion
        order (int64).
    distinct, sample_size, f1, f2, max_frequency:
        Cached per-profile summary vectors (int64), matching the scalar
        properties of the same names.
    """

    profiles: tuple[FrequencyProfile, ...]
    indptr: npt.NDArray[np.int64] = field(repr=False, compare=False)
    frequencies: npt.NDArray[np.int64] = field(repr=False, compare=False)
    counts: npt.NDArray[np.int64] = field(repr=False, compare=False)
    distinct: npt.NDArray[np.int64] = field(repr=False, compare=False)
    sample_size: npt.NDArray[np.int64] = field(repr=False, compare=False)
    f1: npt.NDArray[np.int64] = field(repr=False, compare=False)
    f2: npt.NDArray[np.int64] = field(repr=False, compare=False)
    max_frequency: npt.NDArray[np.int64] = field(repr=False, compare=False)

    @classmethod
    def from_profiles(
        cls, profiles: Sequence[FrequencyProfile]
    ) -> "FrequencyProfileBatch":
        """Lay a sequence of profiles out in CSR form (insertion order)."""
        stack = tuple(profiles)
        lengths = [len(p.counts) for p in stack]
        indptr = np.zeros(len(stack) + 1, dtype=np.int64)
        np.cumsum(np.array(lengths, dtype=np.int64), out=indptr[1:])
        freqs = np.empty(int(indptr[-1]), dtype=np.int64)
        counts = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = 0
        for profile in stack:
            for i, c in profile.counts.items():
                freqs[cursor] = i
                counts[cursor] = c
                cursor += 1
        return cls(
            profiles=stack,
            indptr=indptr,
            frequencies=freqs,
            counts=counts,
            distinct=np.array([p.distinct for p in stack], dtype=np.int64),
            sample_size=np.array([p.sample_size for p in stack], dtype=np.int64),
            f1=np.array([p.f1 for p in stack], dtype=np.int64),
            f2=np.array([p.f2 for p in stack], dtype=np.int64),
            max_frequency=np.array([p.max_frequency for p in stack], dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.profiles)

    def segment_ids(self) -> npt.NDArray[np.int64]:
        """Profile index of every CSR element (``np.repeat`` expansion)."""
        return np.repeat(
            np.arange(len(self.profiles), dtype=np.int64), np.diff(self.indptr)
        )

    def broadcast(
        self, per_profile: npt.NDArray[np.float64]
    ) -> npt.NDArray[np.float64]:
        """Expand one value per profile to one value per CSR element."""
        result: npt.NDArray[np.float64] = np.repeat(
            per_profile, np.diff(self.indptr)
        )
        return result

    def subset(self, indices: Sequence[int]) -> "FrequencyProfileBatch":
        """A new batch over the selected profiles (hybrid branch dispatch).

        Slices the CSR arrays directly — segment order and within-segment
        element order are preserved, so the subset is exactly what
        :meth:`from_profiles` would build from the selected profiles.
        """
        idx = np.asarray(list(indices), dtype=np.int64)
        starts = self.indptr[idx]
        lengths = self.indptr[idx + 1] - starts
        indptr = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        # Element positions: each segment's start repeated, plus the
        # within-segment offset (global arange minus new segment start).
        positions = np.repeat(starts, lengths) + (
            np.arange(int(indptr[-1]), dtype=np.int64)
            - np.repeat(indptr[:-1], lengths)
        )
        return FrequencyProfileBatch(
            profiles=tuple(self.profiles[int(i)] for i in idx.tolist()),
            indptr=indptr,
            frequencies=self.frequencies[positions],
            counts=self.counts[positions],
            distinct=self.distinct[idx],
            sample_size=self.sample_size[idx],
            f1=self.f1[idx],
            f2=self.f2[idx],
            max_frequency=self.max_frequency[idx],
        )
