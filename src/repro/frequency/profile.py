"""Frequency-of-frequencies profiles.

Every estimator in this library is a pure function of a sample's
*frequency profile*: the vector ``f_i`` counting how many distinct values
occur exactly ``i`` times in the sample (Section 2 of the paper).  The
paper's modified SQL Server returned exactly this information — ``d``,
all ``f_i``, and the sample skew — once a sample was gathered; this module
is the library's equivalent of that server hook.

The profile is stored sparsely (``{frequency: count}``) because real
profiles are sparse: a sample of a million rows over a heavy-tailed column
typically has a handful of occupied frequencies.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.contracts import ensures, requires
from repro.errors import InvalidSampleError

__all__ = ["FrequencyProfile"]


def _validated_counts(counts: Mapping[int, int]) -> dict[int, int]:
    """Copy ``counts`` into a plain dict, dropping zeros and validating."""
    clean: dict[int, int] = {}
    for frequency, count in counts.items():
        freq = int(frequency)
        cnt = int(count)
        if freq <= 0:
            raise InvalidSampleError(
                f"frequencies must be positive integers, got {frequency!r}"
            )
        if cnt < 0:
            raise InvalidSampleError(
                f"f_{freq} must be non-negative, got {count!r}"
            )
        if cnt > 0:
            clean[freq] = clean.get(freq, 0) + cnt
    return clean


@dataclass(frozen=True)
class FrequencyProfile:
    """The vector ``f_i`` of a sample, stored sparsely.

    Attributes
    ----------
    counts:
        Mapping ``{i: f_i}`` with ``f_i > 0`` only for occupied
        frequencies ``i >= 1``.

    Derived quantities follow the paper's Section 2 notation:
    ``d = sum_i f_i`` is the number of distinct values in the sample and
    ``r = sum_i i * f_i`` is the sample size.
    """

    counts: Mapping[int, int]
    _sorted_freqs: tuple[int, ...] = field(init=False, repr=False, compare=False)
    _distinct: int = field(init=False, repr=False, compare=False)
    _sample_size: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        clean = _validated_counts(self.counts)
        object.__setattr__(self, "counts", clean)
        object.__setattr__(self, "_sorted_freqs", tuple(sorted(clean)))
        # The summary statistics are pure functions of the (now
        # immutable) counts; estimators read them many times per call,
        # so they are computed once here.
        object.__setattr__(self, "_distinct", sum(clean.values()))
        object.__setattr__(
            self, "_sample_size", sum(i * c for i, c in clean.items())
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sample(cls, values: Iterable[Any]) -> "FrequencyProfile":
        """Build the profile of a concrete sample of values.

        ``values`` may be any iterable of hashable items or a numpy array
        (which is handled with a vectorized path).
        """
        if isinstance(values, np.ndarray):
            if values.ndim != 1:
                raise InvalidSampleError(
                    f"sample arrays must be 1-D, got shape {values.shape}"
                )
            _, multiplicities = np.unique(values, return_counts=True)
            freqs, counts = np.unique(multiplicities, return_counts=True)
            return cls(dict(zip(freqs.tolist(), counts.tolist())))
        multiplicity = Counter(values)
        return cls(Counter(multiplicity.values()))

    @classmethod
    def from_multiplicities(cls, multiplicities: Iterable[int]) -> "FrequencyProfile":
        """Build the profile from per-value occurrence counts.

        Example: ``from_multiplicities([3, 1, 1])`` describes a sample with
        one value occurring 3 times and two singletons, i.e.
        ``f_1 = 2, f_3 = 1``.
        """
        counter: Counter[int] = Counter()
        for multiplicity in multiplicities:
            mult = int(multiplicity)
            if mult <= 0:
                raise InvalidSampleError(
                    f"multiplicities must be positive, got {multiplicity!r}"
                )
            counter[mult] += 1
        return cls(counter)

    @classmethod
    def empty(cls) -> "FrequencyProfile":
        """The profile of an empty sample (``r = d = 0``)."""
        return cls({})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def f(self, i: int) -> int:
        """``f_i``: number of values occurring exactly ``i`` times."""
        return self.counts.get(int(i), 0)

    @property
    def f1(self) -> int:
        """Number of singleton values in the sample."""
        return self.f(1)

    @property
    def f2(self) -> int:
        """Number of doubleton values in the sample."""
        return self.f(2)

    @property
    def distinct(self) -> int:
        """``d``: number of distinct values observed in the sample."""
        return self._distinct

    @property
    def sample_size(self) -> int:
        """``r``: total number of sampled rows, ``sum_i i * f_i``."""
        return self._sample_size

    @property
    def max_frequency(self) -> int:
        """Largest occupied frequency, or 0 for an empty profile."""
        return self._sorted_freqs[-1] if self._sorted_freqs else 0

    @property
    def occupied_frequencies(self) -> tuple[int, ...]:
        """Sorted tuple of frequencies ``i`` with ``f_i > 0``."""
        return self._sorted_freqs

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(i, f_i)`` pairs in increasing frequency order."""
        for freq in self._sorted_freqs:
            yield freq, self.counts[freq]

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __len__(self) -> int:
        """Number of occupied frequencies (sparsity of the profile)."""
        return len(self.counts)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def tail_distinct(self, minimum_frequency: int) -> int:
        """Number of distinct values occurring at least ``minimum_frequency`` times."""
        return sum(c for i, c in self.counts.items() if i >= minimum_frequency)

    def tail_rows(self, minimum_frequency: int) -> int:
        """Number of sampled rows covered by values occurring >= ``minimum_frequency`` times."""
        return sum(i * c for i, c in self.counts.items() if i >= minimum_frequency)

    def factorial_moment(self, order: int) -> int:
        """``sum_i i (i-1) ... (i-order+1) f_i`` — used by CV estimators."""
        if order < 1:
            raise InvalidSampleError(f"moment order must be >= 1, got {order}")
        total = 0
        for i, c in self.counts.items():
            term = 1
            for k in range(order):
                term *= i - k
            if term > 0:
                total += term * c
        return total

    # f_1 <= r = sum_i i f_i holds for every valid profile; stating it as
    # a contract lets the prover bound the coverage for callers.
    @requires("self.f1 >= 0", "self.f1 <= self.sample_size", "self.sample_size >= 0")
    @ensures("result >= 0.0", "result <= 1.0")
    def sample_coverage(self) -> float:
        """Good–Turing estimate of sample coverage, ``1 - f_1 / r``.

        Coverage is the fraction of the *table* occupied by values that
        appear in the sample; it drives the Chao–Lee estimator and the
        coefficient-of-variation machinery of Haas–Stokes.
        Returns 0.0 for an empty sample.
        """
        r = self.sample_size
        if r == 0:
            return 0.0
        return 1.0 - self.f1 / r

    def truncate(self, max_frequency: int) -> "FrequencyProfile":
        """Profile restricted to values occurring at most ``max_frequency`` times.

        Used by the DUJ2A estimator, which removes high-frequency classes
        before applying the second-order jackknife.
        """
        kept = {i: c for i, c in self.counts.items() if i <= max_frequency}
        return FrequencyProfile(kept)

    def merge(self, other: "FrequencyProfile") -> "FrequencyProfile":
        """Profile of the disjoint union of two samples over disjoint value sets.

        Note this is only meaningful when the two samples cannot share
        values (e.g. partitioned domains); merging samples over a shared
        domain requires the raw values, not the profiles.
        """
        merged = Counter(self.counts)
        merged.update(other.counts)
        return FrequencyProfile(merged)

    def to_arrays(self) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """Return ``(frequencies, counts)`` as aligned int64 arrays, sorted."""
        freqs = np.array(self._sorted_freqs, dtype=np.int64)
        counts = np.array([self.counts[i] for i in self._sorted_freqs], dtype=np.int64)
        return freqs, counts

    def to_dense(self, length: int | None = None) -> npt.NDArray[np.int64]:
        """Dense ``f`` vector where ``vector[i-1] = f_i``.

        ``length`` defaults to :attr:`max_frequency`; it must be at least
        that large.
        """
        max_freq = self.max_frequency
        if length is None:
            length = max_freq
        if length < max_freq:
            raise InvalidSampleError(
                f"dense length {length} < max occupied frequency {max_freq}"
            )
        dense = np.zeros(length, dtype=np.int64)
        for i, c in self.counts.items():
            dense[i - 1] = c
        return dense

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"f{i}={c}" for i, c in self)
        return f"FrequencyProfile(r={self.sample_size}, d={self.distinct}, {inner})"
