"""The measurement harness: trials, ratio errors, and variance.

One *evaluation* follows the paper's protocol exactly: draw ``T``
independent samples of a column; for each sample, compute the frequency
profile once and feed the *same* profile to every estimator; report per
estimator the mean ratio error over trials and the standard deviation of
its estimates as a fraction of the true distinct count.

The trial samples are drawn through the sampler's batched fast path
(:meth:`~repro.sampling.base.RowSampler.profile_batch`), which reduces
all ``T`` trials to profiles in one vectorized pass while consuming the
random stream exactly as the historical one-trial-at-a-time loop did —
estimators are pure functions of the profile, so hoisting the draws
ahead of the estimates leaves every number bit-identical.  Custom
samplers without a batch path fall back to the serial loop.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.base import DistinctValueEstimator, ratio_error
from repro.data.column import Column
from repro.errors import InvalidParameterError
from repro.frequency.batch import FrequencyProfileBatch
from repro.obs.recorder import OBS
from repro.sampling.base import RowSampler
from repro.sampling.kernels import realized_kernel
from repro.sampling.schemes import UniformWithoutReplacement

__all__ = ["EstimatorSummary", "EvaluationResult", "evaluate_column"]


@dataclass(frozen=True)
class EstimatorSummary:
    """Aggregated performance of one estimator on one configuration."""

    estimator: str
    trials: int
    true_distinct: int
    mean_estimate: float
    mean_ratio_error: float
    max_ratio_error: float
    std_fraction: float
    mean_lower: float | None = None
    mean_upper: float | None = None

    @property
    def mean_relative_error(self) -> float:
        """Signed relative error of the mean estimate."""
        return (self.mean_estimate - self.true_distinct) / self.true_distinct


@dataclass(frozen=True)
class EvaluationResult:
    """All estimator summaries for one (column, sampling) configuration.

    ``sample_size`` is the realized sample size averaged over trials and
    rounded to the nearest row.  Fixed-size schemes realize the same
    size every trial, so the mean is exact; for :class:`Bernoulli` the
    per-trial size is ``Binomial(n, r/n)`` and the mean is the honest
    summary (earlier versions reported whichever size the *last* trial
    happened to draw).
    """

    column_name: str
    n_rows: int
    true_distinct: int
    sample_size: int
    summaries: dict[str, EstimatorSummary]

    def __getitem__(self, estimator_name: str) -> EstimatorSummary:
        return self.summaries[estimator_name]

    @property
    def sampling_fraction(self) -> float:
        return self.sample_size / self.n_rows


def evaluate_column(
    column: Column,
    estimators: Sequence[DistinctValueEstimator],
    rng: np.random.Generator,
    fraction: float | None = None,
    size: int | None = None,
    trials: int = 10,
    sampler: RowSampler | None = None,
) -> EvaluationResult:
    """Run the paper's trial protocol on one column.

    Parameters
    ----------
    column:
        The column under test (ground truth comes from it).
    estimators:
        Estimators to compare; each trial's sample profile is shared by
        all of them, as in the paper's modified-server setup.
    fraction, size:
        Sampling fraction or absolute sample size (exactly one).
    trials:
        Independent samples to average over (paper: 10).
    sampler:
        Sampling scheme; default uniform without replacement.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    if not estimators:
        raise InvalidParameterError("at least one estimator is required")
    sampler = sampler if sampler is not None else UniformWithoutReplacement()
    true_distinct = column.distinct_count
    n = column.n_rows

    estimates: dict[str, list[float]] = {e.name: [] for e in estimators}
    errors: dict[str, list[float]] = {e.name: [] for e in estimators}
    lowers: dict[str, list[float]] = {e.name: [] for e in estimators}
    uppers: dict[str, list[float]] = {e.name: [] for e in estimators}
    with OBS.span(
        "harness.evaluate_column",
        column=column.name,
        trials=trials,
        estimators=len(estimators),
    ):
        if OBS.enabled:
            OBS.add("harness.evaluations")
        profiles = sampler.profile_batch(
            column.values, rng, trials, size=size, fraction=fraction
        )
        realized_sample_size = round(
            math.fsum(p.sample_size for p in profiles) / trials
        )
        with OBS.span("harness.estimate", trials=trials):
            # Estimator-major batched evaluation: each estimator sees the
            # whole profile stack in one estimate_batch call (vectorized
            # where the estimator has a kernel, the scalar loop where
            # not).  Results land in the same per-estimator lists in the
            # same trial order as the historical profile-major loop, so
            # every downstream number is unchanged; REPRO_KERNEL=legacy
            # keeps the historical loop itself for A/B verification.
            if realized_kernel() == "legacy":
                for profile in profiles:
                    for estimator in estimators:
                        outcome = estimator.estimate(profile, n)
                        estimates[estimator.name].append(outcome.value)
                        errors[estimator.name].append(
                            ratio_error(outcome.value, true_distinct)
                        )
                        if outcome.interval is not None:
                            lowers[estimator.name].append(outcome.interval.lower)
                            uppers[estimator.name].append(outcome.interval.upper)
            else:
                batch = FrequencyProfileBatch.from_profiles(profiles)
                for estimator in estimators:
                    for outcome in estimator.estimate_batch(batch, n):
                        estimates[estimator.name].append(outcome.value)
                        errors[estimator.name].append(
                            ratio_error(outcome.value, true_distinct)
                        )
                        if outcome.interval is not None:
                            lowers[estimator.name].append(outcome.interval.lower)
                            uppers[estimator.name].append(outcome.interval.upper)

    summaries = {}
    for estimator in estimators:
        name = estimator.name
        values = estimates[name]
        mean_estimate = math.fsum(values) / trials
        if trials > 1:
            variance = math.fsum((v - mean_estimate) ** 2 for v in values) / (
                trials - 1
            )
        else:
            variance = 0.0
        summaries[name] = EstimatorSummary(
            estimator=name,
            trials=trials,
            true_distinct=true_distinct,
            mean_estimate=mean_estimate,
            mean_ratio_error=math.fsum(errors[name]) / trials,
            max_ratio_error=max(errors[name]),
            std_fraction=math.sqrt(variance) / true_distinct,
            mean_lower=(
                math.fsum(lowers[name]) / len(lowers[name]) if lowers[name] else None
            ),
            mean_upper=(
                math.fsum(uppers[name]) / len(uppers[name]) if uppers[name] else None
            ),
        )
    return EvaluationResult(
        column_name=column.name,
        n_rows=n,
        true_distinct=true_distinct,
        sample_size=realized_sample_size,
        summaries=summaries,
    )
