"""The experiment harness regenerating every table and figure of §6."""

from repro.experiments.config import (
    DUPLICATION_FACTORS,
    PAPER_ROWS,
    SAMPLING_FRACTIONS,
    SKEW_VALUES,
    scale_divisor,
    scaled_rows,
    trials,
)
from repro.experiments.figures import (
    EXPERIMENTS,
    error_vs_duplication,
    error_vs_sampling_rate,
    error_vs_skew,
    gee_interval_table,
    real_dataset_metric,
    run_experiment,
    scaleup_bounded,
    scaleup_unbounded,
    stability_comparison,
    theorem1_comparison,
    variance_vs_sampling_rate,
)
from repro.experiments.harness import (
    EstimatorSummary,
    EvaluationResult,
    evaluate_column,
)
from repro.experiments.report import SeriesTable, format_value

__all__ = [
    "DUPLICATION_FACTORS",
    "PAPER_ROWS",
    "SAMPLING_FRACTIONS",
    "SKEW_VALUES",
    "scale_divisor",
    "scaled_rows",
    "trials",
    "EXPERIMENTS",
    "error_vs_duplication",
    "error_vs_sampling_rate",
    "error_vs_skew",
    "gee_interval_table",
    "real_dataset_metric",
    "run_experiment",
    "scaleup_bounded",
    "scaleup_unbounded",
    "stability_comparison",
    "theorem1_comparison",
    "variance_vs_sampling_rate",
    "EstimatorSummary",
    "EvaluationResult",
    "evaluate_column",
    "SeriesTable",
    "format_value",
]
