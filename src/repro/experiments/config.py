"""Experiment-wide configuration: the paper's protocol and scale knobs.

The paper's §6 protocol:

* sampling fractions {0.2, 0.4, 0.8, 1.6, 3.2, 6.4}%;
* ten independent samples per configuration, reporting the mean ratio
  error and the standard deviation of the estimates as a fraction of D;
* synthetic tables of one million rows (scale-up experiments vary this);
* the six estimators GEE, AE, HYBGEE, HYBSKEW, HYBVAR, DUJ2A.

Two environment variables rescale everything for quick runs:

* ``REPRO_SCALE`` — integer divisor applied to row counts (default 1,
  i.e. full paper scale);
* ``REPRO_TRIALS`` — trials per configuration (default 10, the paper's).

Two more select the sweep execution engine (see ``docs/performance.md``):

* ``REPRO_WORKERS`` — worker processes for grid sweeps (default 1);
* ``REPRO_SEED_MODE`` — ``auto`` (default; spawned per-point seeds iff
  more than one worker), ``legacy`` (the original sequential shared
  generator, always), or ``spawn`` (per-point seeds even on one worker).

The resilience layer adds four more (read by
:mod:`repro.resilience`, documented in ``docs/robustness.md``):

* ``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT`` — retry budget and
  progress timeout for supervised sweeps (either one being set makes
  every sweep supervised);
* ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` — deterministic fault
  injection spec and its seed (chaos testing only).
"""

from __future__ import annotations

import os

from repro.errors import InvalidParameterError

__all__ = [
    "SAMPLING_FRACTIONS",
    "SKEW_VALUES",
    "DUPLICATION_FACTORS",
    "PAPER_ROWS",
    "SEED_MODES",
    "scale_divisor",
    "trials",
    "workers",
    "seed_mode",
    "spawn_seeding",
    "scaled_rows",
]

#: The paper's six sampling fractions.
SAMPLING_FRACTIONS: tuple[float, ...] = (0.002, 0.004, 0.008, 0.016, 0.032, 0.064)

#: The paper's Zipf skew values.
SKEW_VALUES: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0)

#: The paper's duplication factors.
DUPLICATION_FACTORS: tuple[int, ...] = (1, 10, 100, 1000)

#: Default synthetic table size.
PAPER_ROWS = 1_000_000


def _positive_int_env(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise InvalidParameterError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {value}")
    return value


def scale_divisor() -> int:
    """Row-count divisor from ``REPRO_SCALE`` (1 = full paper scale)."""
    return _positive_int_env("REPRO_SCALE", 1)


def trials() -> int:
    """Trials per configuration from ``REPRO_TRIALS`` (default 10)."""
    return _positive_int_env("REPRO_TRIALS", 10)


#: Recognized ``REPRO_SEED_MODE`` values.
SEED_MODES: tuple[str, ...] = ("auto", "legacy", "spawn")


def workers() -> int:
    """Sweep worker processes from ``REPRO_WORKERS`` (default 1)."""
    return _positive_int_env("REPRO_WORKERS", 1)


def seed_mode() -> str:
    """Seeding protocol from ``REPRO_SEED_MODE`` (default ``auto``).

    ``legacy`` threads one shared generator through a sweep exactly as
    the serial runners always have (bit-reproducing historical numbers);
    ``spawn`` derives an independent child seed per grid point, making
    results identical for every worker count; ``auto`` picks ``legacy``
    on a single worker and ``spawn`` otherwise.
    """
    raw = os.environ.get("REPRO_SEED_MODE", "auto").strip().lower()
    if raw not in SEED_MODES:
        raise InvalidParameterError(
            f"REPRO_SEED_MODE must be one of {SEED_MODES}, got {raw!r}"
        )
    return raw


def spawn_seeding() -> bool:
    """Whether sweeps should use spawned per-grid-point seeds."""
    mode = seed_mode()
    if mode == "auto":
        return workers() > 1
    return mode == "spawn"


def scaled_rows(rows: int = PAPER_ROWS, keep_divisible_by: int = 1) -> int:
    """Apply the scale divisor to a row count.

    ``keep_divisible_by`` preserves divisibility (e.g. by a duplication
    factor) after scaling so generators stay valid.
    """
    scaled = max(1, rows // scale_divisor())
    if keep_divisible_by > 1:
        scaled = max(keep_divisible_by, scaled - scaled % keep_divisible_by)
    return scaled
