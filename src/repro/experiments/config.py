"""Experiment-wide configuration: the paper's protocol and scale knobs.

The paper's §6 protocol:

* sampling fractions {0.2, 0.4, 0.8, 1.6, 3.2, 6.4}%;
* ten independent samples per configuration, reporting the mean ratio
  error and the standard deviation of the estimates as a fraction of D;
* synthetic tables of one million rows (scale-up experiments vary this);
* the six estimators GEE, AE, HYBGEE, HYBSKEW, HYBVAR, DUJ2A.

Two environment variables rescale everything for quick runs:

* ``REPRO_SCALE`` — integer divisor applied to row counts (default 1,
  i.e. full paper scale);
* ``REPRO_TRIALS`` — trials per configuration (default 10, the paper's).
"""

from __future__ import annotations

import os

from repro.errors import InvalidParameterError

__all__ = [
    "SAMPLING_FRACTIONS",
    "SKEW_VALUES",
    "DUPLICATION_FACTORS",
    "PAPER_ROWS",
    "scale_divisor",
    "trials",
    "scaled_rows",
]

#: The paper's six sampling fractions.
SAMPLING_FRACTIONS: tuple[float, ...] = (0.002, 0.004, 0.008, 0.016, 0.032, 0.064)

#: The paper's Zipf skew values.
SKEW_VALUES: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0)

#: The paper's duplication factors.
DUPLICATION_FACTORS: tuple[int, ...] = (1, 10, 100, 1000)

#: Default synthetic table size.
PAPER_ROWS = 1_000_000


def _positive_int_env(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise InvalidParameterError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {value}")
    return value


def scale_divisor() -> int:
    """Row-count divisor from ``REPRO_SCALE`` (1 = full paper scale)."""
    return _positive_int_env("REPRO_SCALE", 1)


def trials() -> int:
    """Trials per configuration from ``REPRO_TRIALS`` (default 10)."""
    return _positive_int_env("REPRO_TRIALS", 10)


def scaled_rows(rows: int = PAPER_ROWS, keep_divisible_by: int = 1) -> int:
    """Apply the scale divisor to a row count.

    ``keep_divisible_by`` preserves divisibility (e.g. by a duplication
    factor) after scaling so generators stay valid.
    """
    scaled = max(1, rows // scale_divisor())
    if keep_divisible_by > 1:
        scaled = max(keep_divisible_by, scaled - scaled % keep_divisible_by)
    return scaled
