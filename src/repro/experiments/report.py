"""Plain-text rendering of experiment results.

Every figure/table runner returns a :class:`SeriesTable`: an x-axis, one
named series per estimator (or per bound), and enough metadata to print
the same rows the paper's figure reports.  Rendering is deliberately
plain ASCII so benchmark logs stay grep-able.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import InvalidParameterError
from repro.resilience.atomic import atomic_write

__all__ = ["SeriesTable", "format_value"]


def format_value(value: float | None, precision: int = 3) -> str:
    """Human-friendly numeric formatting for report cells."""
    if value is None:
        return "-"
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    if magnitude >= 1_000_000:
        return f"{value:.3e}"
    if magnitude >= 1000 or value == int(value):
        return f"{value:,.0f}"
    return f"{value:.{precision}f}"


@dataclass
class SeriesTable:
    """A titled table of series over a shared x-axis."""

    title: str
    x_name: str
    x_values: list[str] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def add_series(self, name: str, values: Sequence[float]) -> None:
        """Attach a named series; must match the x-axis length."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise InvalidParameterError(
                f"series {name!r} has {len(values)} values for "
                f"{len(self.x_values)} x points"
            )
        self.series[name] = values

    def value(self, series_name: str, x: str) -> float:
        """Look up one cell by series name and x value."""
        try:
            index = self.x_values.index(x)
        except ValueError:
            raise InvalidParameterError(
                f"x value {x!r} not in {self.x_values!r}"
            ) from None
        return self.series[series_name][index]

    def render(self, precision: int = 3) -> str:
        """ASCII rendering: one row per x value, one column per series."""
        names = list(self.series)
        header = [self.x_name, *names]
        rows = [
            [format_value(x) if isinstance(x, float) else str(x)]
            + [format_value(self.series[name][i], precision) for name in names]
            for i, x in enumerate(self.x_values)
        ]
        widths = [
            max(len(header[c]), *(len(row[c]) for row in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        out = io.StringIO()
        out.write(self.title + "\n")
        out.write(
            "  ".join(header[c].rjust(widths[c]) for c in range(len(header))) + "\n"
        )
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in rows:
            out.write(
                "  ".join(row[c].rjust(widths[c]) for c in range(len(header))) + "\n"
            )
        if self.notes:
            out.write(f"note: {self.notes}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV rendering (header + one row per x value)."""
        names = list(self.series)
        lines = [",".join([self.x_name, *names])]
        for i, x in enumerate(self.x_values):
            cells = [str(x)] + [repr(self.series[name][i]) for name in names]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str | Path) -> Path:
        """Write :meth:`to_csv` to ``path`` atomically (temp-then-rename)."""
        return atomic_write(path, self.to_csv())

    def write_text(self, path: str | Path, precision: int = 3) -> Path:
        """Write :meth:`render` to ``path`` atomically (temp-then-rename)."""
        return atomic_write(path, self.render(precision))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
