"""Parallel sweep execution with deterministic seed spawning.

A *sweep* maps a task function over grid points (sampling rates, skews,
row counts, ...).  The serial figure runners thread one shared generator
through every point, which makes the points order-dependent and
unparallelizable.  This module provides the alternative protocol:

* every grid point ``i`` of a sweep rooted at ``seed`` receives its own
  :class:`numpy.random.SeedSequence` built as
  ``SeedSequence(entropy=seed, spawn_key=(TASK_DOMAIN, i))`` — the
  spawn-key mechanism guarantees the child streams are independent and
  depend only on ``(seed, i)``, never on worker count, scheduling, or
  completion order;
* shared inputs (a column reused by every rate point, a surrogate
  dataset) derive their seeds from their *specification* under
  :data:`DATA_DOMAIN` via :func:`derived_rng`, so any worker that needs
  the same input regenerates the same bytes, and a per-process memo
  (:func:`memoized`) builds it at most once per worker;
* results are collected in submission order, so
  ``run_sweep(fn, points, seed=s, workers=w)`` returns byte-identical
  results for every ``w >= 1`` — one worker runs inline with no pool.

Task functions and grid points must be picklable (module-level functions
and plain data) when ``workers > 1``; the worker rebuilds each point's
generator from ``(seed, index)``, so nothing random crosses process
boundaries.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from concurrent.futures import ProcessPoolExecutor
from typing import Any, NamedTuple, TypeVar

import numpy as np

from repro.errors import InvalidParameterError
from repro.experiments import config
from repro.obs.recorder import OBS

__all__ = [
    "TASK_DOMAIN",
    "DATA_DOMAIN",
    "derived_rng",
    "task_seed",
    "run_sweep",
    "memoized",
    "clear_memo",
    "memo_size",
    "memo_stats",
    "MemoStats",
]

_PointT = TypeVar("_PointT")
_ResultT = TypeVar("_ResultT")

#: Spawn-key namespace for per-grid-point trial streams.
TASK_DOMAIN = 0x7A5C
#: Spawn-key namespace for shared inputs (columns, datasets).
DATA_DOMAIN = 0xDA7A


def task_seed(seed: int, index: int, domain: int = TASK_DOMAIN) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of sweep point ``index``."""
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if index < 0:
        raise InvalidParameterError(f"index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(domain, index))


def derived_rng(
    seed: int, *key: int, domain: int = DATA_DOMAIN
) -> np.random.Generator:
    """A generator on a stream derived from ``(seed, key)``.

    The stream depends only on the root seed and the integer key (all
    components must be non-negative), so two workers deriving a
    generator for the same specification consume identical bytes.
    """
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if any(part < 0 for part in key):
        raise InvalidParameterError(f"key components must be >= 0, got {key!r}")
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(domain, *key))
    return np.random.default_rng(sequence)


def _run_point(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    point: _PointT,
    seed: int,
    index: int,
) -> _ResultT:
    """Execute one grid point on its spawned stream (runs in-worker)."""
    return fn(point, np.random.default_rng(task_seed(seed, index)))


def _run_point_traced(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    point: _PointT,
    seed: int,
    index: int,
) -> tuple[_ResultT, dict[str, Any]]:
    """Worker-side traced variant: result plus the drained telemetry buffer.

    Submitted instead of :func:`_run_point` when the parent's recorder is
    enabled.  The capture is reset first — pool workers may be forked
    with the parent's buffer in memory and are re-used across points —
    so the payload contains exactly this point's spans and counters,
    rooted at its ``sweep.point`` span.
    """
    OBS.begin_capture()
    with OBS.span("sweep.point", index=index):
        result = _run_point(fn, point, seed, index)
    return result, OBS.drain()


def run_sweep(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    points: Iterable[_PointT],
    *,
    seed: int,
    workers: int | None = None,
) -> list[_ResultT]:
    """Map ``fn`` over grid points with deterministic spawned seeds.

    ``fn(point, rng)`` is called once per point with a generator seeded
    from ``(seed, point index)``; results come back in point order.  The
    output is byte-identical for every ``workers`` value: parallelism
    changes scheduling, never streams.  ``workers`` defaults to
    ``REPRO_WORKERS``; with one worker (or one point) the sweep runs
    inline in this process.
    """
    todo: list[_PointT] = list(points)
    count = workers if workers is not None else config.workers()
    if count < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {count}")
    inline = count == 1 or len(todo) <= 1
    realized = 1 if inline else min(count, len(todo))
    with OBS.span(
        "sweep.run", points=len(todo), workers=realized, seed=seed
    ) as sweep_span:
        OBS.gauge("sweep.realized_workers", realized)
        if inline:
            results: list[_ResultT] = []
            for i, point in enumerate(todo):
                with OBS.span("sweep.point", index=i):
                    results.append(_run_point(fn, point, seed, i))
            return results
        with ProcessPoolExecutor(max_workers=realized) as pool:
            if not OBS.enabled:
                futures = [
                    pool.submit(_run_point, fn, point, seed, i)
                    for i, point in enumerate(todo)
                ]
                return [future.result() for future in futures]
            traced = [
                pool.submit(_run_point_traced, fn, point, seed, i)
                for i, point in enumerate(todo)
            ]
            outcomes = [future.result() for future in traced]
        # Absorb worker buffers in submission order once every point is
        # in, so the merged span sequence is deterministic regardless of
        # pool scheduling.
        for _, payload in outcomes:
            OBS.absorb(payload, parent_id=sweep_span.id)
        return [result for result, _ in outcomes]


# ----------------------------------------------------------------------
# Per-process memo for shared sweep inputs
# ----------------------------------------------------------------------
_MEMO: dict[Hashable, Any] = {}
_MEMO_HITS = 0
_MEMO_MISSES = 0


class MemoStats(NamedTuple):
    """Hit/miss/size snapshot of the per-process memo."""

    hits: int
    misses: int
    size: int


def memoized(key: Hashable, build: Callable[[], _ResultT]) -> _ResultT:
    """Build-at-most-once cache, scoped to the current process.

    Sweep tasks use this so a worker that evaluates several grid points
    over the same column (or dataset) materializes it once.  Correctness
    never depends on hits: ``build`` must be deterministic for its key,
    which holds when its randomness comes from :func:`derived_rng` keyed
    by the same specification.  Hits and misses are tallied for
    :func:`memo_stats` and, when telemetry is on, the
    ``executor.memo_hits`` / ``executor.memo_misses`` counters — in a
    parallel sweep those counters are per-process tallies summed at
    merge, so they depend on how the pool scheduled points.
    """
    global _MEMO_HITS, _MEMO_MISSES
    try:
        value = _MEMO[key]
    except KeyError:
        _MEMO_MISSES += 1
        if OBS.enabled:
            OBS.add("executor.memo_misses")
        value = build()
        _MEMO[key] = value
        return value
    _MEMO_HITS += 1
    if OBS.enabled:
        OBS.add("executor.memo_hits")
    return value  # type: ignore[no-any-return]


def clear_memo() -> None:
    """Drop every memo entry *and* its hit/miss tallies (tests, servers)."""
    global _MEMO_HITS, _MEMO_MISSES
    _MEMO.clear()
    _MEMO_HITS = 0
    _MEMO_MISSES = 0


def memo_size() -> int:
    """Number of live per-process memo entries."""
    return len(_MEMO)


def memo_stats() -> MemoStats:
    """Hits, misses, and live entries of the per-process memo."""
    return MemoStats(hits=_MEMO_HITS, misses=_MEMO_MISSES, size=len(_MEMO))
