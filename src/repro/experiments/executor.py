"""Parallel sweep execution with deterministic seed spawning.

A *sweep* maps a task function over grid points (sampling rates, skews,
row counts, ...).  The serial figure runners thread one shared generator
through every point, which makes the points order-dependent and
unparallelizable.  This module provides the alternative protocol:

* every grid point ``i`` of a sweep rooted at ``seed`` receives its own
  :class:`numpy.random.SeedSequence` built as
  ``SeedSequence(entropy=seed, spawn_key=(TASK_DOMAIN, i))`` — the
  spawn-key mechanism guarantees the child streams are independent and
  depend only on ``(seed, i)``, never on worker count, scheduling, or
  completion order;
* shared inputs (a column reused by every rate point, a surrogate
  dataset) derive their seeds from their *specification* under
  :data:`DATA_DOMAIN` via :func:`derived_rng`, so any worker that needs
  the same input regenerates the same bytes, and a per-process memo
  (:func:`memoized`) builds it at most once per worker;
* results are collected in submission order, so
  ``run_sweep(fn, points, seed=s, workers=w)`` returns byte-identical
  results for every ``w >= 1`` — one worker runs inline with no pool.

Task functions and grid points must be picklable (module-level functions
and plain data) when ``workers > 1``; the worker rebuilds each point's
generator from ``(seed, index)``, so nothing random crosses process
boundaries.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

import numpy as np

from repro.errors import InvalidParameterError
from repro.experiments import config

__all__ = [
    "TASK_DOMAIN",
    "DATA_DOMAIN",
    "derived_rng",
    "task_seed",
    "run_sweep",
    "memoized",
    "clear_memo",
    "memo_size",
]

_PointT = TypeVar("_PointT")
_ResultT = TypeVar("_ResultT")

#: Spawn-key namespace for per-grid-point trial streams.
TASK_DOMAIN = 0x7A5C
#: Spawn-key namespace for shared inputs (columns, datasets).
DATA_DOMAIN = 0xDA7A


def task_seed(seed: int, index: int, domain: int = TASK_DOMAIN) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of sweep point ``index``."""
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if index < 0:
        raise InvalidParameterError(f"index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(domain, index))


def derived_rng(
    seed: int, *key: int, domain: int = DATA_DOMAIN
) -> np.random.Generator:
    """A generator on a stream derived from ``(seed, key)``.

    The stream depends only on the root seed and the integer key (all
    components must be non-negative), so two workers deriving a
    generator for the same specification consume identical bytes.
    """
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if any(part < 0 for part in key):
        raise InvalidParameterError(f"key components must be >= 0, got {key!r}")
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(domain, *key))
    return np.random.default_rng(sequence)


def _run_point(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    point: _PointT,
    seed: int,
    index: int,
) -> _ResultT:
    """Execute one grid point on its spawned stream (runs in-worker)."""
    return fn(point, np.random.default_rng(task_seed(seed, index)))


def run_sweep(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    points: Iterable[_PointT],
    *,
    seed: int,
    workers: int | None = None,
) -> list[_ResultT]:
    """Map ``fn`` over grid points with deterministic spawned seeds.

    ``fn(point, rng)`` is called once per point with a generator seeded
    from ``(seed, point index)``; results come back in point order.  The
    output is byte-identical for every ``workers`` value: parallelism
    changes scheduling, never streams.  ``workers`` defaults to
    ``REPRO_WORKERS``; with one worker (or one point) the sweep runs
    inline in this process.
    """
    todo: list[_PointT] = list(points)
    count = workers if workers is not None else config.workers()
    if count < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {count}")
    if count == 1 or len(todo) <= 1:
        return [_run_point(fn, point, seed, i) for i, point in enumerate(todo)]
    with ProcessPoolExecutor(max_workers=min(count, len(todo))) as pool:
        futures = [
            pool.submit(_run_point, fn, point, seed, i)
            for i, point in enumerate(todo)
        ]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Per-process memo for shared sweep inputs
# ----------------------------------------------------------------------
_MEMO: dict[Hashable, Any] = {}


def memoized(key: Hashable, build: Callable[[], _ResultT]) -> _ResultT:
    """Build-at-most-once cache, scoped to the current process.

    Sweep tasks use this so a worker that evaluates several grid points
    over the same column (or dataset) materializes it once.  Correctness
    never depends on hits: ``build`` must be deterministic for its key,
    which holds when its randomness comes from :func:`derived_rng` keyed
    by the same specification.
    """
    try:
        return _MEMO[key]  # type: ignore[return-value]
    except KeyError:
        value = build()
        _MEMO[key] = value
        return value


def clear_memo() -> None:
    """Drop every per-process memo entry (tests and long-lived servers)."""
    _MEMO.clear()


def memo_size() -> int:
    """Number of live per-process memo entries."""
    return len(_MEMO)
