"""Parallel sweep execution with deterministic seed spawning.

A *sweep* maps a task function over grid points (sampling rates, skews,
row counts, ...).  The serial figure runners thread one shared generator
through every point, which makes the points order-dependent and
unparallelizable.  This module provides the alternative protocol:

* every grid point ``i`` of a sweep rooted at ``seed`` receives its own
  :class:`numpy.random.SeedSequence` built as
  ``SeedSequence(entropy=seed, spawn_key=(TASK_DOMAIN, i))`` — the
  spawn-key mechanism guarantees the child streams are independent and
  depend only on ``(seed, i)``, never on worker count, scheduling, or
  completion order;
* shared inputs (a column reused by every rate point, a surrogate
  dataset) derive their seeds from their *specification* under
  :data:`DATA_DOMAIN` via :func:`derived_rng`, so any worker that needs
  the same input regenerates the same bytes, and a per-process memo
  (:func:`memoized`) builds it at most once per worker;
* results are collected in submission order, so
  ``run_sweep(fn, points, seed=s, workers=w)`` returns byte-identical
  results for every ``w >= 1`` — one worker runs inline with no pool.

Task functions and grid points must be picklable (module-level functions
and plain data) when ``workers > 1``; the worker rebuilds each point's
generator from ``(seed, index)``, so nothing random crosses process
boundaries.

Crash safety (see ``docs/robustness.md``): ``run_sweep`` optionally runs
*supervised* — a checkpoint journal records each completed point so a
killed run resumes bit-identically
(:class:`~repro.resilience.journal.SweepJournal`), failed attempts are
retried on their original spawn-key seeds under a
:class:`~repro.resilience.supervisor.RetryPolicy` (bounded retries,
decorrelated-jitter backoff, a progress timeout with pool rebuild on
hangs or ``BrokenProcessPool``), and exhausted budgets degrade to a
:class:`~repro.resilience.supervisor.PartialSweepResult` naming the
exact missing points.  Supervision engages only when asked — a journal
or policy argument, an active :func:`sweep_context` (the ``repro
sweep`` CLI), ``REPRO_RETRIES``/``REPRO_TASK_TIMEOUT``, or a
``REPRO_FAULTS`` plan — so the default path is byte-for-byte the
historical one with no measurable overhead.
"""

from __future__ import annotations

import contextlib
import contextvars
import logging
import time
from collections.abc import Callable, Hashable, Iterable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, NamedTuple, TypeVar

import numpy as np

from repro.errors import InvalidParameterError, SweepGapError
from repro.experiments import config
from repro.obs.recorder import OBS
from repro.resilience import faults
from repro.resilience.journal import SweepJournal, sweep_config_hash, task_key
from repro.resilience.supervisor import PartialSweepResult, RetryPolicy, jitter_delays

__all__ = [
    "TASK_DOMAIN",
    "DATA_DOMAIN",
    "derived_rng",
    "task_seed",
    "run_sweep",
    "sweep_context",
    "SweepContext",
    "memoized",
    "clear_memo",
    "memo_size",
    "memo_stats",
    "MemoStats",
]

_PointT = TypeVar("_PointT")
_ResultT = TypeVar("_ResultT")

_log = logging.getLogger(__name__)

#: Spawn-key namespace for per-grid-point trial streams.
TASK_DOMAIN = 0x7A5C
#: Spawn-key namespace for shared inputs (columns, datasets).
DATA_DOMAIN = 0xDA7A

#: Sentinel distinguishing "no result yet" from a legitimate None result.
_MISSING: Any = object()


def task_seed(seed: int, index: int, domain: int = TASK_DOMAIN) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of sweep point ``index``."""
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if index < 0:
        raise InvalidParameterError(f"index must be >= 0, got {index}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(domain, index))


def derived_rng(
    seed: int, *key: int, domain: int = DATA_DOMAIN
) -> np.random.Generator:
    """A generator on a stream derived from ``(seed, key)``.

    The stream depends only on the root seed and the integer key (all
    components must be non-negative), so two workers deriving a
    generator for the same specification consume identical bytes.
    """
    if seed < 0:
        raise InvalidParameterError(f"seed must be >= 0, got {seed}")
    if any(part < 0 for part in key):
        raise InvalidParameterError(f"key components must be >= 0, got {key!r}")
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(domain, *key))
    return np.random.default_rng(sequence)


def _run_point(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    point: _PointT,
    seed: int,
    index: int,
) -> _ResultT:
    """Execute one grid point on its spawned stream (runs in-worker)."""
    return fn(point, np.random.default_rng(task_seed(seed, index)))


def _run_point_traced(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    point: _PointT,
    seed: int,
    index: int,
) -> tuple[_ResultT, dict[str, Any]]:
    """Worker-side traced variant: result plus the drained telemetry buffer.

    Submitted instead of :func:`_run_point` when the parent's recorder is
    enabled.  The capture is reset first — pool workers may be forked
    with the parent's buffer in memory and are re-used across points —
    so the payload contains exactly this point's spans and counters,
    rooted at its ``sweep.point`` span.
    """
    OBS.begin_capture()
    with OBS.span("sweep.point", index=index):
        result = _run_point(fn, point, seed, index)
    return result, OBS.drain()


def _run_point_supervised(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    point: _PointT,
    seed: int,
    index: int,
    attempt: int,
    traced: bool,
) -> tuple[_ResultT, dict[str, Any] | None]:
    """Worker-side supervised task: fault consult, then the point.

    The fault consult is keyed by ``(index, attempt)``, so an injected
    crash that fired on attempt 0 draws fresh on the retry and a retried
    task can succeed — on exactly the same spawn-key seed, hence with a
    bit-identical result.
    """
    faults.fault_plan().consult("sweep.point", key=index, attempt=attempt)
    if not traced:
        return _run_point(fn, point, seed, index), None
    OBS.begin_capture()
    with OBS.span("sweep.point", index=index):
        result = _run_point(fn, point, seed, index)
    return result, OBS.drain()


# ----------------------------------------------------------------------
# Sweep context: how the CLI threads a journal through exhibit runners
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepContext:
    """Ambient journal/resume/policy settings for nested ``run_sweep`` calls."""

    journal: str | Path | SweepJournal | None = None
    resume: bool = False
    policy: RetryPolicy | None = None


_SWEEP_CONTEXT: contextvars.ContextVar[SweepContext | None] = contextvars.ContextVar(
    "repro_sweep_context", default=None
)


@contextlib.contextmanager
def sweep_context(
    journal: str | Path | SweepJournal | None = None,
    resume: bool = False,
    policy: RetryPolicy | None = None,
) -> Iterator[SweepContext]:
    """Make every ``run_sweep`` inside the block supervised.

    The ``repro sweep`` command wraps :func:`run_experiment` in this so
    figure runners journal their sweeps without any signature changes;
    explicit ``run_sweep`` arguments still win over the context.
    """
    context = SweepContext(journal=journal, resume=resume, policy=policy)
    token = _SWEEP_CONTEXT.set(context)
    try:
        yield context
    finally:
        _SWEEP_CONTEXT.reset(token)


def run_sweep(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    points: Iterable[_PointT],
    *,
    seed: int,
    workers: int | None = None,
    journal: str | Path | SweepJournal | None = None,
    resume: bool = False,
    policy: RetryPolicy | None = None,
    on_gap: str = "raise",
) -> list[_ResultT] | PartialSweepResult:
    """Map ``fn`` over grid points with deterministic spawned seeds.

    ``fn(point, rng)`` is called once per point with a generator seeded
    from ``(seed, point index)``; results come back in point order.  The
    output is byte-identical for every ``workers`` value: parallelism
    changes scheduling, never streams.  ``workers`` defaults to
    ``REPRO_WORKERS``; with one worker (or one point) the sweep runs
    inline in this process.

    Supervision (off unless requested — see the module docstring):
    ``journal`` checkpoints each completed point so ``resume=True``
    skips them on the next run; ``policy`` bounds retries and hangs;
    ``on_gap`` picks what happens when retries are exhausted —
    ``"raise"`` (default) raises :class:`~repro.errors.SweepGapError`
    naming the missing points, ``"partial"`` returns the
    :class:`PartialSweepResult` itself.
    """
    todo: list[_PointT] = list(points)
    count = workers if workers is not None else config.workers()
    if count < 1:
        raise InvalidParameterError(f"workers must be >= 1, got {count}")
    if on_gap not in ("raise", "partial"):
        raise InvalidParameterError(
            f"on_gap must be 'raise' or 'partial', got {on_gap!r}"
        )
    context = _SWEEP_CONTEXT.get()
    if journal is None and context is not None:
        journal = context.journal
        resume = resume or context.resume
        if policy is None:
            policy = context.policy
    if policy is None:
        policy = RetryPolicy.from_env()
    supervised = (
        journal is not None
        or resume
        or policy is not None
        or faults.fault_plan().enabled
    )
    if not supervised:
        return _run_fast(fn, todo, seed, count)
    return _run_supervised(
        fn, todo, seed, count, journal, resume, policy or RetryPolicy(), on_gap
    )


def _run_fast(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    todo: list[_PointT],
    seed: int,
    count: int,
) -> list[_ResultT]:
    """The historical unsupervised path (bit- and perf-frozen)."""
    inline = count == 1 or len(todo) <= 1
    realized = 1 if inline else min(count, len(todo))
    with OBS.span(
        "sweep.run", points=len(todo), workers=realized, seed=seed
    ) as sweep_span:
        OBS.gauge("sweep.realized_workers", realized)
        if inline:
            results: list[_ResultT] = []
            for i, point in enumerate(todo):
                with OBS.span("sweep.point", index=i):
                    results.append(_run_point(fn, point, seed, i))
            return results
        with ProcessPoolExecutor(max_workers=realized) as pool:
            if not OBS.enabled:
                futures = [
                    pool.submit(_run_point, fn, point, seed, i)
                    for i, point in enumerate(todo)
                ]
                return [future.result() for future in futures]
            traced = [
                pool.submit(_run_point_traced, fn, point, seed, i)
                for i, point in enumerate(todo)
            ]
            outcomes = [future.result() for future in traced]
        # Absorb worker buffers in submission order once every point is
        # in, so the merged span sequence is deterministic regardless of
        # pool scheduling.  Each payload gets its own track so trace
        # exports keep worker timelines in separate lanes (worker clocks
        # restart at begin_capture and only order within one payload).
        for track, (_, payload) in enumerate(outcomes, start=1):
            OBS.absorb(payload, parent_id=sweep_span.id, track=track)
        return [result for result, _ in outcomes]


# ----------------------------------------------------------------------
# Supervised execution: journal, retries, timeouts, pool recovery
# ----------------------------------------------------------------------
def _task_name(fn: Callable[..., Any]) -> str:
    return f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"


def _run_supervised(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    todo: list[_PointT],
    seed: int,
    count: int,
    journal: str | Path | SweepJournal | None,
    resume: bool,
    policy: RetryPolicy,
    on_gap: str,
) -> list[_ResultT] | PartialSweepResult:
    task = _task_name(fn)
    journal_obj: SweepJournal | None = None
    owns_journal = False
    completed: dict[int, Any] = {}
    if journal is not None:
        if isinstance(journal, SweepJournal):
            journal_obj = journal
        else:
            journal_obj = SweepJournal(journal)
            owns_journal = True
        completed = journal_obj.begin(
            sweep_config_hash(task, seed, todo),
            seed=seed,
            points=len(todo),
            task=task,
            resume=resume,
        )
        if OBS.enabled:
            OBS.add("resilience.journal_hits", journal_obj.hits)
            OBS.add("resilience.journal_misses", journal_obj.misses)
        if completed:
            _log.info(
                "resuming sweep from %s: %d/%d points already journaled",
                journal_obj.path,
                len(completed),
                len(todo),
            )
    results: list[Any] = [completed.get(i, _MISSING) for i in range(len(todo))]
    pending = [i for i in range(len(todo)) if i not in completed]
    errors: dict[int, str] = {}
    inline = count == 1 or len(pending) <= 1
    realized = 1 if inline else min(count, len(pending))
    try:
        with OBS.span(
            "sweep.run",
            points=len(todo),
            workers=realized,
            seed=seed,
            supervised=True,
            resumed=len(completed),
        ) as sweep_span:
            OBS.gauge("sweep.realized_workers", realized)
            if inline:
                payloads = _supervised_inline(
                    fn, todo, seed, pending, policy, results, errors, journal_obj
                )
            else:
                payloads = _supervised_pool(
                    fn, todo, seed, pending, realized, policy, results, errors,
                    journal_obj,
                )
            # Absorb recomputed points' worker buffers in index order so
            # the merged sequence is deterministic for a fixed pending set.
            for track, index in enumerate(sorted(payloads), start=1):
                OBS.absorb(payloads[index], parent_id=sweep_span.id, track=track)
    finally:
        if owns_journal and journal_obj is not None:
            journal_obj.close()
    missing = [i for i in range(len(todo)) if results[i] is _MISSING]
    if not missing:
        return results
    if OBS.enabled:
        OBS.add("resilience.gaps", len(missing))
    partial = PartialSweepResult(
        [None if value is _MISSING else value for value in results],
        missing,
        errors,
    )
    _log.error("sweep incomplete: %s", partial.describe())
    if on_gap == "raise":
        raise SweepGapError(
            f"sweep incomplete after retries — {partial.describe()}", partial
        )
    return partial


def _checkpoint(
    journal_obj: SweepJournal | None, seed: int, index: int, value: Any, attempt: int
) -> None:
    if journal_obj is not None:
        journal_obj.record(
            index, value, key=task_key(seed, TASK_DOMAIN, index), attempt=attempt
        )


def _supervised_inline(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    todo: list[_PointT],
    seed: int,
    pending: list[int],
    policy: RetryPolicy,
    results: list[Any],
    errors: dict[int, str],
    journal_obj: SweepJournal | None,
) -> dict[int, dict[str, Any]]:
    """Single-process supervised loop (no timeouts: same-process tasks)."""
    plan = faults.fault_plan()
    for index in pending:
        delays = jitter_delays(seed, index, policy)
        for attempt in range(policy.retries + 1):
            try:
                plan.consult("sweep.point", key=index, attempt=attempt)
                with OBS.span("sweep.point", index=index):
                    value = _run_point(fn, todo[index], seed, index)
            except Exception as exc:
                errors[index] = f"{type(exc).__name__}: {exc}"
                _log.warning(
                    "sweep point %d attempt %d failed: %s", index, attempt, exc
                )
                if attempt < policy.retries:
                    if OBS.enabled:
                        OBS.add("resilience.retries")
                    delay = next(delays)
                    if delay > 0:
                        time.sleep(delay)
                continue
            results[index] = value
            errors.pop(index, None)
            _checkpoint(journal_obj, seed, index, value, attempt)
            break
    return {}


def _supervised_pool(
    fn: Callable[[_PointT, np.random.Generator], _ResultT],
    todo: list[_PointT],
    seed: int,
    pending: list[int],
    realized: int,
    policy: RetryPolicy,
    results: list[Any],
    errors: dict[int, str],
    journal_obj: SweepJournal | None,
) -> dict[int, dict[str, Any]]:
    """Pooled supervised loop: retries, progress timeout, pool rebuild.

    The timeout is a *progress watchdog*: when no task completes within
    ``policy.timeout`` seconds, futures still running are presumed hung
    and charged a retry, the pool is torn down (hung workers are
    killed), and everything outstanding is resubmitted.  A worker that
    died outright surfaces as ``BrokenProcessPool`` on every in-flight
    future; each is charged one retry (the culprit is indistinguishable
    post-mortem) and the pool is rebuilt.
    """
    traced = OBS.enabled
    payloads: dict[int, dict[str, Any]] = {}
    attempts: dict[int, int] = {index: 0 for index in pending}
    outstanding = set(pending)
    delays = {index: jitter_delays(seed, index, policy) for index in pending}
    pool = ProcessPoolExecutor(max_workers=realized)
    active: dict[Future[Any], int] = {}

    def submit(index: int) -> None:
        future = pool.submit(
            _run_point_supervised, fn, todo[index], seed, index,
            attempts[index], traced,
        )
        active[future] = index

    def charge_retry(index: int, message: str) -> bool:
        """Record a failed attempt; True when the point may retry."""
        errors[index] = message
        if attempts[index] < policy.retries:
            attempts[index] += 1
            if OBS.enabled:
                OBS.add("resilience.retries")
            return True
        outstanding.discard(index)
        _log.warning("sweep point %d exhausted its retry budget: %s", index, message)
        return False

    def rebuild_pool() -> None:
        nonlocal pool
        if OBS.enabled:
            OBS.add("resilience.pool_rebuilds")
        _log.warning(
            "rebuilding worker pool (%d point(s) outstanding)", len(outstanding)
        )
        # Hung workers never return; kill them so shutdown cannot block.
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            process.kill()
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=realized)
        active.clear()
        for index in sorted(outstanding):
            submit(index)

    try:
        for index in pending:
            submit(index)
        while active:
            done, _ = wait(
                set(active), timeout=policy.timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                if OBS.enabled:
                    OBS.add("resilience.timeouts")
                for future, index in list(active.items()):
                    if future.running():
                        charge_retry(
                            index,
                            f"no progress within {policy.timeout}s (presumed hang)",
                        )
                rebuild_pool()
                continue
            broken = False
            for future in done:
                index = active.pop(future)
                try:
                    value, payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    charge_retry(index, "worker process died (BrokenProcessPool)")
                except Exception as exc:
                    _log.warning(
                        "sweep point %d attempt %d failed: %s",
                        index,
                        attempts[index],
                        exc,
                    )
                    if charge_retry(index, f"{type(exc).__name__}: {exc}"):
                        delay = next(delays[index])
                        if delay > 0:
                            time.sleep(delay)
                        submit(index)
                else:
                    results[index] = value
                    outstanding.discard(index)
                    errors.pop(index, None)
                    if payload is not None:
                        payloads[index] = payload
                    _checkpoint(journal_obj, seed, index, value, attempts[index])
            if broken:
                rebuild_pool()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return payloads


# ----------------------------------------------------------------------
# Per-process memo for shared sweep inputs
# ----------------------------------------------------------------------
_MEMO: dict[Hashable, Any] = {}
_MEMO_HITS = 0
_MEMO_MISSES = 0


class MemoStats(NamedTuple):
    """Hit/miss/size snapshot of the per-process memo."""

    hits: int
    misses: int
    size: int


def memoized(key: Hashable, build: Callable[[], _ResultT]) -> _ResultT:  # reprolint: disable=R1101 - per-process cache by contract: build is deterministic per key, so workers rebuilding independently is correct; hit/miss tallies are documented as per-process
    """Build-at-most-once cache, scoped to the current process.

    Sweep tasks use this so a worker that evaluates several grid points
    over the same column (or dataset) materializes it once.  Correctness
    never depends on hits: ``build`` must be deterministic for its key,
    which holds when its randomness comes from :func:`derived_rng` keyed
    by the same specification.  Hits and misses are tallied for
    :func:`memo_stats` and, when telemetry is on, the
    ``executor.memo_hits`` / ``executor.memo_misses`` counters — in a
    parallel sweep those counters are per-process tallies summed at
    merge, so they depend on how the pool scheduled points.
    """
    global _MEMO_HITS, _MEMO_MISSES
    try:
        value = _MEMO[key]
    except KeyError:
        _MEMO_MISSES += 1
        if OBS.enabled:
            OBS.add("executor.memo_misses")
        value = build()
        _MEMO[key] = value
        return value
    _MEMO_HITS += 1
    if OBS.enabled:
        OBS.add("executor.memo_hits")
    return value  # type: ignore[no-any-return]


def clear_memo() -> None:
    """Drop every memo entry *and* its hit/miss tallies (tests, servers)."""
    global _MEMO_HITS, _MEMO_MISSES
    _MEMO.clear()
    _MEMO_HITS = 0
    _MEMO_MISSES = 0


def memo_size() -> int:
    """Number of live per-process memo entries."""
    return len(_MEMO)


def memo_stats() -> MemoStats:
    """Hits, misses, and live entries of the per-process memo."""
    return MemoStats(hits=_MEMO_HITS, misses=_MEMO_MISSES, size=len(_MEMO))
