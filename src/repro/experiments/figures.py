"""Runners that regenerate every table and figure of the paper's §6.

Each ``fig*``/``table*`` function reproduces one exhibit and returns a
:class:`~repro.experiments.report.SeriesTable` holding the same series
the paper plots.  The registry :data:`EXPERIMENTS` maps exhibit ids
(``"fig1"`` ... ``"fig16"``, ``"table1"``, ``"table2"``, ``"theorem1"``)
to zero-argument callables with the paper's parameters baked in; the
benchmark suite executes the registry one exhibit per file.

All runners honour ``REPRO_SCALE`` / ``REPRO_TRIALS`` (see
:mod:`repro.experiments.config`) and take a ``seed`` so runs are
reproducible.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.base import ratio_error
from repro.core.gee import GEE
from repro.core.registry import PAPER_ESTIMATORS, make_estimators
from repro.core.theory import adversarial_pair, lower_bound_error
from repro.data.surrogates import DATASETS, Dataset
from repro.data.synthetic import bounded_scaleup_column, unbounded_scaleup_column
from repro.data.zipf import zipf_column
from repro.errors import InvalidParameterError
from repro.experiments import config
from repro.experiments.harness import evaluate_column
from repro.experiments.report import SeriesTable
from repro.sampling.schemes import UniformWithoutReplacement

__all__ = [
    "error_vs_sampling_rate",
    "variance_vs_sampling_rate",
    "error_vs_skew",
    "error_vs_duplication",
    "gee_interval_table",
    "scaleup_bounded",
    "scaleup_unbounded",
    "real_dataset_metric",
    "theorem1_comparison",
    "stability_comparison",
    "EXPERIMENTS",
    "run_experiment",
]

_METRICS = ("error", "stddev")


def _metric_value(summary, metric: str) -> float:
    if metric == "error":
        return summary.mean_ratio_error
    if metric == "stddev":
        return summary.std_fraction
    raise InvalidParameterError(f"metric must be one of {_METRICS}, got {metric!r}")


def _trials(trials: int | None) -> int:
    return trials if trials is not None else config.trials()


# ----------------------------------------------------------------------
# Synthetic sweeps (Figures 1-8, Tables 1-2)
# ----------------------------------------------------------------------
def error_vs_sampling_rate(
    z: float,
    duplication: int,
    n_rows: int | None = None,
    fractions: Sequence[float] = config.SAMPLING_FRACTIONS,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
    metric: str = "error",
) -> SeriesTable:
    """Figures 1/2 (metric='error') and 3/4 (metric='stddev')."""
    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=duplication
    )
    column = zipf_column(n, z, duplication=duplication, rng=rng)
    suite = make_estimators(estimators)
    label = "mean ratio error" if metric == "error" else "stddev / D"
    table = SeriesTable(
        title=(
            f"{label} vs sampling rate "
            f"(Z={z:g}, dup={duplication}, n={n:,}, D={column.distinct_count:,})"
        ),
        x_name="rate",
        x_values=[f"{f:.1%}" for f in fractions],
    )
    rows: dict[str, list[float]] = {e.name: [] for e in suite}
    for fraction in fractions:
        result = evaluate_column(
            column, suite, rng, fraction=fraction, trials=_trials(trials)
        )
        for estimator in suite:
            rows[estimator.name].append(
                _metric_value(result[estimator.name], metric)
            )
    for name, values in rows.items():
        table.add_series(name, values)
    return table


def variance_vs_sampling_rate(z: float, duplication: int, **kwargs) -> SeriesTable:
    """Figures 3/4: estimator stddev (as a fraction of D) vs sampling rate."""
    return error_vs_sampling_rate(z, duplication, metric="stddev", **kwargs)


def error_vs_skew(
    fraction: float,
    duplication: int = 100,
    n_rows: int | None = None,
    skews: Sequence[float] = config.SKEW_VALUES,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figures 5 (0.8% rate) and 6 (6.4% rate): error vs Zipf skew."""
    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=duplication
    )
    suite = make_estimators(estimators)
    table = SeriesTable(
        title=(
            f"mean ratio error vs skew "
            f"(rate={fraction:.1%}, dup={duplication}, n={n:,})"
        ),
        x_name="Z",
        x_values=[f"{z:g}" for z in skews],
    )
    rows: dict[str, list[float]] = {e.name: [] for e in suite}
    for z in skews:
        column = zipf_column(n, z, duplication=duplication, rng=rng)
        result = evaluate_column(
            column, suite, rng, fraction=fraction, trials=_trials(trials)
        )
        for estimator in suite:
            rows[estimator.name].append(result[estimator.name].mean_ratio_error)
    for name, values in rows.items():
        table.add_series(name, values)
    return table


def error_vs_duplication(
    fraction: float,
    z: float = 1.0,
    n_rows: int | None = None,
    duplications: Sequence[int] = config.DUPLICATION_FACTORS,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figures 7 (0.8% rate) and 8 (6.4% rate): error vs duplication factor."""
    rng = np.random.default_rng(seed)
    base_n = n_rows if n_rows is not None else config.PAPER_ROWS
    suite = make_estimators(estimators)
    table = SeriesTable(
        title=f"mean ratio error vs duplication (rate={fraction:.1%}, Z={z:g})",
        x_name="dup",
        x_values=[str(dup) for dup in duplications],
    )
    rows: dict[str, list[float]] = {e.name: [] for e in suite}
    for dup in duplications:
        n = config.scaled_rows(base_n, keep_divisible_by=dup)
        column = zipf_column(n, z, duplication=dup, rng=rng)
        result = evaluate_column(
            column, suite, rng, fraction=fraction, trials=_trials(trials)
        )
        for estimator in suite:
            rows[estimator.name].append(result[estimator.name].mean_ratio_error)
    for name, values in rows.items():
        table.add_series(name, values)
    return table


def gee_interval_table(
    z: float,
    duplication: int = 100,
    n_rows: int | None = None,
    fractions: Sequence[float] = config.SAMPLING_FRACTIONS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Tables 1 (Z=0) and 2 (Z=2): GEE's [LOWER, UPPER] interval vs rate."""
    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=duplication
    )
    column = zipf_column(n, z, duplication=duplication, rng=rng)
    gee = GEE()
    table = SeriesTable(
        title=(
            f"GEE error guarantee (Z={z:g}, dup={duplication}, n={n:,})"
        ),
        x_name="rate",
        x_values=[f"{f:.1%}" for f in fractions],
        notes="ACTUAL must always lie within [LOWER, UPPER]",
    )
    actual, lower, upper, estimate = [], [], [], []
    for fraction in fractions:
        result = evaluate_column(
            column, [gee], rng, fraction=fraction, trials=_trials(trials)
        )
        summary = result[gee.name]
        actual.append(float(column.distinct_count))
        lower.append(summary.mean_lower)
        upper.append(summary.mean_upper)
        estimate.append(summary.mean_estimate)
    table.add_series("ACTUAL", actual)
    table.add_series("LOWER", lower)
    table.add_series("UPPER", upper)
    table.add_series("GEE", estimate)
    return table


# ----------------------------------------------------------------------
# Scale-up (Figures 9-10)
# ----------------------------------------------------------------------
def scaleup_bounded(
    row_counts: Sequence[int] | None = None,
    base_rows: int = 1000,
    z: float = 2.0,
    sample_size: int = 10_000,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figure 9: fixed D and fixed 10K-row sample while n grows."""
    rng = np.random.default_rng(seed)
    divisor = config.scale_divisor()
    if row_counts is None:
        row_counts = [k * 100_000 for k in range(1, 11)]
    row_counts = [max(base_rows, n // divisor - (n // divisor) % base_rows)
                  for n in row_counts]
    sample_size = max(100, sample_size // divisor)
    suite = make_estimators(estimators)
    table = SeriesTable(
        title=(
            f"bounded-domain scaleup (Z={z:g}, base={base_rows}, "
            f"sample={sample_size:,} rows fixed)"
        ),
        x_name="n",
        x_values=[f"{n:,}" for n in row_counts],
    )
    rows: dict[str, list[float]] = {e.name: [] for e in suite}
    for n in row_counts:
        column = bounded_scaleup_column(n, base_rows=base_rows, z=z, rng=rng)
        result = evaluate_column(
            column, suite, rng, size=min(sample_size, n), trials=_trials(trials)
        )
        for estimator in suite:
            rows[estimator.name].append(result[estimator.name].mean_ratio_error)
    for name, values in rows.items():
        table.add_series(name, values)
    return table


def scaleup_unbounded(
    row_counts: Sequence[int] | None = None,
    duplication: int = 100,
    z: float = 2.0,
    fraction: float = 0.016,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figure 10: fixed sampling fraction while n (and D) grow."""
    rng = np.random.default_rng(seed)
    divisor = config.scale_divisor()
    if row_counts is None:
        row_counts = [k * 100_000 for k in range(1, 11)]
    row_counts = [
        max(duplication, n // divisor - (n // divisor) % duplication)
        for n in row_counts
    ]
    suite = make_estimators(estimators)
    table = SeriesTable(
        title=(
            f"unbounded-domain scaleup (Z={z:g}, dup={duplication}, "
            f"rate={fraction:.1%})"
        ),
        x_name="n",
        x_values=[f"{n:,}" for n in row_counts],
    )
    rows: dict[str, list[float]] = {e.name: [] for e in suite}
    for n in row_counts:
        column = unbounded_scaleup_column(n, duplication=duplication, z=z, rng=rng)
        result = evaluate_column(
            column, suite, rng, fraction=fraction, trials=_trials(trials)
        )
        for estimator in suite:
            rows[estimator.name].append(result[estimator.name].mean_ratio_error)
    for name, values in rows.items():
        table.add_series(name, values)
    return table


# ----------------------------------------------------------------------
# Real-world surrogates (Figures 11-16)
# ----------------------------------------------------------------------
def real_dataset_metric(
    dataset_name: str,
    metric: str = "error",
    fractions: Sequence[float] = config.SAMPLING_FRACTIONS,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
    dataset: Dataset | None = None,
) -> SeriesTable:
    """Figures 11-16: per-estimator mean error / stddev over all columns.

    ``dataset`` may be passed in to share one generated surrogate across
    the error and variance exhibits of the same dataset.
    """
    rng = np.random.default_rng(seed)
    if dataset is None:
        try:
            factory = DATASETS[dataset_name]
        except KeyError:
            known = ", ".join(sorted(DATASETS))
            raise InvalidParameterError(
                f"unknown dataset {dataset_name!r}; known: {known}"
            ) from None
        dataset = factory(rng, scale=1.0 / config.scale_divisor())
    suite = make_estimators(estimators)
    label = "mean ratio error" if metric == "error" else "stddev / D"
    table = SeriesTable(
        title=(
            f"{label} over all {len(dataset)} columns of {dataset.name} "
            f"(n={dataset.n_rows:,})"
        ),
        x_name="rate",
        x_values=[f"{f:.1%}" for f in fractions],
    )
    rows: dict[str, list[float]] = {e.name: [] for e in suite}
    for fraction in fractions:
        totals = {e.name: 0.0 for e in suite}
        for column in dataset:
            result = evaluate_column(
                column, suite, rng, fraction=fraction, trials=_trials(trials)
            )
            for estimator in suite:
                totals[estimator.name] += _metric_value(
                    result[estimator.name], metric
                )
        for name, total in totals.items():
            rows[name].append(total / len(dataset))
    for name, values in rows.items():
        table.add_series(name, values)
    return table


# ----------------------------------------------------------------------
# Theorem 1 (Section 3's numeric comparison)
# ----------------------------------------------------------------------
def theorem1_comparison(
    n_rows: int | None = None,
    fraction: float = 0.2,
    gamma: float = 0.5,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Section 3's check: observed errors on the adversarial pair vs the bound.

    For each estimator, samples both Theorem-1 scenarios and reports the
    larger of the two mean ratio errors; no estimator can beat the
    ``sqrt((n-r)/(2r) ln(1/gamma))`` floor on both scenarios at once.
    """
    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(100_000)
    r = max(1, int(round(fraction * n)))
    pair = adversarial_pair(n, r, gamma=gamma, rng=rng)
    suite = make_estimators(estimators)
    sampler = UniformWithoutReplacement()
    table = SeriesTable(
        title=(
            f"Theorem 1 adversarial pair (n={n:,}, r={r:,}, gamma={gamma}, "
            f"k={pair.k})"
        ),
        x_name="estimator",
        x_values=[e.name for e in suite],
        notes=(
            "worst = max(mean error on Scenario A, mean error on Scenario B); "
            "Theorem 1 floor applies to worst"
        ),
    )
    floor = lower_bound_error(n, r, gamma=gamma)
    errors_a, errors_b, worst = [], [], []
    for estimator in suite:
        per_scenario = []
        for data, truth in (
            (pair.scenario_a, pair.distinct_a),
            (pair.scenario_b, pair.distinct_b),
        ):
            total = 0.0
            runs = _trials(trials)
            for _ in range(runs):
                profile = sampler.profile(data, rng, size=r)
                value = estimator.estimate(profile, n).value
                total += ratio_error(value, truth)
            per_scenario.append(total / runs)
        errors_a.append(per_scenario[0])
        errors_b.append(per_scenario[1])
        worst.append(max(per_scenario))
    table.add_series("scenario_A", errors_a)
    table.add_series("scenario_B", errors_b)
    table.add_series("worst", worst)
    table.add_series("theorem1_floor", [floor] * len(suite))
    return table


# ----------------------------------------------------------------------
# Extension exhibit: hybrid instability (the §5.2 argument, quantified)
# ----------------------------------------------------------------------
def stability_comparison(
    n_rows: int | None = None,
    fraction: float = 0.005,
    estimators: Sequence[str] = ("AE", "GEE", "HYBGEE", "HYBSKEW", "HYBVAR", "DUJ2A"),
    replicates: int = 120,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Bootstrap instability of each estimator on boundary-skew data.

    Section 5.2's critique of hybrids: near the skew-test decision
    boundary "some random samples result in the choice of one estimator
    while others cause the other to be chosen ... resulting in high
    variance".  This exhibit measures it directly: for each estimator,
    the bootstrap coefficient of variation (replicate std / estimate)
    averaged over several samples of a column whose estimated CV^2 sits
    astride HYBVAR's branch threshold (the Figure 9 workload, ~13.4 vs
    the 12.5 cut at every scale), so replicates genuinely flip branches.
    The hybrids score markedly worse than the smooth estimators.
    """
    from repro.core.uncertainty import bootstrap_estimate
    from repro.data.synthetic import bounded_scaleup_column

    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=1000
    )
    column = bounded_scaleup_column(n, base_rows=1000, z=2.0, rng=rng)
    suite = make_estimators(estimators)
    sampler = UniformWithoutReplacement()
    table = SeriesTable(
        title=(
            f"bootstrap instability on branch-boundary data "
            f"(bounded-scaleup Z=2, n={n:,}, rate={fraction:.1%})"
        ),
        x_name="estimator",
        x_values=[e.name for e in suite],
        notes="cv = bootstrap replicate std / estimate, averaged over samples",
    )
    from repro.core.uncertainty import bootstrap_profile

    runs = _trials(trials)
    cvs, errors, flip_rates = [], [], []
    for estimator in suite:
        cv_total, err_total = 0.0, 0.0
        flips, branch_observations = 0, 0
        for _ in range(runs):
            profile = sampler.profile(column.values, rng, fraction=fraction)
            summary = bootstrap_estimate(
                estimator, profile, n, rng, replicates=replicates
            )
            cv_total += summary.std / max(summary.estimate, 1.0)
            err_total += ratio_error(summary.estimate, column.distinct_count)
            # Branch-flip rate: how often a resampled profile routes a
            # hybrid to a different branch than the original sample did.
            original = estimator.estimate(profile, n).details.get("branch")
            if original is not None:
                for _ in range(20):
                    replicate = bootstrap_profile(profile, rng)
                    branch = estimator.estimate(replicate, n).details.get("branch")
                    branch_observations += 1
                    flips += branch != original
        cvs.append(cv_total / runs)
        errors.append(err_total / runs)
        flip_rates.append(
            flips / branch_observations if branch_observations else 0.0
        )
    table.add_series("bootstrap_cv", cvs)
    table.add_series("branch_flip_rate", flip_rates)
    table.add_series("mean_ratio_error", errors)
    return table


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS = {
    "fig1": lambda **kw: error_vs_sampling_rate(z=0.0, duplication=100, **kw),
    "fig2": lambda **kw: error_vs_sampling_rate(z=2.0, duplication=100, **kw),
    "fig3": lambda **kw: variance_vs_sampling_rate(z=0.0, duplication=100, **kw),
    "fig4": lambda **kw: variance_vs_sampling_rate(z=2.0, duplication=100, **kw),
    "fig5": lambda **kw: error_vs_skew(fraction=0.008, **kw),
    "fig6": lambda **kw: error_vs_skew(fraction=0.064, **kw),
    "table1": lambda **kw: gee_interval_table(z=0.0, **kw),
    "table2": lambda **kw: gee_interval_table(z=2.0, **kw),
    "fig7": lambda **kw: error_vs_duplication(fraction=0.008, **kw),
    "fig8": lambda **kw: error_vs_duplication(fraction=0.064, **kw),
    "fig9": lambda **kw: scaleup_bounded(**kw),
    "fig10": lambda **kw: scaleup_unbounded(**kw),
    "fig11": lambda **kw: real_dataset_metric("Census", metric="error", **kw),
    "fig12": lambda **kw: real_dataset_metric("Census", metric="stddev", **kw),
    "fig13": lambda **kw: real_dataset_metric("CoverType", metric="error", **kw),
    "fig14": lambda **kw: real_dataset_metric("CoverType", metric="stddev", **kw),
    "fig15": lambda **kw: real_dataset_metric("MSSales", metric="error", **kw),
    "fig16": lambda **kw: real_dataset_metric("MSSales", metric="stddev", **kw),
    "theorem1": lambda **kw: theorem1_comparison(**kw),
    "stability": lambda **kw: stability_comparison(**kw),
}


def run_experiment(exhibit_id: str, **kwargs) -> SeriesTable:
    """Run one registered exhibit by id (``"fig1"`` ... ``"theorem1"``)."""
    try:
        runner = EXPERIMENTS[exhibit_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise InvalidParameterError(
            f"unknown exhibit {exhibit_id!r}; known: {known}"
        ) from None
    return runner(**kwargs)
