"""Runners that regenerate every table and figure of the paper's §6.

Each ``fig*``/``table*`` function reproduces one exhibit and returns a
:class:`~repro.experiments.report.SeriesTable` holding the same series
the paper plots.  The registry :data:`EXPERIMENTS` maps exhibit ids
(``"fig1"`` ... ``"fig16"``, ``"table1"``, ``"table2"``, ``"theorem1"``)
to zero-argument callables with the paper's parameters baked in; the
benchmark suite executes the registry one exhibit per file.

All runners honour ``REPRO_SCALE`` / ``REPRO_TRIALS`` (see
:mod:`repro.experiments.config`) and take a ``seed`` so runs are
reproducible.

Grid sweeps run under either of two seeding protocols (selected by
``REPRO_WORKERS`` / ``REPRO_SEED_MODE``, see
:mod:`repro.experiments.executor` and ``docs/performance.md``):

* **legacy** (the default on a single worker): one generator threads
  sequentially through column generation and every grid point, exactly
  reproducing the numbers of earlier releases;
* **spawn**: every grid point draws from an independent child stream
  derived from the root seed and its grid index, and shared inputs
  (columns, datasets) derive theirs from their specification — results
  are then byte-identical for *any* worker count, and points can be
  executed in parallel processes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import ratio_error
from repro.core.gee import GEE
from repro.core.registry import PAPER_ESTIMATORS, make_estimators
from repro.core.theory import adversarial_pair, lower_bound_error
from repro.data.column import Column
from repro.data.surrogates import DATASETS, Dataset
from repro.data.synthetic import bounded_scaleup_column, unbounded_scaleup_column
from repro.data.zipf import zipf_column
from repro.errors import InvalidParameterError
from repro.experiments import config, executor
from repro.experiments.harness import (
    EstimatorSummary,
    EvaluationResult,
    evaluate_column,
)
from repro.experiments.report import SeriesTable
from repro.obs.recorder import OBS
from repro.sampling.schemes import UniformWithoutReplacement

__all__ = [
    "error_vs_sampling_rate",
    "variance_vs_sampling_rate",
    "error_vs_skew",
    "error_vs_duplication",
    "gee_interval_table",
    "scaleup_bounded",
    "scaleup_unbounded",
    "real_dataset_metric",
    "theorem1_comparison",
    "stability_comparison",
    "EXPERIMENTS",
    "run_experiment",
]

_METRICS = ("error", "stddev")


def _metric_value(summary: EstimatorSummary, metric: str) -> float:
    if metric == "error":
        return summary.mean_ratio_error
    if metric == "stddev":
        return summary.std_fraction
    raise InvalidParameterError(f"metric must be one of {_METRICS}, got {metric!r}")


def _trials(trials: int | None) -> int:
    return trials if trials is not None else config.trials()


def _series_names(
    results: Sequence[EvaluationResult], estimators: Sequence[str]
) -> list[str]:
    """Canonical estimator series names for a sweep's result list."""
    if results:
        return list(results[0].summaries)
    return [e.name for e in make_estimators(estimators)]


# ----------------------------------------------------------------------
# Sweep task machinery (the spawn-seeded, process-parallel protocol)
# ----------------------------------------------------------------------
_KIND_ZIPF, _KIND_BOUNDED, _KIND_UNBOUNDED = 1, 2, 3


@dataclass(frozen=True)
class _ColumnSpec:
    """Deterministic description of a synthetic column.

    ``factor`` is the duplication factor for zipf/unbounded columns and
    ``base_rows`` for the bounded-scaleup workload.  The spec — not a
    generator state — keys the column's random stream, so every worker
    that needs the column regenerates identical bytes.
    """

    kind: int
    n_rows: int
    z: float
    factor: int

    @property
    def key(self) -> tuple[int, int, int, int]:
        return (self.kind, self.n_rows, int(round(self.z * 1000)), self.factor)

    def build(self, rng: np.random.Generator) -> Column:
        if self.kind == _KIND_ZIPF:
            return zipf_column(self.n_rows, self.z, duplication=self.factor, rng=rng)
        if self.kind == _KIND_BOUNDED:
            return bounded_scaleup_column(
                self.n_rows, base_rows=self.factor, z=self.z, rng=rng
            )
        return unbounded_scaleup_column(
            self.n_rows, duplication=self.factor, z=self.z, rng=rng
        )


def _build_column_traced(spec: _ColumnSpec, seed: int) -> Column:
    # Covers all three column kinds; zipf specs additionally nest the
    # generator's own ``data.zipf_column`` span (which owns the
    # ``data.rows_generated`` counter — no double count here).
    with OBS.span("data.build_column", n_rows=spec.n_rows, z=spec.z):
        return spec.build(executor.derived_rng(seed, *spec.key))


def _shared_column(spec: _ColumnSpec, seed: int) -> Column:
    """Materialize ``spec`` once per process, on its spec-derived stream."""
    return executor.memoized(
        ("column", seed, spec),
        lambda: _build_column_traced(spec, seed),
    )


@dataclass(frozen=True)
class _EvalTask:
    """One grid point: evaluate a column at one sampling configuration."""

    spec: _ColumnSpec
    estimators: tuple[str, ...]
    trials: int
    seed: int
    fraction: float | None = None
    size: int | None = None


def _evaluate_point(task: _EvalTask, rng: np.random.Generator) -> EvaluationResult:
    """Sweep task function (module-level so worker processes can load it)."""
    column = _shared_column(task.spec, task.seed)
    suite = make_estimators(task.estimators)
    return evaluate_column(
        column, suite, rng,
        fraction=task.fraction, size=task.size, trials=task.trials,
    )


@dataclass(frozen=True)
class _DatasetTask:
    """One grid point of a real-dataset exhibit: one sampling fraction."""

    dataset_name: str
    scale_ppm: int  # dataset scale in parts-per-million (picklable int key)
    estimators: tuple[str, ...]
    trials: int
    seed: int
    fraction: float
    metric: str


def _build_dataset_traced(name: str, scale_ppm: int, seed: int) -> Dataset:
    index = sorted(DATASETS).index(name)
    with OBS.span("data.build_dataset", dataset=name):
        return DATASETS[name](
            executor.derived_rng(seed, 4, index, scale_ppm),
            scale=scale_ppm / 1_000_000,
        )


def _shared_dataset(name: str, scale_ppm: int, seed: int) -> Dataset:
    return executor.memoized(
        ("dataset", seed, name, scale_ppm),
        lambda: _build_dataset_traced(name, scale_ppm, seed),
    )


@dataclass(frozen=True)
class _DatasetOutcome:
    """Per-fraction result of a dataset sweep, plus title metadata."""

    means: dict[str, float]
    n_columns: int
    n_rows: int
    dataset_label: str


def _evaluate_dataset_point(
    task: _DatasetTask, rng: np.random.Generator
) -> _DatasetOutcome:
    """Mean metric over all dataset columns at one sampling fraction."""
    dataset = _shared_dataset(task.dataset_name, task.scale_ppm, task.seed)
    suite = make_estimators(task.estimators)
    totals = {e.name: 0.0 for e in suite}
    for column in dataset:
        result = evaluate_column(
            column, suite, rng, fraction=task.fraction, trials=task.trials
        )
        for estimator in suite:
            totals[estimator.name] += _metric_value(
                result[estimator.name], task.metric
            )
    return _DatasetOutcome(
        means={name: total / len(dataset) for name, total in totals.items()},
        n_columns=len(dataset),
        n_rows=dataset.n_rows,
        dataset_label=dataset.name,
    )


# ----------------------------------------------------------------------
# Synthetic sweeps (Figures 1-8, Tables 1-2)
# ----------------------------------------------------------------------
def error_vs_sampling_rate(
    z: float,
    duplication: int,
    n_rows: int | None = None,
    fractions: Sequence[float] = config.SAMPLING_FRACTIONS,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
    metric: str = "error",
) -> SeriesTable:
    """Figures 1/2 (metric='error') and 3/4 (metric='stddev')."""
    if metric not in _METRICS:
        raise InvalidParameterError(f"metric must be one of {_METRICS}, got {metric!r}")
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=duplication
    )
    runs = _trials(trials)
    if config.spawn_seeding():
        spec = _ColumnSpec(_KIND_ZIPF, n, z, duplication)
        results = executor.run_sweep(
            _evaluate_point,
            [
                _EvalTask(spec, tuple(estimators), runs, seed, fraction=f)
                for f in fractions
            ],
            seed=seed,
        )
        distinct = results[0].true_distinct if results else 0
    else:
        rng = np.random.default_rng(seed)
        column = zipf_column(n, z, duplication=duplication, rng=rng)
        suite = make_estimators(estimators)
        results = [
            evaluate_column(column, suite, rng, fraction=f, trials=runs)
            for f in fractions
        ]
        distinct = column.distinct_count
    label = "mean ratio error" if metric == "error" else "stddev / D"
    table = SeriesTable(
        title=(
            f"{label} vs sampling rate "
            f"(Z={z:g}, dup={duplication}, n={n:,}, D={distinct:,})"
        ),
        x_name="rate",
        x_values=[f"{f:.1%}" for f in fractions],
    )
    for name in _series_names(results, estimators):
        table.add_series(
            name, [_metric_value(result[name], metric) for result in results]
        )
    return table


def variance_vs_sampling_rate(
    z: float, duplication: int, **kwargs: Any
) -> SeriesTable:
    """Figures 3/4: estimator stddev (as a fraction of D) vs sampling rate."""
    return error_vs_sampling_rate(z, duplication, metric="stddev", **kwargs)


def error_vs_skew(
    fraction: float,
    duplication: int = 100,
    n_rows: int | None = None,
    skews: Sequence[float] = config.SKEW_VALUES,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figures 5 (0.8% rate) and 6 (6.4% rate): error vs Zipf skew."""
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=duplication
    )
    runs = _trials(trials)
    if config.spawn_seeding():
        results = executor.run_sweep(
            _evaluate_point,
            [
                _EvalTask(
                    _ColumnSpec(_KIND_ZIPF, n, z, duplication),
                    tuple(estimators), runs, seed, fraction=fraction,
                )
                for z in skews
            ],
            seed=seed,
        )
    else:
        rng = np.random.default_rng(seed)
        suite = make_estimators(estimators)
        results = []
        for z in skews:
            column = zipf_column(n, z, duplication=duplication, rng=rng)
            results.append(
                evaluate_column(column, suite, rng, fraction=fraction, trials=runs)
            )
    table = SeriesTable(
        title=(
            f"mean ratio error vs skew "
            f"(rate={fraction:.1%}, dup={duplication}, n={n:,})"
        ),
        x_name="Z",
        x_values=[f"{z:g}" for z in skews],
    )
    for name in _series_names(results, estimators):
        table.add_series(name, [result[name].mean_ratio_error for result in results])
    return table


def error_vs_duplication(
    fraction: float,
    z: float = 1.0,
    n_rows: int | None = None,
    duplications: Sequence[int] = config.DUPLICATION_FACTORS,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figures 7 (0.8% rate) and 8 (6.4% rate): error vs duplication factor."""
    base_n = n_rows if n_rows is not None else config.PAPER_ROWS
    runs = _trials(trials)
    sizes = [config.scaled_rows(base_n, keep_divisible_by=dup) for dup in duplications]
    if config.spawn_seeding():
        results = executor.run_sweep(
            _evaluate_point,
            [
                _EvalTask(
                    _ColumnSpec(_KIND_ZIPF, n, z, dup),
                    tuple(estimators), runs, seed, fraction=fraction,
                )
                for n, dup in zip(sizes, duplications)
            ],
            seed=seed,
        )
    else:
        rng = np.random.default_rng(seed)
        suite = make_estimators(estimators)
        results = []
        for n, dup in zip(sizes, duplications):
            column = zipf_column(n, z, duplication=dup, rng=rng)
            results.append(
                evaluate_column(column, suite, rng, fraction=fraction, trials=runs)
            )
    table = SeriesTable(
        title=f"mean ratio error vs duplication (rate={fraction:.1%}, Z={z:g})",
        x_name="dup",
        x_values=[str(dup) for dup in duplications],
    )
    for name in _series_names(results, estimators):
        table.add_series(name, [result[name].mean_ratio_error for result in results])
    return table


def gee_interval_table(
    z: float,
    duplication: int = 100,
    n_rows: int | None = None,
    fractions: Sequence[float] = config.SAMPLING_FRACTIONS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Tables 1 (Z=0) and 2 (Z=2): GEE's [LOWER, UPPER] interval vs rate."""
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=duplication
    )
    runs = _trials(trials)
    if config.spawn_seeding():
        spec = _ColumnSpec(_KIND_ZIPF, n, z, duplication)
        results = executor.run_sweep(
            _evaluate_point,
            [
                _EvalTask(spec, ("GEE",), runs, seed, fraction=f)
                for f in fractions
            ],
            seed=seed,
        )
    else:
        rng = np.random.default_rng(seed)
        column = zipf_column(n, z, duplication=duplication, rng=rng)
        gee = GEE()
        results = [
            evaluate_column(column, [gee], rng, fraction=f, trials=runs)
            for f in fractions
        ]
    table = SeriesTable(
        title=(
            f"GEE error guarantee (Z={z:g}, dup={duplication}, n={n:,})"
        ),
        x_name="rate",
        x_values=[f"{f:.1%}" for f in fractions],
        notes="ACTUAL must always lie within [LOWER, UPPER]",
    )
    summaries = [result["GEE"] for result in results]
    table.add_series("ACTUAL", [float(result.true_distinct) for result in results])
    table.add_series("LOWER", [summary.mean_lower for summary in summaries])
    table.add_series("UPPER", [summary.mean_upper for summary in summaries])
    table.add_series("GEE", [summary.mean_estimate for summary in summaries])
    return table


# ----------------------------------------------------------------------
# Scale-up (Figures 9-10)
# ----------------------------------------------------------------------
def scaleup_bounded(
    row_counts: Sequence[int] | None = None,
    base_rows: int = 1000,
    z: float = 2.0,
    sample_size: int = 10_000,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figure 9: fixed D and fixed 10K-row sample while n grows."""
    divisor = config.scale_divisor()
    if row_counts is None:
        row_counts = [k * 100_000 for k in range(1, 11)]
    row_counts = [max(base_rows, n // divisor - (n // divisor) % base_rows)
                  for n in row_counts]
    sample_size = max(100, sample_size // divisor)
    runs = _trials(trials)
    if config.spawn_seeding():
        results = executor.run_sweep(
            _evaluate_point,
            [
                _EvalTask(
                    _ColumnSpec(_KIND_BOUNDED, n, z, base_rows),
                    tuple(estimators), runs, seed, size=min(sample_size, n),
                )
                for n in row_counts
            ],
            seed=seed,
        )
    else:
        rng = np.random.default_rng(seed)
        suite = make_estimators(estimators)
        results = []
        for n in row_counts:
            column = bounded_scaleup_column(n, base_rows=base_rows, z=z, rng=rng)
            results.append(
                evaluate_column(
                    column, suite, rng, size=min(sample_size, n), trials=runs
                )
            )
    table = SeriesTable(
        title=(
            f"bounded-domain scaleup (Z={z:g}, base={base_rows}, "
            f"sample={sample_size:,} rows fixed)"
        ),
        x_name="n",
        x_values=[f"{n:,}" for n in row_counts],
    )
    for name in _series_names(results, estimators):
        table.add_series(name, [result[name].mean_ratio_error for result in results])
    return table


def scaleup_unbounded(
    row_counts: Sequence[int] | None = None,
    duplication: int = 100,
    z: float = 2.0,
    fraction: float = 0.016,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Figure 10: fixed sampling fraction while n (and D) grow."""
    divisor = config.scale_divisor()
    if row_counts is None:
        row_counts = [k * 100_000 for k in range(1, 11)]
    row_counts = [
        max(duplication, n // divisor - (n // divisor) % duplication)
        for n in row_counts
    ]
    runs = _trials(trials)
    if config.spawn_seeding():
        results = executor.run_sweep(
            _evaluate_point,
            [
                _EvalTask(
                    _ColumnSpec(_KIND_UNBOUNDED, n, z, duplication),
                    tuple(estimators), runs, seed, fraction=fraction,
                )
                for n in row_counts
            ],
            seed=seed,
        )
    else:
        rng = np.random.default_rng(seed)
        suite = make_estimators(estimators)
        results = []
        for n in row_counts:
            column = unbounded_scaleup_column(
                n, duplication=duplication, z=z, rng=rng
            )
            results.append(
                evaluate_column(column, suite, rng, fraction=fraction, trials=runs)
            )
    table = SeriesTable(
        title=(
            f"unbounded-domain scaleup (Z={z:g}, dup={duplication}, "
            f"rate={fraction:.1%})"
        ),
        x_name="n",
        x_values=[f"{n:,}" for n in row_counts],
    )
    for name in _series_names(results, estimators):
        table.add_series(name, [result[name].mean_ratio_error for result in results])
    return table


# ----------------------------------------------------------------------
# Real-world surrogates (Figures 11-16)
# ----------------------------------------------------------------------
def real_dataset_metric(
    dataset_name: str,
    metric: str = "error",
    fractions: Sequence[float] = config.SAMPLING_FRACTIONS,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
    dataset: Dataset | None = None,
) -> SeriesTable:
    """Figures 11-16: per-estimator mean error / stddev over all columns.

    ``dataset`` may be passed in to share one generated surrogate across
    the error and variance exhibits of the same dataset; an explicit
    dataset always runs on the legacy sequential path (worker processes
    regenerate shared inputs from specs rather than shipping arrays).
    """
    if metric not in _METRICS:
        raise InvalidParameterError(f"metric must be one of {_METRICS}, got {metric!r}")
    if dataset_name not in DATASETS and dataset is None:
        known = ", ".join(sorted(DATASETS))
        raise InvalidParameterError(
            f"unknown dataset {dataset_name!r}; known: {known}"
        )
    runs = _trials(trials)
    if dataset is None and config.spawn_seeding():
        scale_ppm = round(1_000_000 / config.scale_divisor())
        points = [
            _DatasetTask(
                dataset_name, scale_ppm, tuple(estimators), runs, seed, f, metric
            )
            for f in fractions
        ]
        outcomes = executor.run_sweep(_evaluate_dataset_point, points, seed=seed)
        if outcomes:
            first = outcomes[0]
            names = list(first.means)
            n_columns, n_rows_label = first.n_columns, first.n_rows
            dataset_label = first.dataset_label
        else:  # metadata only: no grid points to borrow it from
            shared = _shared_dataset(dataset_name, scale_ppm, seed)
            names = [e.name for e in make_estimators(estimators)]
            n_columns, n_rows_label = len(shared), shared.n_rows
            dataset_label = shared.name
        rows = {
            name: [outcome.means[name] for outcome in outcomes] for name in names
        }
    else:
        rng = np.random.default_rng(seed)
        if dataset is None:
            dataset = DATASETS[dataset_name](rng, scale=1.0 / config.scale_divisor())
        suite = make_estimators(estimators)
        rows = {e.name: [] for e in suite}
        for fraction in fractions:
            totals = {e.name: 0.0 for e in suite}
            for column in dataset:
                result = evaluate_column(
                    column, suite, rng, fraction=fraction, trials=runs
                )
                for estimator in suite:
                    totals[estimator.name] += _metric_value(
                        result[estimator.name], metric
                    )
            for name, total in totals.items():
                rows[name].append(total / len(dataset))
        n_columns, n_rows_label = len(dataset), dataset.n_rows
        dataset_label = dataset.name
    label = "mean ratio error" if metric == "error" else "stddev / D"
    table = SeriesTable(
        title=(
            f"{label} over all {n_columns} columns of {dataset_label} "
            f"(n={n_rows_label:,})"
        ),
        x_name="rate",
        x_values=[f"{f:.1%}" for f in fractions],
    )
    for name, values in rows.items():
        table.add_series(name, values)
    return table


# ----------------------------------------------------------------------
# Theorem 1 (Section 3's numeric comparison)
# ----------------------------------------------------------------------
def theorem1_comparison(
    n_rows: int | None = None,
    fraction: float = 0.2,
    gamma: float = 0.5,
    estimators: Sequence[str] = PAPER_ESTIMATORS,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Section 3's check: observed errors on the adversarial pair vs the bound.

    For each estimator, samples both Theorem-1 scenarios and reports the
    larger of the two mean ratio errors; no estimator can beat the
    ``sqrt((n-r)/(2r) ln(1/gamma))`` floor on both scenarios at once.
    """
    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(100_000)
    r = max(1, int(round(fraction * n)))
    pair = adversarial_pair(n, r, gamma=gamma, rng=rng)
    suite = make_estimators(estimators)
    sampler = UniformWithoutReplacement()
    table = SeriesTable(
        title=(
            f"Theorem 1 adversarial pair (n={n:,}, r={r:,}, gamma={gamma}, "
            f"k={pair.k})"
        ),
        x_name="estimator",
        x_values=[e.name for e in suite],
        notes=(
            "worst = max(mean error on Scenario A, mean error on Scenario B); "
            "Theorem 1 floor applies to worst"
        ),
    )
    floor = lower_bound_error(n, r, gamma=gamma)
    runs = _trials(trials)
    errors_a, errors_b, worst = [], [], []
    for estimator in suite:
        per_scenario = []
        for data, truth in (
            (pair.scenario_a, pair.distinct_a),
            (pair.scenario_b, pair.distinct_b),
        ):
            profiles = sampler.profile_batch(data, rng, runs, size=r)
            total = 0.0
            for profile in profiles:
                value = estimator.estimate(profile, n).value
                total += ratio_error(value, truth)
            per_scenario.append(total / runs)
        errors_a.append(per_scenario[0])
        errors_b.append(per_scenario[1])
        worst.append(max(per_scenario))
    table.add_series("scenario_A", errors_a)
    table.add_series("scenario_B", errors_b)
    table.add_series("worst", worst)
    table.add_series("theorem1_floor", [floor] * len(suite))
    return table


# ----------------------------------------------------------------------
# Extension exhibit: hybrid instability (the §5.2 argument, quantified)
# ----------------------------------------------------------------------
def stability_comparison(
    n_rows: int | None = None,
    fraction: float = 0.005,
    estimators: Sequence[str] = ("AE", "GEE", "HYBGEE", "HYBSKEW", "HYBVAR", "DUJ2A"),
    replicates: int = 120,
    trials: int | None = None,
    seed: int = 0,
) -> SeriesTable:
    """Bootstrap instability of each estimator on boundary-skew data.

    Section 5.2's critique of hybrids: near the skew-test decision
    boundary "some random samples result in the choice of one estimator
    while others cause the other to be chosen ... resulting in high
    variance".  This exhibit measures it directly: for each estimator,
    the bootstrap coefficient of variation (replicate std / estimate)
    averaged over several samples of a column whose estimated CV^2 sits
    astride HYBVAR's branch threshold (the Figure 9 workload, ~13.4 vs
    the 12.5 cut at every scale), so replicates genuinely flip branches.
    The hybrids score markedly worse than the smooth estimators.
    """
    from repro.core.uncertainty import bootstrap_estimate
    from repro.data.synthetic import bounded_scaleup_column

    rng = np.random.default_rng(seed)
    n = n_rows if n_rows is not None else config.scaled_rows(
        config.PAPER_ROWS, keep_divisible_by=1000
    )
    column = bounded_scaleup_column(n, base_rows=1000, z=2.0, rng=rng)
    suite = make_estimators(estimators)
    sampler = UniformWithoutReplacement()
    table = SeriesTable(
        title=(
            f"bootstrap instability on branch-boundary data "
            f"(bounded-scaleup Z=2, n={n:,}, rate={fraction:.1%})"
        ),
        x_name="estimator",
        x_values=[e.name for e in suite],
        notes="cv = bootstrap replicate std / estimate, averaged over samples",
    )
    from repro.core.uncertainty import bootstrap_profile

    runs = _trials(trials)
    cvs, errors, flip_rates = [], [], []
    for estimator in suite:
        cv_total, err_total = 0.0, 0.0
        flips, branch_observations = 0, 0
        for _ in range(runs):
            profile = sampler.profile(column.values, rng, fraction=fraction)
            summary = bootstrap_estimate(
                estimator, profile, n, rng, replicates=replicates
            )
            cv_total += summary.std / max(summary.estimate, 1.0)
            err_total += ratio_error(summary.estimate, column.distinct_count)
            # Branch-flip rate: how often a resampled profile routes a
            # hybrid to a different branch than the original sample did.
            original = estimator.estimate(profile, n).details.get("branch")
            if original is not None:
                for _ in range(20):
                    replicate = bootstrap_profile(profile, rng)
                    branch = estimator.estimate(replicate, n).details.get("branch")
                    branch_observations += 1
                    flips += branch != original
        cvs.append(cv_total / runs)
        errors.append(err_total / runs)
        flip_rates.append(
            flips / branch_observations if branch_observations else 0.0
        )
    table.add_series("bootstrap_cv", cvs)
    table.add_series("branch_flip_rate", flip_rates)
    table.add_series("mean_ratio_error", errors)
    return table


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS: dict[str, Callable[..., SeriesTable]] = {
    "fig1": lambda **kw: error_vs_sampling_rate(z=0.0, duplication=100, **kw),
    "fig2": lambda **kw: error_vs_sampling_rate(z=2.0, duplication=100, **kw),
    "fig3": lambda **kw: variance_vs_sampling_rate(z=0.0, duplication=100, **kw),
    "fig4": lambda **kw: variance_vs_sampling_rate(z=2.0, duplication=100, **kw),
    "fig5": lambda **kw: error_vs_skew(fraction=0.008, **kw),
    "fig6": lambda **kw: error_vs_skew(fraction=0.064, **kw),
    "table1": lambda **kw: gee_interval_table(z=0.0, **kw),
    "table2": lambda **kw: gee_interval_table(z=2.0, **kw),
    "fig7": lambda **kw: error_vs_duplication(fraction=0.008, **kw),
    "fig8": lambda **kw: error_vs_duplication(fraction=0.064, **kw),
    "fig9": lambda **kw: scaleup_bounded(**kw),
    "fig10": lambda **kw: scaleup_unbounded(**kw),
    "fig11": lambda **kw: real_dataset_metric("Census", metric="error", **kw),
    "fig12": lambda **kw: real_dataset_metric("Census", metric="stddev", **kw),
    "fig13": lambda **kw: real_dataset_metric("CoverType", metric="error", **kw),
    "fig14": lambda **kw: real_dataset_metric("CoverType", metric="stddev", **kw),
    "fig15": lambda **kw: real_dataset_metric("MSSales", metric="error", **kw),
    "fig16": lambda **kw: real_dataset_metric("MSSales", metric="stddev", **kw),
    "theorem1": lambda **kw: theorem1_comparison(**kw),
    "stability": lambda **kw: stability_comparison(**kw),
}


def run_experiment(exhibit_id: str, **kwargs: Any) -> SeriesTable:
    """Run one registered exhibit by id (``"fig1"`` ... ``"theorem1"``)."""
    try:
        runner = EXPERIMENTS[exhibit_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise InvalidParameterError(
            f"unknown exhibit {exhibit_id!r}; known: {known}"
        ) from None
    with OBS.span(f"exhibit.{exhibit_id}"):
        if OBS.enabled:
            OBS.add("experiments.exhibits_run")
        return runner(**kwargs)
